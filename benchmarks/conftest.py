"""Shared fixtures for the benchmark harness.

Row collection is cached per session so the shape assertions in the
table benchmarks do not recompute the full pipeline per test.
"""

from __future__ import annotations

import pytest

from repro.bench.metrics import measure_workload, pressure_rows
from repro.bench.workloads import ORDER, WORKLOADS


@pytest.fixture(scope="session")
def sastry_rows():
    return {name: measure_workload(WORKLOADS[name], "sastry-ju") for name in ORDER}


@pytest.fixture(scope="session")
def lucooper_rows():
    return {name: measure_workload(WORKLOADS[name], "lucooper") for name in ORDER}


@pytest.fixture(scope="session")
def mahlke_rows():
    return {name: measure_workload(WORKLOADS[name], "mahlke") for name in ORDER}


@pytest.fixture(scope="session")
def pressure():
    return {name: pressure_rows(WORKLOADS[name]) for name in ORDER}
