"""Ablations over the design choices DESIGN.md calls out.

* **Against the baselines** (paper §6): the algorithm never loses to
  Lu-Cooper or Mahlke on dynamic memory operations, and strictly beats
  Lu-Cooper wherever infrequent calls appear inside hot loops.
* **Profile-driven vs profile-blind**: dropping the profitability gate
  must never help (it can insert compensation on paths hotter than what
  it removes) — and stays *correct*.
* **Web granularity vs whole-variable**: webs expose at least as many
  opportunities (§4.2: "Finer grained units of promotion expose more
  opportunities for promotion").
* **Store removal**: disabling the store-removal half keeps the load
  wins but leaves all dynamic stores in place.
* **Alias precision**: mod/ref call summaries barely move the results —
  the Lu & Cooper observation ("pointer analysis does not greatly
  improve the results of register promotion") reproduced.
"""

from __future__ import annotations

from repro.bench.metrics import measure_workload
from repro.bench.workloads import ORDER, WORKLOADS
from repro.frontend.lower import compile_source
from repro.memory.aliasing import AliasModel
from repro.promotion.driver import PromotionOptions
from repro.promotion.pipeline import PromotionPipeline


def check_beats_baselines(sastry, lucooper, mahlke) -> None:
    for name in ORDER:
        ours = sastry[name].pct("dynamic_total")
        assert ours >= lucooper[name].pct("dynamic_total") - 0.5, name
        assert ours >= mahlke[name].pct("dynamic_total") - 0.5, name
    # Strictly better than Lu-Cooper where cold calls sit in hot loops.
    assert sastry["go"].pct("dynamic_total") > lucooper["go"].pct("dynamic_total") + 5
    assert (
        sastry["compress"].pct("dynamic_total")
        > lucooper["compress"].pct("dynamic_total") + 5
    )


def test_baseline_comparison(benchmark, sastry_rows, lucooper_rows, mahlke_rows):
    def check():
        check_beats_baselines(sastry_rows, lucooper_rows, mahlke_rows)
        return True

    assert benchmark.pedantic(check, rounds=1, iterations=1)


def test_profile_gate_prevents_regressions(benchmark):
    """The point of profile-driven placement: promoting regardless of the
    profit test can *regress* (perl: the blind variant reloads around the
    hot dispatch calls and loses its entire gain), while the guided
    algorithm never loses ground.  On call-light workloads (go) the blind
    variant may promote more — the gate trades peak wins for safety,
    which is the paper's design point."""

    def run():
        results = {}
        for name in ("go", "perl"):
            blind = measure_workload(
                WORKLOADS[name],
                options=PromotionOptions(require_profit=False),
            )
            guided = measure_workload(WORKLOADS[name])
            assert blind.output_matches, name
            results[name] = (
                guided.pct("dynamic_total"),
                blind.pct("dynamic_total"),
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, (guided, blind) in results.items():
        # Guided promotion never regresses...
        assert guided >= -0.5, (name, guided)
    # ...while the blind variant demonstrably does on perl.
    guided_perl, blind_perl = results["perl"]
    assert blind_perl < guided_perl - 5.0
    assert blind_perl <= 1.0


def test_web_granularity_pays(benchmark):
    def run():
        out = {}
        for name in ("go", "li"):
            webs = measure_workload(WORKLOADS[name])
            whole = measure_workload(
                WORKLOADS[name], options=PromotionOptions(per_web=False)
            )
            assert whole.output_matches, name
            out[name] = (webs.pct("dynamic_total"), whole.pct("dynamic_total"))
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, (webs, whole) in results.items():
        assert webs >= whole - 0.5, (name, webs, whole)


def test_store_removal_half(benchmark):
    def run():
        return measure_workload(
            WORKLOADS["go"], options=PromotionOptions(remove_stores=False)
        )

    row = benchmark.pedantic(run, rounds=1, iterations=1)
    assert row.output_matches
    # Loads still improve; stores stay where they were.
    assert row.pct("dynamic_loads") >= 10.0
    assert row.dynamic_stores_after >= row.dynamic_stores_before * 0.98


def test_alias_precision_barely_matters(benchmark):
    """Promotion with transitive mod/ref summaries vs the conservative
    model: the Lu & Cooper result (small deltas)."""

    def run():
        out = {}
        for name in ("go", "gcc"):
            workload = WORKLOADS[name]
            conservative = measure_workload(workload)

            module = compile_source(workload.source)
            pipeline = PromotionPipeline(
                alias_model=AliasModel.with_modref_summaries,
                entry=workload.entry,
                args=list(workload.args),
            )
            result = pipeline.run(module)
            assert result.output_matches, name
            precise_pct = 100.0 * (
                result.dynamic_before.total - result.dynamic_after.total
            ) / result.dynamic_before.total
            out[name] = (conservative.pct("dynamic_total"), precise_pct)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, (conservative, precise) in results.items():
        # Better aliasing may only help.
        assert precise >= conservative - 0.5, (name, conservative, precise)
    # Divergence note (recorded in EXPERIMENTS.md): on go — whose callees
    # touch broad global state, like real SPEC call graphs — precision
    # adds little, matching Lu & Cooper's observation.  On gcc our
    # proxy's callees have narrow, analyzable footprints, so summaries
    # help more than the paper's setting would suggest.
    go_cons, go_prec = results["go"]
    assert go_prec - go_cons <= 15.0, results


def test_pressure_limit_tradeoff(benchmark):
    """Extension bench: the register-pressure gate (Table 3's trade-off
    as a knob).  Tighter color budgets must cost dynamic improvement
    monotonically, converging to the unlimited algorithm."""

    def run():
        totals = []
        for limit in (4, 8, None):
            row = measure_workload(
                WORKLOADS["go"], options=PromotionOptions(pressure_limit=limit)
            )
            assert row.output_matches
            totals.append(row.dynamic_total_after)
        return totals

    tight, mid, unlimited = benchmark.pedantic(run, rounds=1, iterations=1)
    assert tight >= mid >= unlimited


def test_unrolling_composes_with_promotion(benchmark):
    """Extension bench: §4.4's suggested use of the incremental update —
    unroll loops first, then promote; behaviour preserved and the hot
    loops still collapse."""
    from repro.frontend.lower import compile_source as _compile
    from repro.passes.unroll import unroll_module
    from repro.promotion.pipeline import PromotionPipeline as _Pipeline

    def run():
        module = _compile(WORKLOADS["compress"].source)
        unrolled = unroll_module(module)
        result = _Pipeline().run(module)
        return unrolled, result

    unrolled, result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert unrolled >= 1
    assert result.output_matches
    assert result.dynamic_after.total <= result.dynamic_before.total


def test_measured_profile_beats_estimator(benchmark):
    """Ablation: the paper is profile-driven; here we quantify what a
    measured profile buys over the structural estimator.  The estimator
    arm must stay correct and may not beat the measured profile."""
    from repro.frontend.lower import compile_source as _compile
    from repro.profile.interp import run_module as _run
    from repro.ssa.construct import construct_ssa as _mem2reg

    def run():
        out = {}
        for name in ("go", "perl"):
            workload = WORKLOADS[name]
            measured = measure_workload(workload)

            # Baseline on the same footing the pipeline measures from:
            # after mem2reg, before promotion.
            module = _compile(workload.source)
            for f in module.functions.values():
                _mem2reg(f)
            baseline = _run(module)

            module = _compile(workload.source)
            pipeline = PromotionPipeline(use_interpreter_profile=False)
            pipeline.run(module)
            after = _run(module)
            assert after.output == baseline.output, name
            est_pct = 100.0 * (
                (baseline.loads + baseline.stores) - (after.loads + after.stores)
            ) / (baseline.loads + baseline.stores)
            out[name] = (measured.pct("dynamic_total"), est_pct)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    for name, (measured, estimated) in results.items():
        assert measured >= estimated - 1.0, (name, measured, estimated)
