"""Compile-time scaling of the analysis substrate.

The paper's efficiency argument rests on linear-time building blocks
(the [SrG95] DJ-graph IDF, one-pass web construction).  These benchmarks
time the substrate on large synthetic CFGs so regressions in asymptotic
behaviour show up:

* dominator tree + dominance frontiers on a 3000-block chain of diamonds;
* DJ-graph IDF vs the classic worklist IDF on wide def sets;
* full memory-SSA construction on a 600-block function.
"""

from __future__ import annotations

from benchmarks.test_incremental_vs_css96 import build_diamond_chain
from repro.analysis.dominance import DominatorTree
from repro.analysis.idf import idf_cytron, idf_sreedhar_gao
from repro.memory.aliasing import AliasModel
from repro.memory.memssa import build_memory_ssa


def _big(n_diamonds):
    module, func, x0, sites = build_diamond_chain(n_diamonds, clone_every=7)
    return module, func


def test_dominator_tree_3000_blocks(benchmark):
    _, func = _big(1000)  # 3001 blocks
    tree = benchmark.pedantic(
        DominatorTree.compute, args=(func,), rounds=3, iterations=1
    )
    assert len(tree.reachable) == len(func.blocks)


def test_dominance_frontier_3000_blocks(benchmark):
    _, func = _big(1000)

    def run():
        tree = DominatorTree.compute(func)
        return tree.dominance_frontier()

    frontier = benchmark.pedantic(run, rounds=3, iterations=1)
    assert frontier


def test_idf_sreedhar_gao_wide(benchmark):
    _, func = _big(700)
    tree = DominatorTree.compute(func)
    defs = [b for b in tree.reachable if b.name.startswith("l")]
    result = benchmark.pedantic(
        idf_sreedhar_gao, args=(tree, defs), rounds=3, iterations=1
    )
    assert result


def test_idf_cytron_wide(benchmark):
    _, func = _big(700)
    tree = DominatorTree.compute(func)
    defs = [b for b in tree.reachable if b.name.startswith("l")]
    result = benchmark.pedantic(
        idf_cytron, args=(tree, defs), rounds=3, iterations=1
    )
    assert result


def test_idf_algorithms_agree_at_scale(benchmark):
    _, func = _big(400)
    tree = DominatorTree.compute(func)
    defs = [b for b in tree.reachable if b.name.startswith("r")][::2]

    def run():
        a = idf_sreedhar_gao(tree, defs)
        b = idf_cytron(tree, defs)
        return a, b

    a, b = benchmark.pedantic(run, rounds=1, iterations=1)
    assert sorted(x.name for x in a) == sorted(x.name for x in b)


def test_memory_ssa_600_blocks(benchmark):
    module, func = _big(200)  # 601 blocks, loads of @x everywhere

    def run():
        return build_memory_ssa(func, AliasModel.conservative(module))

    mssa = benchmark.pedantic(run, rounds=3, iterations=1)
    assert mssa.tracked
