"""Section 4.5's efficiency claim: batched incremental SSA update vs
one-definition-at-a-time [CSS96].

"Their work dealt with one inserted definition at a time and has to
compute iterative dominance frontier for every inserted definition ...
For m definitions, they need O(m x n) time ... In our algorithm, multiple
definitions including the cloned ones and the old ones are handled
simultaneously."

We synthesize a chain-of-diamonds CFG with ``n`` blocks, insert ``m``
cloned stores of one global, and time both updaters.  The batched update
must win, and its advantage must *grow* with m.
"""

from __future__ import annotations

import time

import pytest

from repro.ir import instructions as I
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.values import Const
from repro.ssa.css96 import css96_update
from repro.ssa.incremental import update_ssa_for_cloned_resources


def build_diamond_chain(n_diamonds: int, clone_every: int):
    """A chain of n diamonds over global @x with a use in every join;
    returns (module, function, entry_name, list of (block, position) clone
    sites)."""
    module = Module()
    x = module.add_global("x")
    func = module.new_function("f")
    entry = func.add_block("entry")
    x0 = func.new_mem_name(x)
    x0.version = 0
    x0.def_inst = None

    prev = entry
    clone_blocks = []
    for i in range(n_diamonds):
        left = func.new_block("l")
        right = func.new_block("r")
        join = func.new_block("j")
        cond = func.new_reg("c")
        prev.append(I.Copy(cond, Const(i % 2)))
        prev.append(I.CondBr(cond, left, right))
        left.append(I.Jump(join))
        right.append(I.Jump(join))
        load = I.Load(func.new_reg("t"), x)
        load.mem_uses = [x0]
        join.insert_at_front(load)
        if i % clone_every == 0:
            clone_blocks.append(left)
        prev = join
    prev.append(I.Ret())
    return module, func, x0, clone_blocks


def insert_clones(func, var, blocks):
    cloned = []
    for block in blocks:
        store = I.Store(var, Const(7))
        block.insert_at_front(store)
        name = func.new_mem_name(var, store)
        store.mem_defs = [name]
        cloned.append(name)
    return cloned


N_DIAMONDS = 60
CLONE_EVERY = 4  # 15 cloned definitions


def _run_batched():
    module, func, x0, sites = build_diamond_chain(N_DIAMONDS, CLONE_EVERY)
    cloned = insert_clones(func, x0.var, sites)
    update_ssa_for_cloned_resources(func, [x0], cloned)
    return func


def _run_css96():
    module, func, x0, sites = build_diamond_chain(N_DIAMONDS, CLONE_EVERY)
    cloned = insert_clones(func, x0.var, sites)
    css96_update(func, [x0], cloned)
    return func


def test_batched_update(benchmark):
    func = benchmark.pedantic(_run_batched, rounds=5, iterations=1)
    from repro.ir.verify import verify_function

    verify_function(func, check_memssa=True)


def test_css96_update(benchmark):
    func = benchmark.pedantic(_run_css96, rounds=5, iterations=1)
    from repro.ir.verify import verify_function

    verify_function(func, check_memssa=True)


def test_batched_beats_css96_and_scales(benchmark):
    """Direct head-to-head: batched wins, and the ratio grows with m."""

    def measure(clone_every: int):
        t0 = time.perf_counter()
        module, func, x0, sites = build_diamond_chain(N_DIAMONDS, clone_every)
        cloned = insert_clones(func, x0.var, sites)
        update_ssa_for_cloned_resources(func, [x0], cloned)
        batched = time.perf_counter() - t0

        t0 = time.perf_counter()
        module, func, x0, sites = build_diamond_chain(N_DIAMONDS, clone_every)
        cloned = insert_clones(func, x0.var, sites)
        css96_update(func, [x0], cloned)
        per_def = time.perf_counter() - t0
        return batched, per_def

    def run():
        few_batched, few_perdef = measure(clone_every=20)   # m = 3
        many_batched, many_perdef = measure(clone_every=2)  # m = 30
        return few_batched, few_perdef, many_batched, many_perdef

    few_b, few_p, many_b, many_p = benchmark.pedantic(run, rounds=3, iterations=1)
    # Batched wins outright at high m...
    assert many_b < many_p
    # ...and the per-definition scheme degrades faster as m grows.
    assert many_p / max(few_p, 1e-9) > many_b / max(few_b, 1e-9)
