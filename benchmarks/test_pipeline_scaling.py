"""Whole-pipeline compile-time scaling on generated program suites.

Times the complete pipeline (parse → lower → mem2reg → normalize →
profile → memory SSA → promote → cleanup → verify → re-run) over a batch
of generated programs — the compile-time budget story for adopting the
pass, complementing the per-table result benchmarks.
"""

from __future__ import annotations

import sys

sys.path.insert(0, ".")  # tests.* helpers when run from the repo root

from tests.property.genprog import random_program  # noqa: E402

from repro.frontend.lower import compile_source  # noqa: E402
from repro.promotion.pipeline import PromotionPipeline  # noqa: E402


SEEDS = list(range(100, 120))


def test_pipeline_batch_of_20_programs(benchmark):
    sources = [random_program(seed) for seed in SEEDS]

    def run():
        ok = 0
        for source in sources:
            module = compile_source(source)
            result = PromotionPipeline().run(module)
            assert result.output_matches
            ok += 1
        return ok

    assert benchmark.pedantic(run, rounds=2, iterations=1) == len(SEEDS)


def test_frontend_only_batch(benchmark):
    sources = [random_program(seed) for seed in SEEDS]

    def run():
        return [compile_source(source) for source in sources]

    modules = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(modules) == len(SEEDS)


def test_promotion_only_go_proxy(benchmark):
    """Promotion phases alone (no interpreter runs) on the go proxy."""
    from repro.analysis.intervals import normalize_for_promotion
    from repro.bench.workloads import WORKLOADS
    from repro.memory.aliasing import AliasModel
    from repro.memory.memssa import build_memory_ssa
    from repro.profile.estimator import estimate_profile
    from repro.promotion.driver import promote_function
    from repro.ssa.construct import construct_ssa

    def run():
        module = compile_source(WORKLOADS["go"].source)
        trees = {}
        for f in module.functions.values():
            construct_ssa(f)
            trees[f.name] = normalize_for_promotion(f)
        profile = estimate_profile(module)
        model = AliasModel.conservative(module)
        stats = []
        for f in module.functions.values():
            mssa = build_memory_ssa(f, model)
            stats.append(promote_function(f, mssa, profile, trees[f.name]))
        return stats

    stats = benchmark.pedantic(run, rounds=3, iterations=1)
    assert sum(s.webs_promoted for s in stats) >= 1
