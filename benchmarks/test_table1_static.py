"""Table 1 — static counts of memory operations before/after promotion.

Regenerates the paper's Table 1 rows over the proxy workloads and
asserts the *shape* the paper reports:

* static counts generally do not improve — compensation code (entry
  loads, cold-path flushes/reloads, tail stores) offsets or outweighs the
  deleted operations (paper: −9.1% total for go, −6.6% for gcc, …);
* go — the most aggressively promoted benchmark — shows a clear static
  *increase* in total operations;
* nothing explodes: static totals stay within 2x of the original.

The ``test_table1_*`` functions with the ``benchmark`` fixture both time
the regeneration and run the shape checks, so ``--benchmark-only`` runs
still validate the reproduction.
"""

from __future__ import annotations

from repro.bench.metrics import measure_workload
from repro.bench.tables import format_table1
from repro.bench.workloads import ORDER, WORKLOADS


def check_table1_shape(rows) -> None:
    for name, row in rows.items():
        assert row.output_matches, name
        # Promotion rewrites, it does not wholesale delete: static totals
        # stay within a factor of two either way.
        assert row.static_total_after <= 2 * row.static_total_before, name
        assert row.static_total_after >= row.static_total_before // 2, name
    # Paper: go's static total rises (−9.1% "improvement") from
    # compensation code.
    assert rows["go"].static_total_after > rows["go"].static_total_before
    # Across the suite, promotion inserts at least as many static
    # operations as it removes.
    before = sum(r.static_total_before for r in rows.values())
    after = sum(r.static_total_after for r in rows.values())
    assert after >= before
    # vortex: nothing promotable, nothing changed.
    assert rows["vortex"].static_total_after == rows["vortex"].static_total_before


def test_table1_regenerate_and_check(benchmark, sastry_rows):
    rows = [sastry_rows[name] for name in ORDER]
    table = benchmark.pedantic(format_table1, args=(rows,), rounds=3, iterations=1)
    assert "Table 1" in table
    for name in ORDER:
        assert name in table
    check_table1_shape(sastry_rows)


def test_table1_shape(sastry_rows):
    check_table1_shape(sastry_rows)


def test_table1_pipeline_cost_go(benchmark):
    """End-to-end compile+profile+promote+measure cost for one row."""
    row = benchmark.pedantic(
        measure_workload, args=(WORKLOADS["go"],), rounds=3, iterations=1
    )
    assert row.output_matches
