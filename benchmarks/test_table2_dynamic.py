"""Table 2 — dynamic counts of memory operations before/after promotion.

The paper's headline: "our algorithm removes about ~12% of memory
operations which access scalar variables" on SPECInt95, with go at 25.5%
fewer dynamic loads, li at 16.5%, ijpeg's load reduction called out
("significant reduction in loads even though only few stores could be
eliminated"), and vortex essentially unchanged.

The assertions pin the reproduced *shape*: who wins, by roughly what
factor, and where promotion finds nothing.
"""

from __future__ import annotations

from repro.bench.metrics import measure_workload
from repro.bench.tables import format_table2
from repro.bench.workloads import ORDER, WORKLOADS


def check_table2_shape(rows) -> None:
    for name, row in rows.items():
        assert row.output_matches, name

    # go and ijpeg lead (paper: 25.5% / 25.7% dynamic load reductions).
    go = rows["go"].pct("dynamic_loads")
    ijpeg = rows["ijpeg"].pct("dynamic_loads")
    others = [
        rows[n].pct("dynamic_loads") for n in ORDER if n not in ("go", "ijpeg")
    ]
    assert go >= 20.0
    assert ijpeg >= 20.0
    assert max(others) <= max(go, ijpeg)

    # li moderate (paper: 16.5%), below go.
    li = rows["li"].pct("dynamic_loads")
    assert 8.0 <= li <= 35.0
    assert li < go

    # ijpeg: loads, not stores.
    assert abs(rows["ijpeg"].pct("dynamic_stores")) <= 5.0

    # vortex flat; everything else improves materially.
    assert abs(rows["vortex"].pct("dynamic_total")) <= 2.0
    for name in ORDER:
        if name != "vortex":
            assert rows[name].pct("dynamic_total") >= 5.0, name

    # Overall band around the paper's ~12%.
    before = sum(r.dynamic_total_before for r in rows.values())
    after = sum(r.dynamic_total_after for r in rows.values())
    overall = 100.0 * (before - after) / before
    assert 8.0 <= overall <= 30.0

    # Dynamic store counts must not grow beyond noise.
    for name, row in rows.items():
        assert row.dynamic_stores_after <= row.dynamic_stores_before * 1.02, name


def test_table2_regenerate_and_check(benchmark, sastry_rows):
    rows = [sastry_rows[name] for name in ORDER]
    table = benchmark.pedantic(format_table2, args=(rows,), rounds=3, iterations=1)
    assert "Table 2" in table
    assert "overall" in table
    check_table2_shape(sastry_rows)


def test_table2_shape(sastry_rows):
    check_table2_shape(sastry_rows)


def test_table2_pipeline_cost_vortex(benchmark):
    """The no-opportunity case: promotion must stay cheap when it finds
    nothing (vortex)."""
    row = benchmark.pedantic(
        measure_workload, args=(WORKLOADS["vortex"],), rounds=3, iterations=1
    )
    assert abs(row.pct("dynamic_total")) <= 2.0
