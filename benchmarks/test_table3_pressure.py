"""Table 3 — register pressure before/after promotion.

"Register promotion indeed increases register pressure and requires more
registers to color the graph.  The effect is more pronounced on routines
that require smaller numbers of colors."  We measure the same quantity —
the number of colors needed to color the interference graph — on the
routines with promotion opportunities from each proxy workload.
"""

from __future__ import annotations

from repro.bench.tables import format_table3
from repro.bench.workloads import ORDER


def check_table3_shape(pressure) -> None:
    rows = [row for name in ORDER for row in pressure[name]]
    deltas = [row.colors_after - row.colors_before for row in rows]

    # Pressure rises in aggregate...
    assert sum(deltas) > 0
    # ...and at least two routines visibly need more colors.
    assert sum(1 for d in deltas if d > 0) >= 2
    # No routine's pressure collapses (a big drop would mean promotion
    # broke the routine rather than extended live ranges).
    assert all(d >= -1 for d in deltas)

    # The paper's "more pronounced on routines that require smaller
    # numbers of colors": the largest increase happens at or below the
    # median pre-promotion color count.
    biggest = max(rows, key=lambda r: r.colors_after - r.colors_before)
    befores = sorted(r.colors_before for r in rows)
    median = befores[len(befores) // 2]
    assert biggest.colors_before <= median + 1

    # vortex: no promotion, no pressure change.
    for row in pressure["vortex"]:
        assert row.colors_after == row.colors_before


def test_table3_regenerate_and_check(benchmark, pressure):
    rows = [row for name in ORDER for row in pressure[name]]
    table = benchmark.pedantic(format_table3, args=(rows,), rounds=3, iterations=1)
    assert "Table 3" in table
    check_table3_shape(pressure)


def test_table3_shape(pressure):
    check_table3_shape(pressure)


def test_table3_collection_cost(benchmark):
    """Cost of one pressure measurement (compile, promote, liveness,
    interference, coloring search)."""
    from repro.bench.metrics import pressure_rows
    from repro.bench.workloads import WORKLOADS

    rows = benchmark.pedantic(
        pressure_rows, args=(WORKLOADS["ijpeg"],), rounds=3, iterations=1
    )
    assert rows and all(r.colors_before >= 1 for r in rows)
