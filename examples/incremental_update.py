#!/usr/bin/env python3
"""Incremental SSA update for cloned definitions — the paper's Example 2
(Figures 9 and 10, Section 4.5).

We build Figure 9's six-block interval with a single definition of x in
b1 and uses in b3, b4, b5; clone two stores (b2 and b3) as register
promotion would; and run ``update_ssa_for_cloned_resources``.  The
algorithm places phis at the iterated dominance frontier {b1, b5, b6},
renames the three uses exactly as the paper describes, and deletes the
two dead phis plus the now-dead original store.

Run:  python examples/incremental_update.py
"""

from repro.ir import Store, print_function
from repro.ir.instructions import Load
from repro.ir.parser import parse_module
from repro.ir.values import Const
from repro.ssa.incremental import update_ssa_for_cloned_resources

CFG = """
module example2
global @x = 0
func @f() {
b0:
  jmp b1
b1:
  st @x, 7
  %c1 = copy 1
  br %c1, b2, b3
b2:
  %c2 = copy 1
  br %c2, b4, b5
b3:
  %u3 = ld @x
  jmp b5
b4:
  %u4 = ld @x
  jmp b6
b5:
  %u5 = ld @x
  %c5 = copy 0
  br %c5, b1, b6
b6:
  ret
}
"""


def main() -> None:
    module = parse_module(CFG)
    func = module.get_function("f")
    x = module.get_global("x")

    # Figure 9's SSA state: one definition x0, three uses of it.
    store_b1 = next(i for i in func.instructions() if isinstance(i, Store))
    x0 = func.new_mem_name(x, store_b1)
    store_b1.mem_defs = [x0]
    for inst in func.instructions():
        if isinstance(inst, Load):
            inst.mem_uses = [x0]

    print("== before (Figure 9) ==")
    print(print_function(func))

    # Register promotion clones two stores: one in b2, one in b3.
    b2, b3 = func.find_block("b2"), func.find_block("b3")
    st1 = Store(x, Const(1))
    b2.insert_at_front(st1)
    x1 = func.new_mem_name(x, st1)
    st1.mem_defs = [x1]
    st2 = Store(x, Const(2))
    b3.insert_at_front(st2)
    x2 = func.new_mem_name(x, st2)
    st2.mem_defs = [x2]

    stats = update_ssa_for_cloned_resources(func, [x0], [x1, x2])

    print("\n== after (Figure 10, dead code already removed) ==")
    print(print_function(func))
    print(f"\n{stats}")
    print(
        "\nphis were placed at the IDF {b1, b5, b6}; the b1 and b6 phis "
        "died (no uses) and were deleted, as was the shadowed store in b1."
    )
    assert stats.phis_placed == 3 and stats.phis_deleted == 2


if __name__ == "__main__":
    main()
