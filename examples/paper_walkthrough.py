#!/usr/bin/env python3
"""A step-by-step walkthrough of the algorithm's internals on Figure 7.

Where the other examples show end results, this one narrates each phase
the way Section 4 presents it: the interval tree, the memory SSA web and
its reference sets, the loads-added/stores-added placements with their
profile weights, the profit computation, and finally the transformation
— using the same library entry points a custom pipeline would.

Run:  python examples/paper_walkthrough.py
"""

from repro.analysis.dominance import DominatorTree
from repro.analysis.intervals import normalize_for_promotion
from repro.frontend import compile_source
from repro.ir import print_function
from repro.memory import AliasModel, build_memory_ssa
from repro.profile import Interpreter, ProfileData
from repro.promotion import construct_ssa_webs
from repro.promotion.driver import promote_function
from repro.promotion.profitability import plan_web
from repro.ssa.construct import construct_ssa

SOURCE = """
int x = 0;

void foo() {
    x = x * 2 % 1000003;
}

int main() {
    for (int i = 0; i < 100; i++) {
        x++;
        if (x < 30) foo();
    }
    return x % 251;
}
"""


def main() -> None:
    module = compile_source(SOURCE)

    # Phase 1 — prepare: mem2reg for locals, CFG normalization.
    trees = {}
    for function in module.functions.values():
        construct_ssa(function)
        trees[function.name] = normalize_for_promotion(function)
    main_fn = module.get_function("main")
    tree = trees["main"]
    print("== interval tree of main ==")
    for interval in tree.bottom_up():
        kind = "root region" if interval.is_root else "interval"
        blocks = ", ".join(b.name for b in interval.blocks)
        print(f"  {kind} @{interval.header.name} (depth {interval.depth}): {blocks}")

    # Phase 2 — profile (one interpreter run).
    run = Interpreter(module).run("main", [])
    profile = ProfileData.from_execution(run)

    # Phase 3 — memory SSA and the loop's web.
    model = AliasModel.conservative(module)
    mssa = build_memory_ssa(main_fn, model)
    loop = tree.intervals[0]
    (web,) = construct_ssa_webs(main_fn, loop)
    print(f"\n== the loop's web for @x ==")
    print(f"  names:          {[str(n) for n in web.names]}")
    print(f"  loads:          {len(web.load_refs)}  stores: {len(web.store_refs)}")
    print(f"  aliased loads:  {len(web.aliased_load_refs)} (the call to foo)")
    print(f"  live-in:        {web.live_in}")

    # Phase 4 — the §4.3 profitability analysis.
    domtree = DominatorTree.compute(main_fn)
    plan = plan_web(web, profile, domtree)
    print("\n== plan (Section 4.3) ==")
    for name, anchor in plan.loads_added:
        print(
            f"  load of {name} at end of {anchor.block.name} "
            f"(freq {profile.freq_of(anchor)})"
        )
    for name, anchor in plan.stores_added:
        print(
            f"  store of {name} before {type(anchor).__name__} in "
            f"{anchor.block.name} (freq {profile.freq_of(anchor)})"
        )
    print(f"  profit: loads {plan.profit_loads:+}  stores {plan.profit_stores:+}")
    print(f"  remove stores: {plan.remove_stores}   promote: {plan.worthwhile}")

    # Phase 5 — transform everything (driver, Fig. 2).
    for function in module.functions.values():
        fn_mssa = build_memory_ssa(function, model)
        promote_function(function, fn_mssa, profile, trees[function.name])
    from repro.passes import (
        dead_code_elimination,
        dead_memory_elimination,
        propagate_copies,
        remove_dummy_loads,
    )

    for function in module.functions.values():
        remove_dummy_loads(function)
        propagate_copies(function)
        dead_code_elimination(function)
        dead_memory_elimination(function)

    print("\n== main after promotion (Figure 8's shape) ==")
    print(print_function(main_fn, with_mem=False))

    after = Interpreter(module).run("main", [])
    print(
        f"\ndynamic loads {run.loads} -> {after.loads}, "
        f"stores {run.stores} -> {after.stores}"
    )
    assert (after.output, after.return_value) == (run.output, run.return_value)
    assert after.loads < run.loads / 4


if __name__ == "__main__":
    main()
