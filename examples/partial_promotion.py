#!/usr/bin/env python3
"""Partial promotion around a cold call — the paper's Figures 7 and 8.

The program is the paper's running example:

    for (i = 0; i < 100; i++) {
        x++;
        if (x < 30) foo();
    }

A call anywhere in the loop defeats classic loop promotion (Lu & Cooper
reject the variable outright).  The paper's algorithm instead *sinks* the
store next to the call and reloads after it, so the hot path runs with x
in a register and only the cold path pays.

Run:  python examples/partial_promotion.py
"""

from repro.baselines.lucooper import LuCooperPipeline
from repro.frontend import compile_source
from repro.ir import print_function
from repro.promotion import PromotionPipeline

SOURCE = """
int x = 0;

void foo() {
    x = x * 2 % 1000003;
}

int main() {
    for (int i = 0; i < 100; i++) {
        x++;
        if (x < 30) {
            foo();
        }
    }
    return x % 251;
}
"""


def main() -> None:
    # The paper's algorithm: partial promotion.
    module = compile_source(SOURCE)
    ours = PromotionPipeline().run(module)
    print("== Sastry-Ju promotion (Figure 8's transformation) ==")
    print(ours.report())
    print()
    print(print_function(module.get_function("main")))

    # Lu & Cooper: "the presence of function calls precludes any
    # promotion even if these calls are executed very infrequently."
    lc = LuCooperPipeline().run(compile_source(SOURCE))
    print("\n== Lu-Cooper baseline on the same program ==")
    print(lc.report())

    saved_ours = ours.dynamic_before.total - ours.dynamic_after.total
    saved_lc = lc.dynamic_before.total - lc.dynamic_after.total
    print(f"\nmemory ops removed — ours: {saved_ours}, Lu-Cooper: {saved_lc}")
    assert saved_ours > saved_lc


if __name__ == "__main__":
    main()
