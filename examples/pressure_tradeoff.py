#!/usr/bin/env python3
"""The register-pressure trade-off (paper Table 3), swept as a knob.

The paper observes that promotion "increases register pressure and
requires more registers to color the graph."  This repository adds a
pressure-aware gate (`PromotionOptions(pressure_limit=k)`): promotion in
a function stops once its interference graph needs k colors.  This
example sweeps the budget on the `go` proxy workload and prints the
trade-off curve — the empirical content behind Table 3's caveat.

Run:  python examples/pressure_tradeoff.py
"""

from repro.bench.workloads import WORKLOADS
from repro.frontend import compile_source
from repro.promotion import PromotionOptions, PromotionPipeline
from repro.regalloc import build_interference_graph, colors_needed


def measure(limit):
    module = compile_source(WORKLOADS["go"].source)
    options = PromotionOptions(pressure_limit=limit)
    result = PromotionPipeline(options=options).run(module)
    assert result.output_matches
    colors = max(
        colors_needed(build_interference_graph(f)) for f in module.functions.values()
    )
    improvement = 100.0 * (
        result.dynamic_before.total - result.dynamic_after.total
    ) / result.dynamic_before.total
    return colors, improvement


def main() -> None:
    print(f"{'color budget':>13} {'max colors':>11} {'dyn. improvement':>17}")
    rows = []
    for limit in (3, 4, 5, 6, 8, 10, None):
        colors, improvement = measure(limit)
        rows.append(improvement)
        label = "unlimited" if limit is None else str(limit)
        print(f"{label:>13} {colors:>11} {improvement:>16.1f}%")
    # The curve is monotone: looser budgets never hurt.
    assert all(a <= b + 1e-9 for a, b in zip(rows, rows[1:]))
    print(
        "\nTighter budgets cap the colors the routine needs at the cost of"
        "\ndynamic memory traffic — Table 3's observation as a dial."
    )


if __name__ == "__main__":
    main()
