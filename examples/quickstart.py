#!/usr/bin/env python3
"""Quickstart: compile a mini-C program, run SSA register promotion, and
compare memory traffic before and after.

This is the paper's motivating scenario (Section 2): a global variable
updated inside a hot loop costs a load and a store per iteration until
promotion assigns it to a virtual register for the loop's extent.

Run:  python examples/quickstart.py
"""

from repro.frontend import compile_source
from repro.ir import print_function
from repro.profile.interp import run_module
from repro.promotion import PromotionPipeline

SOURCE = """
int hits = 0;        // global: lives in memory, candidate for promotion
int threshold = 50;

void report(int n) {  // rarely called: the cold path
    print(n);
}

int main() {
    for (int i = 0; i < 1000; i++) {
        hits += i % 3;                  // load + store per iteration
        if (hits % 997 == 0) {          // almost never true
            report(hits);
        }
    }
    return hits % (threshold + 1);
}
"""


def main() -> None:
    # Baseline: compile and execute unoptimized.
    module = compile_source(SOURCE)
    before = run_module(module)
    print("== before promotion ==")
    print(f"dynamic loads/stores: {before.loads} / {before.stores}")

    # Promote: one call runs mem2reg, CFG normalization, profiling,
    # memory SSA, interval-scoped web promotion, and cleanup.
    module = compile_source(SOURCE)
    result = PromotionPipeline().run(module)

    print("\n== after promotion ==")
    print(result.report())

    print("\n== main() after promotion ==")
    print(print_function(module.get_function("main"), with_mem=False))

    assert result.output_matches, "promotion must preserve behaviour"
    assert result.dynamic_after.total < before.loads + before.stores


if __name__ == "__main__":
    main()
