#!/usr/bin/env python3
"""Regenerate the paper's evaluation tables over the SPECInt95 proxies.

Equivalent to ``repro-report --table all --compare`` but shown as a
library client: collect rows per promoter, format the three tables, and
print the head-to-head against the Lu-Cooper and Mahlke baselines.

Run:  python examples/spec_tables.py          (~10 seconds)
"""

from repro.bench import (
    WORKLOADS,
    format_table1,
    format_table2,
    format_table3,
    measure_workload,
    pressure_rows,
)
from repro.bench.tables import format_comparison
from repro.bench.workloads import ORDER


def main() -> None:
    ours = [measure_workload(WORKLOADS[name]) for name in ORDER]
    assert all(row.output_matches for row in ours)

    print(format_table1(ours))
    print()
    print(format_table2(ours))
    print()
    pressure = [row for name in ORDER for row in pressure_rows(WORKLOADS[name])]
    print(format_table3(pressure))
    print()
    print(
        format_comparison(
            ours,
            [measure_workload(WORKLOADS[n], "lucooper") for n in ORDER],
            [measure_workload(WORKLOADS[n], "mahlke") for n in ORDER],
        )
    )


if __name__ == "__main__":
    main()
