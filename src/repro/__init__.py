"""repro — a reproduction of Sastry & Ju's SSA-based scalar register
promotion (PLDI 1998).

The package provides a small but complete optimizing-compiler substrate
(IR, SSA construction, dominance/interval analyses, an interpreter, a
mini-C front end, a graph-coloring back end) and, on top of it, the
paper's contributions: interval-scoped profile-driven register promotion
over memory SSA webs, and incremental SSA update for cloned definitions.

Quick start::

    from repro.frontend import compile_source
    from repro.promotion import PromotionPipeline

    module = compile_source(source_text)
    result = PromotionPipeline().run(module)
    print(result.report())
"""

__version__ = "1.0.0"
