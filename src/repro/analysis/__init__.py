"""Program analyses: dominance, iterated dominance frontiers, intervals,
liveness, and CFG normalization utilities."""

from repro.analysis.cfgutils import (
    postorder,
    reverse_postorder,
    remove_unreachable_blocks,
    split_critical_edges,
    split_edge,
)
from repro.analysis.dominance import DominatorTree
from repro.analysis.idf import iterated_dominance_frontier, idf_cytron, idf_sreedhar_gao
from repro.analysis.intervals import Interval, IntervalTree, normalize_for_promotion
from repro.analysis.liveness import Liveness

__all__ = [
    "DominatorTree",
    "Interval",
    "IntervalTree",
    "Liveness",
    "idf_cytron",
    "idf_sreedhar_gao",
    "iterated_dominance_frontier",
    "normalize_for_promotion",
    "postorder",
    "remove_unreachable_blocks",
    "reverse_postorder",
    "split_critical_edges",
    "split_edge",
]
