"""CFG traversal and normalization utilities.

``split_critical_edges`` implements the paper's assumption that "each
interval entry or exit edge of an interval is not a critical edge": "A
critical edge can always be removed by inserting a basic block on the
edge."  Phi and memphi incoming lists are kept consistent across splits.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Jump, MemPhi, Phi


def postorder(function: Function) -> List[BasicBlock]:
    """Reachable blocks in postorder (iterative DFS, successor order)."""
    seen = set()
    order: List[BasicBlock] = []
    stack: List[Tuple[BasicBlock, int]] = [(function.entry, 0)]
    seen.add(id(function.entry))
    while stack:
        block, i = stack.pop()
        succs = block.succs
        if i < len(succs):
            stack.append((block, i + 1))
            succ = succs[i]
            if id(succ) not in seen:
                seen.add(id(succ))
                stack.append((succ, 0))
        else:
            order.append(block)
    return order


def reverse_postorder(function: Function) -> List[BasicBlock]:
    return list(reversed(postorder(function)))


def remove_unreachable_blocks(function: Function) -> List[BasicBlock]:
    """Delete unreachable blocks; returns the removed blocks."""
    reachable = {id(b) for b in postorder(function)}
    dead = [b for b in function.blocks if id(b) not in reachable]
    for block in dead:
        function.remove_block(block)
    return dead


def is_critical_edge(src: BasicBlock, dst: BasicBlock) -> bool:
    """An edge is critical if its source has multiple successors and its
    target has multiple predecessors."""
    return len(src.succs) > 1 and len(dst.preds) > 1


def split_edge(src: BasicBlock, dst: BasicBlock, hint: str = "split") -> BasicBlock:
    """Insert a fresh block on the edge ``src -> dst``.

    Phi/memphi incoming entries in ``dst`` are retargeted to the new
    block.  Returns the new block.  If ``src`` targets ``dst`` on several
    terminator slots (a condbr with both arms equal), all of them are
    redirected to the single new block.
    """
    function = src.function
    assert function is not None and dst.function is function
    mid = function.new_block(hint)
    mid.append(Jump(dst))
    # Retarget src's terminator from dst to mid.
    src.retarget(dst, mid)
    for phi in list(dst.all_phis()):
        if isinstance(phi, (Phi, MemPhi)):
            phi.replace_incoming_block(src, mid)
    return mid


def split_critical_edges(function: Function) -> List[BasicBlock]:
    """Split every critical edge; returns the inserted blocks."""
    inserted: List[BasicBlock] = []
    for src in list(function.blocks):
        term = src.terminator
        if term is None or len(src.succs) < 2:
            continue
        for dst in list(src.succs):
            if len(dst.preds) > 1:
                inserted.append(split_edge(src, dst, hint="ce"))
    return inserted


def edges(function: Function) -> List[Tuple[BasicBlock, BasicBlock]]:
    """All CFG edges in deterministic (block order, successor order)."""
    result = []
    for block in function.blocks:
        for succ in block.succs:
            result.append((block, succ))
    return result
