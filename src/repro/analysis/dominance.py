"""Dominator tree and dominance frontiers.

Uses the Cooper-Harvey-Kennedy iterative algorithm ("A Simple, Fast
Dominance Algorithm"), which is simple, robust, and fast at our scale,
plus Cooper's two-finger dominance-frontier computation.  ``dominates``
queries are O(1) via preorder timestamp intervals on the dominator tree.

Unreachable blocks are excluded: they have no immediate dominator and do
not appear in :attr:`DominatorTree.reachable`.  Passes are expected to run
:func:`repro.analysis.cfgutils.remove_unreachable_blocks` first if they
need full coverage.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function


class DominatorTree:
    def __init__(self, function: Function) -> None:
        self.function = function
        #: Immediate dominator of each reachable block (entry maps to None).
        self.idom: Dict[BasicBlock, Optional[BasicBlock]] = {}
        #: Dominator-tree children, in reverse-postorder for determinism.
        self.children: Dict[BasicBlock, List[BasicBlock]] = {}
        #: Reachable blocks in reverse postorder.
        self.reachable: List[BasicBlock] = []
        #: Depth of each block in the dominator tree (entry = 0).
        self.depth: Dict[BasicBlock, int] = {}
        self._tin: Dict[BasicBlock, int] = {}
        self._tout: Dict[BasicBlock, int] = {}
        self._frontier: Optional[Dict[BasicBlock, List[BasicBlock]]] = None

    # -- construction -----------------------------------------------------

    @classmethod
    def compute(cls, function: Function) -> "DominatorTree":
        from repro.analysis.cfgutils import reverse_postorder

        tree = cls(function)
        rpo = reverse_postorder(function)
        tree.reachable = rpo
        index = {b: i for i, b in enumerate(rpo)}
        entry = function.entry

        idom: Dict[BasicBlock, Optional[BasicBlock]] = {entry: entry}
        changed = True
        while changed:
            changed = False
            for block in rpo:
                if block is entry:
                    continue
                new_idom: Optional[BasicBlock] = None
                for pred in block.preds:
                    if pred not in idom:
                        continue  # unreachable or not yet processed
                    if new_idom is None:
                        new_idom = pred
                    else:
                        new_idom = _intersect(pred, new_idom, idom, index)
                if new_idom is not None and idom.get(block) is not new_idom:
                    idom[block] = new_idom
                    changed = True

        tree.idom = {b: (None if b is entry else idom[b]) for b in rpo}
        tree.children = {b: [] for b in rpo}
        for block in rpo:
            parent = tree.idom[block]
            if parent is not None:
                tree.children[parent].append(block)
        tree._compute_timestamps(entry)
        return tree

    def _compute_timestamps(self, entry: BasicBlock) -> None:
        clock = 0
        stack: List = [(entry, False)]
        while stack:
            block, done = stack.pop()
            if done:
                self._tout[block] = clock
                clock += 1
                continue
            self._tin[block] = clock
            clock += 1
            parent = self.idom[block]
            self.depth[block] = 0 if parent is None else self.depth[parent] + 1
            stack.append((block, True))
            for child in reversed(self.children[block]):
                stack.append((child, False))

    # -- queries -------------------------------------------------------------

    def dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        """True iff ``a`` dominates ``b`` (reflexively)."""
        if a not in self._tin or b not in self._tin:
            raise KeyError("dominance query on unreachable block")
        return self._tin[a] <= self._tin[b] and self._tout[b] <= self._tout[a]

    def strictly_dominates(self, a: BasicBlock, b: BasicBlock) -> bool:
        return a is not b and self.dominates(a, b)

    def least_common_dominator(self, blocks: List[BasicBlock]) -> BasicBlock:
        """The deepest block dominating every block in ``blocks``.

        The paper uses this as the preheader position of an improper
        (multi-entry) interval.
        """
        if not blocks:
            raise ValueError("least_common_dominator of empty set")
        lcd = blocks[0]
        for block in blocks[1:]:
            lcd = self._lca(lcd, block)
        return lcd

    def _lca(self, a: BasicBlock, b: BasicBlock) -> BasicBlock:
        while self.depth[a] > self.depth[b]:
            a = self.idom[a]  # type: ignore[assignment]
        while self.depth[b] > self.depth[a]:
            b = self.idom[b]  # type: ignore[assignment]
        while a is not b:
            a = self.idom[a]  # type: ignore[assignment]
            b = self.idom[b]  # type: ignore[assignment]
        return a

    def dominance_frontier(self) -> Dict[BasicBlock, List[BasicBlock]]:
        """Per-block dominance frontier (computed lazily, cached)."""
        if self._frontier is None:
            frontier: Dict[BasicBlock, List[BasicBlock]] = {
                b: [] for b in self.reachable
            }
            for block in self.reachable:
                if len(block.preds) < 2:
                    continue
                for pred in block.preds:
                    if pred not in self.idom:
                        continue
                    runner = pred
                    while runner is not self.idom[block]:
                        if block not in frontier[runner]:
                            frontier[runner].append(block)
                        nxt = self.idom[runner]
                        if nxt is None:
                            break
                        runner = nxt
            self._frontier = frontier
        return self._frontier


def _intersect(
    a: BasicBlock,
    b: BasicBlock,
    idom: Dict[BasicBlock, Optional[BasicBlock]],
    index: Dict[BasicBlock, int],
) -> BasicBlock:
    while a is not b:
        while index[a] > index[b]:
            a = idom[a]  # type: ignore[assignment]
        while index[b] > index[a]:
            b = idom[b]  # type: ignore[assignment]
    return a
