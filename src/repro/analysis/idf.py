"""Iterated dominance frontier (IDF) computation.

Two implementations:

``idf_cytron``
    The classic worklist formulation from Cytron et al. [CFR+91]: iterate
    ``DF(S ∪ IDF)`` to a fixed point using precomputed per-block frontiers.

``idf_sreedhar_gao``
    The linear-time DJ-graph algorithm of Sreedhar and Gao [SrG95], which
    the paper cites as the phi-placement engine for its batched
    incremental SSA update ("We can use a linear time algorithm [SrG95] to
    compute the iterative dominance frontier for multiple definitions").

Both return the same set; the property-based tests cross-check them on
random CFGs.  :func:`iterated_dominance_frontier` is the default entry
point and dispatches to the DJ-graph algorithm.
"""

from __future__ import annotations

from typing import Iterable, List, Set

from repro.analysis.dominance import DominatorTree
from repro.ir.basicblock import BasicBlock


def iterated_dominance_frontier(
    domtree: DominatorTree, defs: Iterable[BasicBlock]
) -> List[BasicBlock]:
    """IDF of ``defs`` (deterministic order); DJ-graph algorithm."""
    return idf_sreedhar_gao(domtree, defs)


def idf_cytron(domtree: DominatorTree, defs: Iterable[BasicBlock]) -> List[BasicBlock]:
    """Worklist IDF over precomputed dominance frontiers."""
    frontier = domtree.dominance_frontier()
    result: List[BasicBlock] = []
    in_result: Set[int] = set()
    worklist = list(defs)
    on_worklist = {id(b) for b in worklist}
    while worklist:
        block = worklist.pop()
        for f in frontier.get(block, []):
            if id(f) not in in_result:
                in_result.add(id(f))
                result.append(f)
                if id(f) not in on_worklist:
                    on_worklist.add(id(f))
                    worklist.append(f)
    result.sort(key=lambda b: domtree._tin[b])
    return result


def idf_sreedhar_gao(
    domtree: DominatorTree, defs: Iterable[BasicBlock]
) -> List[BasicBlock]:
    """Linear-time IDF via the DJ graph [SrG95].

    The DJ graph is the dominator tree (D-edges) plus all CFG edges that
    are not D-edges (J-edges).  Nodes are processed deepest-first from a
    "piggy bank"; visiting a node walks its dominator subtree and adds a
    J-edge target ``y`` to the IDF whenever ``level(y) <= level(root)``.
    """
    level = domtree.depth
    defs = list(defs)
    if not defs:
        return []
    max_level = max(level.values())
    bank: List[List[BasicBlock]] = [[] for _ in range(max_level + 1)]
    in_bank: Set[int] = set()
    def_set = {id(b) for b in defs}
    for block in defs:
        bank[level[block]].append(block)
        in_bank.add(id(block))

    in_idf: Set[int] = set()
    idf: List[BasicBlock] = []
    visited: Set[int] = set()

    current_level = max_level
    while current_level >= 0:
        if not bank[current_level]:
            current_level -= 1
            continue
        root = bank[current_level].pop()
        root_level = level[root]
        # Iterative dominator-subtree walk from `root`.
        stack = [root]
        visited.add(id(root))
        while stack:
            x = stack.pop()
            for y in x.succs:
                if y not in level:
                    continue  # unreachable successor
                if domtree.idom.get(y) is x:
                    continue  # D-edge; handled by the subtree walk below
                # J-edge x -> y.
                if level[y] <= root_level and id(y) not in in_idf:
                    in_idf.add(id(y))
                    idf.append(y)
                    if id(y) not in in_bank:
                        in_bank.add(id(y))
                        bank[level[y]].append(y)
                        if level[y] > current_level:
                            # Cannot happen: y's level <= root's level,
                            # and root came off the deepest bank slot.
                            raise AssertionError("piggy bank ordering violated")
            for child in domtree.children.get(x, []):
                if id(child) not in visited and id(child) not in in_bank:
                    visited.add(id(child))
                    stack.append(child)
    idf.sort(key=lambda b: domtree._tin[b])
    return idf
