"""Interval analysis: the loop-nesting structure promotion is scoped by.

The paper defines an interval as "a strongly connected component of a
control flow graph" and promotes bottom-up over the *interval tree*.  We
build that tree by recursive SCC decomposition (Bourdoncle's construction):
the non-trivial SCCs of the CFG are the outermost intervals; removing the
edges that enter each interval's entry blocks and recursing inside yields
nested intervals.  This handles *improper* (multi-entry, irreducible)
intervals naturally: an SCC may have several entry blocks, in which case
the unique preheader position "is the least common dominator of all of the
entry basic blocks" (Section 4.1).

A pseudo-interval — the *root region*, covering the whole function body —
is the final promotion scope, so straight-line top-level code can also be
promoted (stores sink to the returns, which observe globals).
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.cfgutils import (
    remove_unreachable_blocks,
    reverse_postorder,
    split_critical_edges,
    split_edge,
)
from repro.analysis.dominance import DominatorTree
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Jump, MemPhi, Phi


class Interval:
    """One interval (strongly connected region) or the root region."""

    def __init__(
        self,
        header: BasicBlock,
        blocks: Sequence[BasicBlock],
        entries: Sequence[BasicBlock],
        is_root: bool = False,
    ) -> None:
        #: Primary entry (first entry in reverse postorder).
        self.header = header
        #: All member blocks, including nested intervals' blocks.
        self.blocks: List[BasicBlock] = list(blocks)
        self._block_ids: Set[int] = {id(b) for b in self.blocks}
        #: Blocks with a predecessor outside the interval.
        self.entries: List[BasicBlock] = list(entries)
        self.is_root = is_root
        self.parent: Optional["Interval"] = None
        self.children: List["Interval"] = []
        #: Loop-nesting depth; the root region has depth 0.
        self.depth = 0
        #: Block whose end is the load-insertion point for this interval
        #: (a dedicated preheader block for proper intervals, the least
        #: common dominator of the entries for improper ones).  Assigned
        #: by :func:`normalize_for_promotion` / :meth:`IntervalTree.compute`.
        self.preheader: Optional[BasicBlock] = None

    @property
    def is_proper(self) -> bool:
        """Single-entry (reducible) interval."""
        return len(self.entries) == 1

    def contains(self, block: BasicBlock) -> bool:
        return id(block) in self._block_ids

    def exit_edges(self) -> List[Tuple[BasicBlock, BasicBlock]]:
        """Edges from a member block to a non-member, in block order."""
        result = []
        for block in self.blocks:
            for succ in block.succs:
                if not self.contains(succ):
                    result.append((block, succ))
        return result

    def back_edge_preds(self) -> List[BasicBlock]:
        """Member predecessors of the entries (latch blocks)."""
        result = []
        for entry in self.entries:
            for pred in entry.preds:
                if self.contains(pred):
                    result.append(pred)
        return result

    def __repr__(self) -> str:
        kind = (
            "root" if self.is_root else ("interval" if self.is_proper else "improper")
        )
        return f"Interval({kind} @{self.header.name}, {len(self.blocks)} blocks)"


class IntervalTree:
    """The interval tree of one function, rooted at the whole-body region."""

    def __init__(self, function: Function, root: Interval) -> None:
        self.function = function
        self.root = root
        #: Every interval (excluding the root region), outermost first.
        self.intervals: List[Interval] = []
        self._collect(root)

    def _collect(self, interval: Interval) -> None:
        for child in interval.children:
            self.intervals.append(child)
            self._collect(child)

    @classmethod
    def compute(
        cls, function: Function, domtree: Optional[DominatorTree] = None
    ) -> "IntervalTree":
        rpo = reverse_postorder(function)
        rpo_index = {id(b): i for i, b in enumerate(rpo)}
        root = Interval(function.entry, rpo, [function.entry], is_root=True)
        _find_nested(rpo, set(), root, rpo_index)
        _assign_depths(root)
        tree = cls(function, root)
        if domtree is None:
            # Local import: this module is pulled in by the package
            # __init__, which the cache's own imports traverse.
            from repro.parallel import cache as analysis_cache

            domtree = analysis_cache.dominator_tree(function)
        tree.assign_preheaders(domtree)
        return tree

    def assign_preheaders(self, domtree: DominatorTree) -> None:
        """Locate each interval's preheader position (without editing the
        CFG; :func:`normalize_for_promotion` creates dedicated blocks)."""
        self.root.preheader = None  # loads go at the top of the entry block
        for interval in self.intervals:
            if interval.is_proper:
                outside = [p for p in interval.header.preds if not interval.contains(p)]
                if len(outside) == 1 and len(outside[0].succs) == 1:
                    interval.preheader = outside[0]
                else:
                    interval.preheader = None  # needs a dedicated block
            else:
                # The paper: the preheader of an improper interval is the
                # least common dominator of the entry blocks — more
                # precisely, a block that *strictly dominates all* of the
                # interval's blocks, so hoist until outside the interval.
                lcd = domtree.least_common_dominator(interval.entries)
                while interval.contains(lcd):
                    parent = domtree.idom[lcd]
                    if parent is None:
                        break
                    lcd = parent
                interval.preheader = lcd

    def bottom_up(self) -> Iterator[Interval]:
        """All intervals, children before parents, root region last."""
        yield from self._bottom_up(self.root)

    def _bottom_up(self, interval: Interval) -> Iterator[Interval]:
        for child in interval.children:
            yield from self._bottom_up(child)
        yield interval

    def innermost(self, block: BasicBlock) -> Interval:
        """The innermost interval (or root region) containing ``block``."""
        best = self.root
        stack = list(self.root.children)
        while stack:
            interval = stack.pop()
            if interval.contains(block):
                if interval.depth > best.depth:
                    best = interval
                stack.extend(interval.children)
        return best

    def loop_depth(self, block: BasicBlock) -> int:
        return self.innermost(block).depth


def _find_nested(
    nodes: List[BasicBlock],
    removed_edges: Set[Tuple[int, int]],
    parent: Interval,
    rpo_index: Dict[int, int],
) -> None:
    """Find the outermost SCCs of the subgraph ``nodes`` (minus
    ``removed_edges``), attach them to ``parent``, and recurse."""
    node_ids = {id(b) for b in nodes}

    def succs(block: BasicBlock) -> List[BasicBlock]:
        return [
            s
            for s in block.succs
            if id(s) in node_ids and (id(block), id(s)) not in removed_edges
        ]

    for scc in _tarjan_sccs(nodes, succs):
        if len(scc) == 1 and scc[0] not in succs(scc[0]):
            continue  # trivial SCC
        scc_ids = {id(b) for b in scc}
        entries = [
            b
            for b in scc
            if b is b.function.entry
            or any(id(p) not in scc_ids for p in b.preds)
        ]
        if not entries:
            # Unreachable cycle; skip (callers should have removed these).
            continue
        entries.sort(key=lambda b: rpo_index[id(b)])
        scc_sorted = sorted(scc, key=lambda b: rpo_index[id(b)])
        interval = Interval(entries[0], scc_sorted, entries)
        interval.parent = parent
        parent.children.append(interval)
        # Remove the edges entering the entry blocks and find inner loops.
        inner_removed = set(removed_edges)
        for entry in entries:
            for pred in entry.preds:
                if id(pred) in scc_ids:
                    inner_removed.add((id(pred), id(entry)))
        _find_nested(scc_sorted, inner_removed, interval, rpo_index)
    parent.children.sort(key=lambda iv: rpo_index[id(iv.header)])


def _assign_depths(root: Interval) -> None:
    stack = [(root, 0)]
    while stack:
        interval, depth = stack.pop()
        interval.depth = depth
        for child in interval.children:
            stack.append((child, depth + 1))


def _tarjan_sccs(nodes: List[BasicBlock], succs) -> List[List[BasicBlock]]:
    """Iterative Tarjan SCC over ``nodes`` with the given successor
    function; SCCs are returned in reverse topological discovery order,
    deterministically."""
    index_of: Dict[int, int] = {}
    lowlink: Dict[int, int] = {}
    on_stack: Set[int] = set()
    stack: List[BasicBlock] = []
    sccs: List[List[BasicBlock]] = []
    counter = [0]

    for start in nodes:
        if id(start) in index_of:
            continue
        work: List[Tuple[BasicBlock, int]] = [(start, 0)]
        while work:
            node, si = work[-1]
            if si == 0:
                index_of[id(node)] = lowlink[id(node)] = counter[0]
                counter[0] += 1
                stack.append(node)
                on_stack.add(id(node))
            children = succs(node)
            advanced = False
            while si < len(children):
                child = children[si]
                si += 1
                if id(child) not in index_of:
                    work[-1] = (node, si)
                    work.append((child, 0))
                    advanced = True
                    break
                if id(child) in on_stack:
                    lowlink[id(node)] = min(lowlink[id(node)], index_of[id(child)])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[id(parent)] = min(lowlink[id(parent)], lowlink[id(node)])
            if lowlink[id(node)] == index_of[id(node)]:
                scc = []
                while True:
                    member = stack.pop()
                    on_stack.discard(id(member))
                    scc.append(member)
                    if member is node:
                        break
                sccs.append(scc)
    return sccs


def normalize_for_promotion(function: Function) -> IntervalTree:
    """Prepare a function's CFG for register promotion.

    Removes unreachable blocks, splits critical edges, gives every proper
    interval a dedicated preheader block, and gives every interval exit
    edge a dedicated tail block (target with exactly one predecessor).
    Returns the recomputed interval tree with preheaders assigned.

    The paper assumes all of this (Section 4.1): entry/exit edges are not
    critical, a preheader "strictly dominates all of the basic blocks in
    the interval", and "the target of an interval exit edge is called a
    tail and is outside the interval".
    """
    remove_unreachable_blocks(function)
    split_critical_edges(function)
    tree = IntervalTree.compute(function)

    changed = False
    for interval in tree.intervals:
        if interval.is_proper and interval.preheader is None:
            _create_preheader(function, interval)
            changed = True
    # Dedicated tails: split exit edges whose target has several preds.
    tree = IntervalTree.compute(function) if changed else tree
    changed = False
    for interval in tree.intervals:
        for src, dst in interval.exit_edges():
            if len(dst.preds) > 1:
                split_edge(src, dst, hint="tail")
                changed = True
    if changed:
        tree = IntervalTree.compute(function)
    return tree


def _create_preheader(function: Function, interval: Interval) -> BasicBlock:
    """Create a dedicated preheader block for a proper interval.

    All edges from outside predecessors into the header are redirected to
    a fresh block ending in a jump to the header.  Phi and memphi inputs
    in the header are folded: the outside incoming values move to a new
    phi in the preheader.
    """
    header = interval.header
    outside = [p for p in header.preds if not interval.contains(p)]
    pre = function.new_block("ph")

    for phi in list(header.all_phis()):
        if isinstance(phi, Phi):
            outside_in = [(b, v) for b, v in phi.incoming if b in outside]
            if len(outside_in) == 1:
                merged = outside_in[0][1]
            else:
                merged_reg = function.new_reg("ph")
                pre.insert_at_front(Phi(merged_reg, outside_in))
                merged = merged_reg
            phi.incoming = [(b, v) for b, v in phi.incoming if b not in outside]
            phi.incoming.append((pre, merged))
            phi._sync_operands()
        elif isinstance(phi, MemPhi):
            outside_in = [(b, n) for b, n in phi.incoming if b in outside]
            if len(outside_in) == 1:
                merged_name = outside_in[0][1]
            else:
                merged_name = function.new_mem_name(phi.var)
                pre.insert_at_front(MemPhi(phi.var, merged_name, outside_in))
            phi.incoming = [(b, n) for b, n in phi.incoming if b not in outside]
            phi.incoming.append((pre, merged_name))
            phi._sync_mem_uses()

    pre.append(Jump(header))
    for pred in outside:
        pred.retarget(header, pre)
    return pre
