"""Live-variable analysis over virtual registers.

Backward dataflow with the usual SSA-aware conventions: a phi's incoming
value is live out of the corresponding *predecessor* (not live into the
phi's block), and a phi's target is defined at the top of its block.
This is what the interference-graph builder (Table 3's substrate)
consumes, both on SSA form and on post-phi-elimination code (where there
are simply no phis left).
"""

from __future__ import annotations

from typing import Dict, Set

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import Phi
from repro.ir.values import VReg


class Liveness:
    def __init__(self, function: Function) -> None:
        self.function = function
        self.live_in: Dict[BasicBlock, Set[VReg]] = {}
        self.live_out: Dict[BasicBlock, Set[VReg]] = {}

    @classmethod
    def compute(cls, function: Function) -> "Liveness":
        from repro.analysis.cfgutils import postorder

        result = cls(function)
        blocks = postorder(function)  # backward problem: postorder converges fast
        use: Dict[BasicBlock, Set[VReg]] = {}
        defs: Dict[BasicBlock, Set[VReg]] = {}
        phi_uses_out: Dict[BasicBlock, Set[VReg]] = {b: set() for b in blocks}

        for block in blocks:
            u: Set[VReg] = set()
            d: Set[VReg] = set()
            for inst in block.instructions:
                if isinstance(inst, Phi):
                    # Incoming values are live at the end of the preds.
                    for pred, value in inst.incoming:
                        if isinstance(value, VReg):
                            phi_uses_out.setdefault(pred, set()).add(value)
                    d.add(inst.dst)
                    continue
                for op in inst.operands:
                    if isinstance(op, VReg) and op not in d:
                        u.add(op)
                if inst.dst is not None:
                    d.add(inst.dst)
            use[block] = u
            defs[block] = d
            result.live_in[block] = set()
            result.live_out[block] = set()

        changed = True
        while changed:
            changed = False
            for block in blocks:
                out: Set[VReg] = set(phi_uses_out.get(block, ()))
                for succ in block.succs:
                    for reg in result.live_in.get(succ, ()):
                        out.add(reg)
                    # Phi targets are not live-in of succ; their incoming
                    # values were collected into phi_uses_out already.
                new_in = use[block] | (out - defs[block])
                if out != result.live_out[block] or new_in != result.live_in[block]:
                    result.live_out[block] = out
                    result.live_in[block] = new_in
                    changed = True
        return result

    def live_across(self, reg: VReg) -> int:
        """Number of blocks whose live-out set contains ``reg`` (a cheap
        live-range-size proxy used in diagnostics)."""
        return sum(1 for s in self.live_out.values() if reg in s)
