"""Related-work baselines reimplemented for comparison (paper §6).

* :mod:`repro.baselines.lucooper` — Lu & Cooper, "Register Promotion in
  C Programs" (PLDI 1997): loop-based, profile-blind, rejects a variable
  in any loop containing an ambiguous (aliased) reference to it.
* :mod:`repro.baselines.mahlke` — Mahlke's IMPACT global variable
  migration (1992): superblock-based and profile-driven, but gives up
  when a side-effecting call sits on the hot trace.

Both reuse this repository's web machinery for the mechanical parts, so
differences in results isolate the *policy* differences the paper argues
about (profile use, partial promotion, web granularity, interval
recursion).
"""

from repro.baselines.lucooper import LuCooperPipeline, lu_cooper_promote
from repro.baselines.mahlke import MahlkePipeline, mahlke_promote

__all__ = [
    "LuCooperPipeline",
    "MahlkePipeline",
    "lu_cooper_promote",
    "mahlke_promote",
]
