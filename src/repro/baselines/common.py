"""Shared mechanics for the baseline promoters.

The baselines differ from the paper's algorithm in *policy* (which scopes
and variables to promote), not in mechanics, so they reuse
:class:`repro.promotion.webpromote.WebPromotion` for the transformation
itself and a pipeline skeleton mirroring
:class:`repro.promotion.pipeline.PromotionPipeline` for measurement.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from repro.analysis.dominance import DominatorTree
from repro.analysis.intervals import Interval, IntervalTree, normalize_for_promotion
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.verify import verify_module
from repro.memory.aliasing import AliasModel
from repro.memory.memssa import MemorySSA, build_memory_ssa
from repro.passes.copyprop import propagate_copies
from repro.passes.dce import (
    dead_code_elimination,
    dead_memory_elimination,
    remove_dummy_loads,
)
from repro.profile.interp import Interpreter
from repro.profile.profiles import ProfileData
from repro.promotion.driver import FunctionPromotionStats
from repro.promotion.pipeline import DynamicCounts, PipelineResult, StaticCounts
from repro.promotion.profitability import plan_web
from repro.promotion.webpromote import WebPromotion
from repro.promotion.webs import Web
from repro.ssa.construct import construct_ssa


def promote_web_unconditionally(
    function: Function,
    mssa: MemorySSA,
    web: Web,
    interval: Interval,
    profile: ProfileData,
    domtree: DominatorTree,
    stats: FunctionPromotionStats,
) -> None:
    """Promote one web without a profitability gate (the baselines make
    their decision *before* reaching this point)."""
    stats.webs_seen += 1
    entry_name = mssa.entry_names.get(web.var)
    if entry_name is None:
        from repro.memory.resources import MemName

        entry_name = MemName(web.var, 0, None)
        mssa.entry_names[web.var] = entry_name

    if not web.has_defs:
        if not web.load_refs:
            stats.webs_skipped += 1
            return
        from repro.promotion.driver import _promote_no_defs_web

        _promote_no_defs_web(function, web, interval, stats)
        stats.webs_promoted += 1
        return

    plan = plan_web(web, profile, domtree)
    plan.remove_stores = bool(web.store_refs)
    if not plan.replaceable_loads and not web.store_refs:
        stats.webs_skipped += 1
        return
    promo = WebPromotion(function, plan, domtree, entry_name)
    promo.init_vr_map()
    promo.insert_loads_at_phi_leaves()
    promo.replace_loads_by_copies()
    if plan.remove_stores:
        promo.insert_stores_for_aliased_loads()
        promo.insert_stores_at_interval_tails()
        # Old set restricted to this web's names; see the corresponding
        # comment in repro.promotion.driver.
        promo.run_ssa_update(list(web.names))
    stats.webs_promoted += 1
    stats.absorb(promo.stats)


class BaselinePipeline:
    """Measurement skeleton shared by the baseline promoters: prepare,
    profile, promote via ``promote_fn``, clean up, re-measure."""

    def __init__(
        self,
        promote_fn: Callable[..., FunctionPromotionStats],
        entry: str = "main",
        args: Sequence[int] = (),
        verify: bool = True,
        max_steps: int = 50_000_000,
    ) -> None:
        self.promote_fn = promote_fn
        self.entry = entry
        self.args = list(args)
        self.verify = verify
        self.max_steps = max_steps

    def run(self, module: Module) -> PipelineResult:
        result = PipelineResult(module)
        trees: Dict[str, IntervalTree] = {}
        for function in module.functions.values():
            construct_ssa(function)
            trees[function.name] = normalize_for_promotion(function)
        result.static_before = StaticCounts.of_module(module)

        before_run = None
        if self.entry in module.functions:
            before_run = Interpreter(module, max_steps=self.max_steps).run(
                self.entry, self.args
            )
            result.profile = ProfileData.from_execution(before_run)
            result.dynamic_before = DynamicCounts.of_execution(before_run)
        else:
            from repro.profile.estimator import estimate_profile

            result.profile = estimate_profile(module)

        model = AliasModel.conservative(module)
        for function in module.functions.values():
            mssa = build_memory_ssa(function, model)
            result.stats[function.name] = self.promote_fn(
                function, mssa, result.profile, trees[function.name]
            )

        for function in module.functions.values():
            remove_dummy_loads(function)
            propagate_copies(function)
            dead_code_elimination(function)
            dead_memory_elimination(function)
        if self.verify:
            verify_module(module, check_ssa=True, check_memssa=True)
        result.static_after = StaticCounts.of_module(module)

        if before_run is not None:
            after_run = Interpreter(module, max_steps=self.max_steps).run(
                self.entry, self.args
            )
            result.dynamic_after = DynamicCounts.of_execution(after_run)
            result.output_matches = (
                after_run.output == before_run.output
                and after_run.return_value == before_run.return_value
                and after_run.globals_snapshot() == before_run.globals_snapshot()
            )
        return result


def webs_by_variable(webs: List[Web]) -> Dict[str, List[Web]]:
    grouped: Dict[str, List[Web]] = {}
    for web in webs:
        grouped.setdefault(web.var.name, []).append(web)
    return grouped
