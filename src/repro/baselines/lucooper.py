"""Lu & Cooper's loop-based register promotion (PLDI 1997).

"For each loop nest, the algorithm computes the set of variables that can
be promoted in the loop.  Any variable that has an ambiguous use in the
loop is not considered for promotion.  For variables that are promotable
in [the] current loop but not in the enclosing outer loop, loads and
stores are inserted at the loop preheader and tails."  (Paper §6.)

Policy differences from the paper's algorithm, all reproduced here:

* **loop scopes only** — no root region, so straight-line code keeps its
  memory traffic;
* **all-or-nothing per loop** — one aliased reference (call, pointer
  load/store) to a variable anywhere in the loop disqualifies it there,
  "even if these calls are executed very infrequently";
* **profile-blind** — promotion happens wherever legal, never weighed
  against compensation cost (there is none: no compensation code exists
  in this scheme);
* **outermost-first** — a variable is promoted in the largest enclosing
  loop where it is unambiguous; inner loops only get the leftovers.
"""

from __future__ import annotations

from typing import Set

from repro.analysis.dominance import DominatorTree
from repro.analysis.intervals import Interval, IntervalTree
from repro.ir.function import Function
from repro.memory.memssa import MemorySSA
from repro.parallel import cache as analysis_cache
from repro.profile.profiles import ProfileData
from repro.promotion.driver import FunctionPromotionStats
from repro.promotion.webs import construct_ssa_webs
from repro.baselines.common import (
    BaselinePipeline,
    promote_web_unconditionally,
    webs_by_variable,
)


def lu_cooper_promote(
    function: Function,
    mssa: MemorySSA,
    profile: ProfileData,
    interval_tree: IntervalTree,
) -> FunctionPromotionStats:
    """Promote per Lu & Cooper: outermost unambiguous loop per variable."""
    stats = FunctionPromotionStats()
    domtree = analysis_cache.dominator_tree(function)
    for outer in interval_tree.root.children:
        _visit(function, mssa, outer, profile, domtree, stats)
    return stats


def _visit(
    function: Function,
    mssa: MemorySSA,
    interval: Interval,
    profile: ProfileData,
    domtree: DominatorTree,
    stats: FunctionPromotionStats,
) -> None:
    webs = construct_ssa_webs(function, interval)
    grouped = webs_by_variable(webs)
    promoted_vars: Set[str] = set()
    for var_name, var_webs in sorted(grouped.items()):
        if any(w.aliased_load_refs or w.aliased_store_refs for w in var_webs):
            continue  # ambiguous use somewhere in the loop: reject here
        for web in var_webs:
            promote_web_unconditionally(
                function, mssa, web, interval, profile, domtree, stats
            )
        promoted_vars.add(var_name)
    # Recurse for the variables this loop could not handle; promoted
    # variables have no remaining references inside.
    for child in interval.children:
        _visit(function, mssa, child, profile, domtree, stats)


class LuCooperPipeline(BaselinePipeline):
    def __init__(self, **kwargs) -> None:
        super().__init__(lu_cooper_promote, **kwargs)
