"""Mahlke's superblock global variable migration (IMPACT, 1992).

"The global variable migration optimization of the IMPACT compiler
promotes global scalar variables, array elements, or local variables in
super blocks.  This algorithm is also loop based and uses profiling
information.  Typically, function calls or unknown pointer references
that are less frequently executed will not be included in a superblock.
If there are function calls in the super block that are not side-effect
free, promotion is not attempted in that superblock."  (Paper §6.)

Model: superblocks are hot traces through innermost loops.  We
approximate trace membership by execution frequency — a block belongs to
the superblock when it runs at least ``hot_fraction`` of the loop
header's frequency.  A variable is migrated in a loop when every aliased
reference to it sits *off* the trace (cold); compensation at the cold
blocks then corresponds to the bookkeeping code superblock formation
would have placed at side exits.  Variables with an aliased reference on
the trace are rejected, which is the policy gap the paper's algorithm
closes (it weighs such references by profile instead).

Scope differences from the paper's algorithm: innermost loops only, and
whole-variable granularity (no webs).
"""

from __future__ import annotations

from typing import Set

from repro.analysis.dominance import DominatorTree
from repro.analysis.intervals import Interval, IntervalTree
from repro.ir.function import Function
from repro.memory.memssa import MemorySSA
from repro.parallel import cache as analysis_cache
from repro.profile.profiles import ProfileData
from repro.promotion.driver import FunctionPromotionStats
from repro.promotion.webs import construct_ssa_webs
from repro.baselines.common import (
    BaselinePipeline,
    promote_web_unconditionally,
    webs_by_variable,
)

#: A block is on the superblock (hot trace) when its frequency is at
#: least this fraction of the loop header's.
HOT_FRACTION = 0.5


def mahlke_promote(
    function: Function,
    mssa: MemorySSA,
    profile: ProfileData,
    interval_tree: IntervalTree,
    hot_fraction: float = HOT_FRACTION,
) -> FunctionPromotionStats:
    stats = FunctionPromotionStats()
    domtree = analysis_cache.dominator_tree(function)
    for interval in interval_tree.bottom_up():
        if interval.is_root or interval.children:
            continue  # innermost loops only
        _migrate_in_loop(
            function, mssa, interval, profile, domtree, stats, hot_fraction
        )
    return stats


def _migrate_in_loop(
    function: Function,
    mssa: MemorySSA,
    interval: Interval,
    profile: ProfileData,
    domtree: DominatorTree,
    stats: FunctionPromotionStats,
    hot_fraction: float,
) -> None:
    header_freq = max(1, profile.freq(interval.header))
    hot_blocks: Set[int] = {
        id(b) for b in interval.blocks if profile.freq(b) >= hot_fraction * header_freq
    }
    webs = construct_ssa_webs(function, interval)
    for var_name, var_webs in sorted(webs_by_variable(webs).items()):
        aliased = [
            (inst, name)
            for w in var_webs
            for inst, name in w.aliased_load_refs + w.aliased_store_refs
        ]
        if any(id(inst.block) in hot_blocks for inst, _ in aliased):
            stats.webs_seen += len(var_webs)
            stats.webs_skipped += len(var_webs)
            continue  # a side-effecting reference on the trace: give up
        for web in var_webs:
            promote_web_unconditionally(
                function, mssa, web, interval, profile, domtree, stats
            )


class MahlkePipeline(BaselinePipeline):
    def __init__(self, hot_fraction: float = HOT_FRACTION, **kwargs) -> None:
        def promote(function, mssa, profile, tree):
            return mahlke_promote(function, mssa, profile, tree, hot_fraction)

        super().__init__(promote, **kwargs)
