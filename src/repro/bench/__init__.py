"""The evaluation harness: SPECInt95-proxy workloads, metric collection,
and the paper's tables.

No SPEC sources or inputs exist offline, so each benchmark is a mini-C
program written to exhibit the memory-access character the paper reports
for its SPEC namesake (see each workload module's docstring and
DESIGN.md's substitution table).  The harness reproduces:

* **Table 1** — static load/store counts before/after promotion;
* **Table 2** — dynamic load/store counts before/after promotion;
* **Table 3** — register pressure (colors needed) before/after.
"""

from repro.bench.metrics import BenchmarkRow, measure_workload, pressure_rows
from repro.bench.tables import format_table1, format_table2, format_table3
from repro.bench.workloads import WORKLOADS, Workload

__all__ = [
    "BenchmarkRow",
    "WORKLOADS",
    "Workload",
    "format_table1",
    "format_table2",
    "format_table3",
    "measure_workload",
    "pressure_rows",
]
