"""Metric collection for the evaluation tables."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.analysis.intervals import normalize_for_promotion
from repro.baselines.lucooper import LuCooperPipeline
from repro.baselines.mahlke import MahlkePipeline
from repro.bench.workloads import Workload
from repro.frontend.lower import compile_source
from repro.promotion.driver import PromotionOptions
from repro.promotion.pipeline import PipelineResult, PromotionPipeline, improvement
from repro.regalloc.coloring import colors_needed
from repro.regalloc.interference import build_interference_graph
from repro.ssa.construct import construct_ssa

#: name -> pipeline factory; "sastry-ju" is the paper's algorithm.
PROMOTERS: Dict[str, Callable[..., object]] = {
    "sastry-ju": PromotionPipeline,
    "lucooper": LuCooperPipeline,
    "mahlke": MahlkePipeline,
}


@dataclass
class BenchmarkRow:
    """One workload's before/after counts (one row of Tables 1 and 2)."""

    name: str
    promoter: str
    static_loads_before: int
    static_loads_after: int
    static_stores_before: int
    static_stores_after: int
    dynamic_loads_before: int
    dynamic_loads_after: int
    dynamic_stores_before: int
    dynamic_stores_after: int
    output_matches: bool
    #: Resilient-executor outcome (all defaults when it did not run).
    quarantined: List[str] = field(default_factory=list)
    retries: int = 0
    degraded: bool = False
    #: The run's full ``PipelineDiagnostics.as_dict()``, for
    #: ``--diagnostics-dir``; excluded from repr — it is large.
    diagnostics: Optional[Dict[str, object]] = field(default=None, repr=False)

    @property
    def static_total_before(self) -> int:
        return self.static_loads_before + self.static_stores_before

    @property
    def static_total_after(self) -> int:
        return self.static_loads_after + self.static_stores_after

    @property
    def dynamic_total_before(self) -> int:
        return self.dynamic_loads_before + self.dynamic_stores_before

    @property
    def dynamic_total_after(self) -> int:
        return self.dynamic_loads_after + self.dynamic_stores_after

    def pct(self, metric: str) -> float:
        """Percentage improvement for e.g. ``"dynamic_loads"`` (negative
        when the count increased — the paper's sign convention)."""
        before = getattr(self, f"{metric}_before")
        after = getattr(self, f"{metric}_after")
        return improvement(before, after)


@dataclass
class PressureRow:
    """One routine's register pressure (one row of Table 3)."""

    name: str
    routine: str
    colors_before: int
    colors_after: int


def measure_workload(
    workload: Workload,
    promoter: str = "sastry-ju",
    options: Optional[PromotionOptions] = None,
    jobs: int = 1,
    use_cache: bool = True,
    resilience=None,
    observability=None,
    batch_size="auto",
    keep_pool: bool = True,
) -> BenchmarkRow:
    """Compile a workload, run a promoter, return the counts row.

    ``jobs``/``use_cache``/``batch_size``/``keep_pool``/``resilience``/
    ``observability`` configure the paper pipeline's execution layer
    only; the baselines have no parallel path (and their counts would be
    identical anyway).  Passing one ``observability`` bundle across
    several workloads accumulates their traces (one ``pipeline`` root
    span per workload) and counters.
    """
    module = compile_source(workload.source)
    factory = PROMOTERS[promoter]
    if promoter == "sastry-ju":
        pipeline = factory(
            options=options,
            entry=workload.entry,
            args=list(workload.args),
            jobs=jobs,
            use_cache=use_cache,
            resilience=resilience,
            observability=observability,
            batch_size=batch_size,
            keep_pool=keep_pool,
        )
    else:
        pipeline = factory(entry=workload.entry, args=list(workload.args))
    result: PipelineResult = pipeline.run(module)
    diags = result.diagnostics
    counters = diags.resilience or {}
    return BenchmarkRow(
        name=workload.name,
        promoter=promoter,
        static_loads_before=result.static_before.loads,
        static_loads_after=result.static_after.loads,
        static_stores_before=result.static_before.stores,
        static_stores_after=result.static_after.stores,
        dynamic_loads_before=result.dynamic_before.loads,
        dynamic_loads_after=result.dynamic_after.loads,
        dynamic_stores_before=result.dynamic_before.stores,
        dynamic_stores_after=result.dynamic_after.stores,
        output_matches=result.output_matches,
        quarantined=list(diags.quarantined_functions),
        retries=int(counters.get("retries", 0) or 0),
        degraded=diags.degraded,
        diagnostics=diags.as_dict(),
    )


def pressure_rows(workload: Workload) -> List[PressureRow]:
    """Colors needed to color each selected routine's interference graph
    before and after promotion (Table 3)."""
    # Before: same preparation the pipeline applies, minus promotion.
    before_module = compile_source(workload.source)
    for function in before_module.functions.values():
        construct_ssa(function)
        normalize_for_promotion(function)
    before: Dict[str, int] = {
        name: colors_needed(build_interference_graph(before_module.functions[name]))
        for name in workload.pressure_routines
    }

    after_module = compile_source(workload.source)
    PromotionPipeline(entry=workload.entry, args=list(workload.args)).run(after_module)
    rows = []
    for routine in workload.pressure_routines:
        after = colors_needed(build_interference_graph(after_module.functions[routine]))
        rows.append(PressureRow(workload.name, routine, before[routine], after))
    return rows
