"""The instrumentation overhead gate.

The observability layer promises that a run with tracing *disabled* pays
nothing measurable: every instrumentation point hits a null object (see
:mod:`repro.observability.tracer`), so the only residual cost is the
no-op calls themselves.  Once the layer is merged there is no
un-instrumented build left to diff against, so the gate bounds the
disabled-path cost from first principles:

1. microbenchmark one disabled instrumentation event — a
   ``NULL_TRACER.span(...)`` enter/exit plus a ``NULL_METRICS.inc(...)``
   (:func:`measure_null_op_cost`);
2. count how many instrumentation events a real pipeline run performs —
   recorded spans plus metric-recording ops from an *enabled* run
   (:func:`measure_workload_overhead`);
3. estimate the disabled-path overhead as ``events x cost_per_event``
   against the disabled run's wall time and gate it at
   :data:`OVERHEAD_GATE_PCT` percent.

The same probe also reports the enabled-vs-disabled wall-time ratio —
informational only, since recording is opt-in and buys its cost back in
debuggability.
"""

from __future__ import annotations

import time
from typing import Dict, List

from repro.frontend.lower import compile_source
from repro.observability import NULL_METRICS, NULL_TRACER, Observability
from repro.promotion.pipeline import PromotionPipeline

#: Estimated disabled-path instrumentation overhead must stay under this
#: percentage of the disabled run's wall time (the PR's acceptance bound).
OVERHEAD_GATE_PCT = 3.0


def measure_null_op_cost(iterations: int = 200_000) -> float:
    """Seconds per disabled instrumentation event.

    One "event" is the worst-case disabled call pair: opening and
    closing a null span plus one null metric increment.
    """
    span = NULL_TRACER.span
    inc = NULL_METRICS.inc
    started = time.perf_counter()
    for _ in range(iterations):
        with span("probe", category="probe"):
            inc("probe")
    elapsed = time.perf_counter() - started
    return elapsed / iterations


def measure_workload_overhead(workload, null_op_cost_s: float) -> Dict[str, float]:
    """Probe one workload: disabled wall time, enabled wall time, event
    count, and the estimated disabled-path overhead percentage."""

    def build_pipeline(observability):
        return PromotionPipeline(
            entry=workload.entry,
            args=list(workload.args),
            observability=observability,
        )

    module = compile_source(workload.source)
    started = time.perf_counter()
    build_pipeline(None).run(module)
    disabled_s = time.perf_counter() - started

    obs = Observability.recording()
    module = compile_source(workload.source)
    started = time.perf_counter()
    build_pipeline(obs).run(module)
    enabled_s = time.perf_counter() - started

    # Every recorded span cost one disabled span() pair in the disabled
    # run; every metric-recording op cost one disabled inc()/set().
    events = len(obs.tracer.records) + obs.metrics.ops
    estimated_pct = (
        100.0 * events * null_op_cost_s / disabled_s if disabled_s else 0.0
    )
    return {
        "workload": workload.name,
        "disabled_seconds": round(disabled_s, 4),
        "enabled_seconds": round(enabled_s, 4),
        "enabled_vs_disabled_ratio": round(enabled_s / disabled_s, 3)
        if disabled_s
        else 0.0,
        "instrumentation_events": events,
        "estimated_overhead_pct": round(estimated_pct, 4),
    }


def measure_overhead(workload_names: List[str]) -> Dict[str, object]:
    """The bench document's ``overhead`` section."""
    from repro.bench.workloads import WORKLOADS

    null_op_cost_s = measure_null_op_cost()
    rows = [
        measure_workload_overhead(WORKLOADS[name], null_op_cost_s)
        for name in workload_names
    ]
    worst = max((row["estimated_overhead_pct"] for row in rows), default=0.0)
    return {
        "null_op_cost_ns": round(null_op_cost_s * 1e9, 2),
        "gate_pct": OVERHEAD_GATE_PCT,
        "workloads": rows,
        "worst_estimated_overhead_pct": worst,
    }


def check_overhead(overhead: Dict[str, object]) -> List[str]:
    """Gate verdict: failure messages (empty == pass)."""
    failures: List[str] = []
    worst = overhead.get("worst_estimated_overhead_pct")
    if isinstance(worst, (int, float)) and worst > OVERHEAD_GATE_PCT:
        failures.append(
            f"disabled-tracer instrumentation overhead estimated at "
            f"{worst:.2f}% of wall time (gate: <= {OVERHEAD_GATE_PCT}%)"
        )
    return failures
