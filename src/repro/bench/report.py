"""``repro-report`` — regenerate the paper's tables from the proxies.

Usage::

    repro-report                 # all tables
    repro-report --table 2      # dynamic counts only
    repro-report --table 3      # register pressure
    repro-report --compare      # ours vs Lu-Cooper vs Mahlke
    repro-report --jobs 4       # parallel promotion (identical tables)
    repro-report --jobs 4 --batch-size 1 --no-keep-pool  # legacy dispatch
    repro-report --timing BENCH_pipeline.json   # time the exec layers
    repro-report --timing out.json --perf-baseline benchmarks/BENCH_baseline.json
    repro-report --jobs 2 --chaos "crash=0.15,seed=1234" --timeout 10

Exit codes: 0 on success, 1 when a table-affecting failure occurred
(behaviour diverged, perf gate failed), 2 on driver errors (bad flags,
unreadable/malformed baseline), and 3 when every workload completed but
only in degraded mode (quarantines, retries, or a serial fallback).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.bench.metrics import measure_workload, pressure_rows
from repro.bench.tables import (
    format_comparison,
    format_table1,
    format_table2,
    format_table3,
)
from repro.bench.workloads import ORDER, WORKLOADS

#: File name ``--diagnostics-dir`` checks for a router metrics document
#: (the JSON shape ``GET /metrics`` on ``repro-route`` serves; drop a
#: ``curl`` of it here and the report summarizes the cluster's routing).
ROUTER_METRICS_FILENAME = "router-metrics.json"


def summarize_router_metrics(doc) -> Optional[str]:
    """One-line cluster summary from a router ``/metrics`` JSON document
    (:meth:`repro.service.router.PromotionRouter.metrics_doc`), or
    ``None`` when ``doc`` does not look like one."""
    if not isinstance(doc, dict) or not isinstance(doc.get("router"), dict):
        return None
    registry = doc["router"]

    def counter(name: str) -> int:
        entry = registry.get(name)
        if isinstance(entry, dict) and isinstance(entry.get("value"), (int, float)):
            return int(entry["value"])
        return 0

    rate = doc.get("stickiness_hit_rate")
    rate_text = (
        f"{float(rate) * 100:.1f}%" if isinstance(rate, (int, float)) else "n/a"
    )
    per_backend = []
    backends = doc.get("backends")
    if isinstance(backends, dict):
        for backend_id in sorted(backends):
            state = backends[backend_id]
            if isinstance(state, dict):
                per_backend.append(
                    f"{backend_id}={state.get('jobs_total', 0)}"
                    f" ({state.get('status', '?')})"
                )
    parts = [
        f"stickiness hit rate {rate_text}",
        f"{counter('router.failovers')} failover(s)",
        f"{counter('router.jobs_total')} job(s) routed",
    ]
    if per_backend:
        parts.append("per-backend jobs: " + ", ".join(per_backend))
    return "repro-report: router: " + "; ".join(parts)


def _surface_router_metrics(diagnostics_dir: str) -> None:
    """Best-effort: if the diagnostics dir holds a router metrics file,
    print its cluster summary.  Never changes the exit code."""
    path = os.path.join(diagnostics_dir, ROUTER_METRICS_FILENAME)
    if not os.path.exists(path):
        return
    try:
        with open(path) as handle:
            doc = json.load(handle)
    except (OSError, ValueError) as exc:
        print(
            f"repro-report: warning: cannot read router metrics {path}: {exc}",
            file=sys.stderr,
        )
        return
    line = summarize_router_metrics(doc)
    if line is None:
        print(
            f"repro-report: warning: {path} is not a router metrics document",
            file=sys.stderr,
        )
        return
    print(line, file=sys.stderr)


def _batch_size(value: str):
    """``--batch-size`` values: ``auto`` or a positive integer."""
    if value == "auto":
        return "auto"
    try:
        count = int(value)
    except ValueError:
        count = 0
    if count < 1:
        raise argparse.ArgumentTypeError(
            f"expected 'auto' or a positive integer, got {value!r}"
        )
    return count


def collect_rows(
    promoter: str = "sastry-ju",
    jobs: int = 1,
    use_cache: bool = True,
    resilience=None,
    observability=None,
    batch_size="auto",
    keep_pool: bool = True,
):
    return [
        measure_workload(
            WORKLOADS[name],
            promoter,
            jobs=jobs,
            use_cache=use_cache,
            resilience=resilience,
            observability=observability,
            batch_size=batch_size,
            keep_pool=keep_pool,
        )
        for name in ORDER
    ]


def collect_json(
    jobs: int = 1,
    use_cache: bool = True,
    resilience=None,
    observability=None,
    batch_size="auto",
    keep_pool: bool = True,
) -> dict:
    """All evaluation data as one JSON-serializable document."""
    rows = collect_rows(
        jobs=jobs,
        use_cache=use_cache,
        resilience=resilience,
        observability=observability,
        batch_size=batch_size,
        keep_pool=keep_pool,
    )
    doc: dict = {"workloads": {}, "pressure": []}
    for row in rows:
        entry = {
            "static": {
                "loads_before": row.static_loads_before,
                "loads_after": row.static_loads_after,
                "stores_before": row.static_stores_before,
                "stores_after": row.static_stores_after,
            },
            "dynamic": {
                "loads_before": row.dynamic_loads_before,
                "loads_after": row.dynamic_loads_after,
                "stores_before": row.dynamic_stores_before,
                "stores_after": row.dynamic_stores_after,
            },
            "improvement_pct": {
                "static_loads": row.pct("static_loads"),
                "static_stores": row.pct("static_stores"),
                "dynamic_loads": row.pct("dynamic_loads"),
                "dynamic_stores": row.pct("dynamic_stores"),
                "dynamic_total": row.pct("dynamic_total"),
            },
            "behaviour_preserved": row.output_matches,
        }
        if resilience is not None:
            entry["resilience"] = {
                "quarantined": list(row.quarantined),
                "retries": row.retries,
                "degraded": row.degraded,
            }
        doc["workloads"][row.name] = entry
    for name in ORDER:
        for row in pressure_rows(WORKLOADS[name]):
            doc["pressure"].append(
                {
                    "workload": row.name,
                    "routine": row.routine,
                    "colors_before": row.colors_before,
                    "colors_after": row.colors_after,
                }
            )
    return doc


def run_timing(
    out_path: str,
    jobs: int,
    perf_baseline: Optional[str] = None,
    batch_size="auto",
    keep_pool: bool = True,
) -> int:
    """``--timing``: benchmark the execution layers, optionally gate."""
    from repro.bench.overhead import check_overhead, measure_overhead
    from repro.bench.timing import (
        check_against_baseline,
        parallel_gate_skip_reason,
        time_suite,
        write_bench,
    )

    try:
        bench = time_suite(jobs=jobs, batch_size=batch_size)
    finally:
        if not keep_pool:
            from repro.parallel.pool import shutdown_pools

            shutdown_pools()
    bench["overhead"] = measure_overhead(list(bench["suite"]))
    write_bench(out_path, bench)
    speedup = bench["speedup"]
    print(
        f"wrote {out_path}: "
        f"serial {speedup['serial_vs_baseline']}x, "
        f"parallel {speedup['parallel_vs_baseline']}x vs baseline "
        f"(jobs={bench['jobs']}, cpus={bench['cpu_count']}); "
        f"outputs identical: {bench['outputs_identical']}; "
        f"instrumentation overhead (disabled, estimated): "
        f"{bench['overhead']['worst_estimated_overhead_pct']}% worst-case",
        file=sys.stderr,
    )
    if not bench["outputs_identical"]:
        print("repro-report: timing: arm outputs diverged", file=sys.stderr)
        return 1
    overhead_failures = check_overhead(bench["overhead"])
    for failure in overhead_failures:
        print(f"repro-report: overhead gate: {failure}", file=sys.stderr)
    if overhead_failures:
        return 1
    if perf_baseline is not None:
        try:
            with open(perf_baseline) as handle:
                baseline = json.load(handle)
        except (OSError, ValueError) as exc:
            print(
                f"repro-report: cannot read perf baseline {perf_baseline}: {exc}",
                file=sys.stderr,
            )
            return 2
        if not isinstance(baseline, dict):
            print(
                f"repro-report: malformed perf baseline {perf_baseline}: "
                f"expected a JSON object, got {type(baseline).__name__}",
                file=sys.stderr,
            )
            return 2
        baseline_cpus = baseline.get("cpu_count")
        if baseline_cpus is not None and not isinstance(baseline_cpus, int):
            print(
                f"repro-report: malformed perf baseline {perf_baseline}: "
                f"cpu_count must be an integer, got "
                f"{type(baseline_cpus).__name__}",
                file=sys.stderr,
            )
            return 2
        skip_reason = parallel_gate_skip_reason(bench, baseline)
        if skip_reason:
            print(
                f"repro-report: perf gate: skipping parallel speedup checks: "
                f"{skip_reason}",
                file=sys.stderr,
            )
        failures = check_against_baseline(bench, baseline)
        for failure in failures:
            print(f"repro-report: perf gate: {failure}", file=sys.stderr)
        if failures:
            return 1
        print("repro-report: perf gate passed", file=sys.stderr)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro-report")
    parser.add_argument("--table", choices=["1", "2", "3", "all"], default="all")
    parser.add_argument(
        "--compare", action="store_true", help="also print the promoter comparison"
    )
    parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON instead"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for promotion (0 = one per CPU; "
        "default 1, or 4 with --timing)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the per-function analysis cache",
    )
    parser.add_argument(
        "--batch-size",
        type=_batch_size,
        default="auto",
        metavar="auto|N",
        help="work units per worker task: 'auto' sizes batches from the "
        "warm pool's cost model, an integer forces fixed-count batches "
        "(default auto)",
    )
    parser.add_argument(
        "--keep-pool",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="keep the warm worker pool alive after the run "
        "(--no-keep-pool restores per-run teardown)",
    )
    parser.add_argument(
        "--timing",
        metavar="FILE",
        help="time the execution layers over the suite and write FILE",
    )
    parser.add_argument(
        "--perf-baseline",
        metavar="FILE",
        help="with --timing: fail if speedup regressed >25%% vs FILE",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-function deadline for the resilient executor "
        "(requires --jobs != 1)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="extra attempts before quarantine (default 2; requires "
        "--jobs != 1)",
    )
    parser.add_argument(
        "--chaos",
        metavar="SPEC",
        help="inject seeded worker faults during promotion, e.g. "
        "'crash=0.1,hang=0.1,transient=0.2,seed=42' (requires --jobs != 1)",
    )
    parser.add_argument(
        "--trace-out",
        metavar="FILE",
        help="write the suite's span trace (Chrome trace-event JSON; a "
        ".jsonl suffix writes the event log; one pipeline root per workload)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="FILE",
        help="write the suite's aggregated metrics registry as JSON",
    )
    parser.add_argument(
        "--diagnostics-dir",
        metavar="DIR",
        help="write each workload's pipeline diagnostics as DIR/<name>.json; "
        f"if DIR/{ROUTER_METRICS_FILENAME} is present (a saved router "
        "/metrics document) its cluster summary is surfaced too",
    )
    options = parser.parse_args(argv)
    use_cache = not options.no_cache

    observability = None
    if options.trace_out or options.metrics_out:
        if options.timing:
            print(
                "repro-report: --trace-out/--metrics-out are incompatible "
                "with --timing (instrumented arms would skew the measurement)",
                file=sys.stderr,
            )
            return 2
        from repro.observability import Observability

        observability = Observability.recording()

    def export_observability(jobs: int) -> None:
        # Best-effort by design: a failed artifact write reports on
        # stderr but never changes the exit code (it must not mask a
        # degraded exit 3 or manufacture a failure).
        if observability is None:
            return
        from repro.observability import build_metadata, write_metrics, write_trace

        metadata = build_metadata(
            profile_source=None,
            config={
                "jobs": jobs,
                "use_cache": use_cache,
                "resilience": None if resilience is None else resilience.as_dict(),
            },
            tool="repro-report",
        )
        if options.trace_out:
            try:
                write_trace(
                    options.trace_out,
                    observability.tracer,
                    observability.metrics,
                    metadata,
                )
            except OSError as exc:
                print(
                    f"repro-report: warning: cannot write trace to "
                    f"{options.trace_out}: {exc.strerror or exc}",
                    file=sys.stderr,
                )
        if options.metrics_out:
            try:
                write_metrics(options.metrics_out, observability.metrics, metadata)
            except OSError as exc:
                print(
                    f"repro-report: warning: cannot write metrics to "
                    f"{options.metrics_out}: {exc.strerror or exc}",
                    file=sys.stderr,
                )

    resilience = None
    wants_resilience = (
        options.timeout is not None
        or options.retries is not None
        or options.chaos is not None
    )
    if wants_resilience:
        if options.timing:
            print(
                "repro-report: --timeout/--retries/--chaos are incompatible "
                "with --timing (the timing arms must stay deterministic)",
                file=sys.stderr,
            )
            return 2
        if options.jobs is None or options.jobs == 1:
            print(
                "repro-report: --timeout/--retries/--chaos require "
                "--jobs != 1 (the resilient executor acts on worker "
                "processes)",
                file=sys.stderr,
            )
            return 2
        from repro.robustness import ChaosConfig, ResilienceOptions

        chaos = None
        if options.chaos is not None:
            try:
                chaos = ChaosConfig.parse(options.chaos)
            except ValueError as exc:
                print(f"repro-report: --chaos: {exc}", file=sys.stderr)
                return 2
        try:
            resilience = ResilienceOptions(
                timeout_s=options.timeout,
                retries=options.retries if options.retries is not None else 2,
                seed=chaos.seed if chaos is not None else 0,
                chaos=chaos,
            )
        except ValueError as exc:
            print(f"repro-report: {exc}", file=sys.stderr)
            return 2
        if options.diagnostics_dir:
            # Give the resilient executor's quarantine/attempt events a
            # black box: dumps land beside the diagnostics CI uploads.
            from repro.observability import FlightRecorder, flightrecorder

            flightrecorder.install(
                FlightRecorder("report", artifacts_dir=options.diagnostics_dir)
            )

    if options.timing:
        jobs = 4 if options.jobs is None else options.jobs
        return run_timing(
            options.timing,
            jobs=jobs,
            perf_baseline=options.perf_baseline,
            batch_size=options.batch_size,
            keep_pool=options.keep_pool,
        )
    if options.perf_baseline:
        print("repro-report: --perf-baseline requires --timing", file=sys.stderr)
        return 2
    jobs = 1 if options.jobs is None else options.jobs

    if options.json:
        print(
            json.dumps(
                collect_json(
                    jobs=jobs,
                    use_cache=use_cache,
                    resilience=resilience,
                    observability=observability,
                    batch_size=options.batch_size,
                    keep_pool=options.keep_pool,
                ),
                indent=2,
                sort_keys=True,
            )
        )
        export_observability(jobs)
        return 0

    sections: List[str] = []
    rows = None
    if options.table in ("1", "2", "all"):
        rows = collect_rows(
            jobs=jobs,
            use_cache=use_cache,
            resilience=resilience,
            observability=observability,
            batch_size=options.batch_size,
            keep_pool=options.keep_pool,
        )
        bad = [r.name for r in rows if not r.output_matches]
        if bad:
            print(f"WARNING: behaviour changed for {bad}", file=sys.stderr)
    if options.table in ("1", "all"):
        sections.append(format_table1(rows))
    if options.table in ("2", "all"):
        sections.append(format_table2(rows))
    if options.table in ("3", "all"):
        pressure = [row for name in ORDER for row in pressure_rows(WORKLOADS[name])]
        sections.append(format_table3(pressure))
    if options.compare:
        sections.append(
            format_comparison(
                rows or collect_rows(),
                collect_rows("lucooper"),
                collect_rows("mahlke"),
            )
        )
    print("\n\n".join(sections))

    if options.diagnostics_dir and rows is not None:
        try:
            os.makedirs(options.diagnostics_dir, exist_ok=True)
            for row in rows:
                if row.diagnostics is None:
                    continue
                path = os.path.join(options.diagnostics_dir, f"{row.name}.json")
                with open(path, "w") as handle:
                    json.dump(row.diagnostics, handle, indent=2, sort_keys=True)
                    handle.write("\n")
        except OSError as exc:
            print(
                f"repro-report: cannot write diagnostics to "
                f"{options.diagnostics_dir}: {exc}",
                file=sys.stderr,
            )
            return 2
    if options.diagnostics_dir:
        _surface_router_metrics(options.diagnostics_dir)

    export_observability(jobs)

    if rows is not None and resilience is not None:
        quarantined = sorted({name for row in rows for name in row.quarantined})
        retries = sum(row.retries for row in rows)
        degraded = [row.name for row in rows if row.degraded]
        print(
            f"repro-report: resilience: {len(quarantined)} function(s) "
            f"quarantined, {retries} retries across "
            f"{len(degraded)}/{len(rows)} degraded workload(s)"
            + (f"; quarantined: {', '.join(quarantined)}" if quarantined else ""),
            file=sys.stderr,
        )
        if degraded:
            return 3
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
