"""``repro-report`` — regenerate the paper's tables from the proxies.

Usage::

    repro-report                 # all tables
    repro-report --table 2      # dynamic counts only
    repro-report --table 3      # register pressure
    repro-report --compare      # ours vs Lu-Cooper vs Mahlke
    repro-report --jobs 4       # parallel promotion (identical tables)
    repro-report --timing BENCH_pipeline.json   # time the exec layers
    repro-report --timing out.json --perf-baseline benchmarks/BENCH_baseline.json
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.bench.metrics import measure_workload, pressure_rows
from repro.bench.tables import (
    format_comparison,
    format_table1,
    format_table2,
    format_table3,
)
from repro.bench.workloads import ORDER, WORKLOADS


def collect_rows(promoter: str = "sastry-ju", jobs: int = 1, use_cache: bool = True):
    return [
        measure_workload(WORKLOADS[name], promoter, jobs=jobs, use_cache=use_cache)
        for name in ORDER
    ]


def collect_json(jobs: int = 1, use_cache: bool = True) -> dict:
    """All evaluation data as one JSON-serializable document."""
    rows = collect_rows(jobs=jobs, use_cache=use_cache)
    doc: dict = {"workloads": {}, "pressure": []}
    for row in rows:
        doc["workloads"][row.name] = {
            "static": {
                "loads_before": row.static_loads_before,
                "loads_after": row.static_loads_after,
                "stores_before": row.static_stores_before,
                "stores_after": row.static_stores_after,
            },
            "dynamic": {
                "loads_before": row.dynamic_loads_before,
                "loads_after": row.dynamic_loads_after,
                "stores_before": row.dynamic_stores_before,
                "stores_after": row.dynamic_stores_after,
            },
            "improvement_pct": {
                "static_loads": row.pct("static_loads"),
                "static_stores": row.pct("static_stores"),
                "dynamic_loads": row.pct("dynamic_loads"),
                "dynamic_stores": row.pct("dynamic_stores"),
                "dynamic_total": row.pct("dynamic_total"),
            },
            "behaviour_preserved": row.output_matches,
        }
    for name in ORDER:
        for row in pressure_rows(WORKLOADS[name]):
            doc["pressure"].append(
                {
                    "workload": row.name,
                    "routine": row.routine,
                    "colors_before": row.colors_before,
                    "colors_after": row.colors_after,
                }
            )
    return doc


def run_timing(out_path: str, jobs: int, perf_baseline: Optional[str] = None) -> int:
    """``--timing``: benchmark the execution layers, optionally gate."""
    from repro.bench.timing import check_against_baseline, time_suite, write_bench

    bench = time_suite(jobs=jobs)
    write_bench(out_path, bench)
    speedup = bench["speedup"]
    print(
        f"wrote {out_path}: "
        f"serial {speedup['serial_vs_baseline']}x, "
        f"parallel {speedup['parallel_vs_baseline']}x vs baseline "
        f"(jobs={bench['jobs']}, cpus={bench['cpu_count']}); "
        f"outputs identical: {bench['outputs_identical']}",
        file=sys.stderr,
    )
    if not bench["outputs_identical"]:
        print("repro-report: timing: arm outputs diverged", file=sys.stderr)
        return 1
    if perf_baseline is not None:
        try:
            with open(perf_baseline) as handle:
                baseline = json.load(handle)
        except (OSError, ValueError) as exc:
            print(
                f"repro-report: cannot read perf baseline {perf_baseline}: {exc}",
                file=sys.stderr,
            )
            return 2
        failures = check_against_baseline(bench, baseline)
        for failure in failures:
            print(f"repro-report: perf gate: {failure}", file=sys.stderr)
        if failures:
            return 1
        print("repro-report: perf gate passed", file=sys.stderr)
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro-report")
    parser.add_argument("--table", choices=["1", "2", "3", "all"], default="all")
    parser.add_argument(
        "--compare", action="store_true", help="also print the promoter comparison"
    )
    parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON instead"
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for promotion (0 = one per CPU; "
        "default 1, or 4 with --timing)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the per-function analysis cache",
    )
    parser.add_argument(
        "--timing",
        metavar="FILE",
        help="time the execution layers over the suite and write FILE",
    )
    parser.add_argument(
        "--perf-baseline",
        metavar="FILE",
        help="with --timing: fail if speedup regressed >25%% vs FILE",
    )
    options = parser.parse_args(argv)
    use_cache = not options.no_cache

    if options.timing:
        jobs = 4 if options.jobs is None else options.jobs
        return run_timing(
            options.timing, jobs=jobs, perf_baseline=options.perf_baseline
        )
    if options.perf_baseline:
        print("repro-report: --perf-baseline requires --timing", file=sys.stderr)
        return 2
    jobs = 1 if options.jobs is None else options.jobs

    if options.json:
        print(
            json.dumps(
                collect_json(jobs=jobs, use_cache=use_cache),
                indent=2,
                sort_keys=True,
            )
        )
        return 0

    sections: List[str] = []
    rows = None
    if options.table in ("1", "2", "all"):
        rows = collect_rows(jobs=jobs, use_cache=use_cache)
        bad = [r.name for r in rows if not r.output_matches]
        if bad:
            print(f"WARNING: behaviour changed for {bad}", file=sys.stderr)
    if options.table in ("1", "all"):
        sections.append(format_table1(rows))
    if options.table in ("2", "all"):
        sections.append(format_table2(rows))
    if options.table in ("3", "all"):
        pressure = [row for name in ORDER for row in pressure_rows(WORKLOADS[name])]
        sections.append(format_table3(pressure))
    if options.compare:
        sections.append(
            format_comparison(
                rows or collect_rows(),
                collect_rows("lucooper"),
                collect_rows("mahlke"),
            )
        )
    print("\n\n".join(sections))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
