"""``repro-report`` — regenerate the paper's tables from the proxies.

Usage::

    repro-report                 # all tables
    repro-report --table 2      # dynamic counts only
    repro-report --table 3      # register pressure
    repro-report --compare      # ours vs Lu-Cooper vs Mahlke
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.bench.metrics import measure_workload, pressure_rows
from repro.bench.tables import (
    format_comparison,
    format_table1,
    format_table2,
    format_table3,
)
from repro.bench.workloads import ORDER, WORKLOADS


def collect_rows(promoter: str = "sastry-ju"):
    return [measure_workload(WORKLOADS[name], promoter) for name in ORDER]


def collect_json() -> dict:
    """All evaluation data as one JSON-serializable document."""
    rows = collect_rows()
    doc: dict = {"workloads": {}, "pressure": []}
    for row in rows:
        doc["workloads"][row.name] = {
            "static": {
                "loads_before": row.static_loads_before,
                "loads_after": row.static_loads_after,
                "stores_before": row.static_stores_before,
                "stores_after": row.static_stores_after,
            },
            "dynamic": {
                "loads_before": row.dynamic_loads_before,
                "loads_after": row.dynamic_loads_after,
                "stores_before": row.dynamic_stores_before,
                "stores_after": row.dynamic_stores_after,
            },
            "improvement_pct": {
                "static_loads": row.pct("static_loads"),
                "static_stores": row.pct("static_stores"),
                "dynamic_loads": row.pct("dynamic_loads"),
                "dynamic_stores": row.pct("dynamic_stores"),
                "dynamic_total": row.pct("dynamic_total"),
            },
            "behaviour_preserved": row.output_matches,
        }
    for name in ORDER:
        for row in pressure_rows(WORKLOADS[name]):
            doc["pressure"].append(
                {
                    "workload": row.name,
                    "routine": row.routine,
                    "colors_before": row.colors_before,
                    "colors_after": row.colors_after,
                }
            )
    return doc


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="repro-report")
    parser.add_argument("--table", choices=["1", "2", "3", "all"], default="all")
    parser.add_argument(
        "--compare", action="store_true", help="also print the promoter comparison"
    )
    parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON instead"
    )
    options = parser.parse_args(argv)

    if options.json:
        print(json.dumps(collect_json(), indent=2, sort_keys=True))
        return 0

    sections: List[str] = []
    rows = None
    if options.table in ("1", "2", "all"):
        rows = collect_rows()
        bad = [r.name for r in rows if not r.output_matches]
        if bad:
            print(f"WARNING: behaviour changed for {bad}", file=sys.stderr)
    if options.table in ("1", "all"):
        sections.append(format_table1(rows))
    if options.table in ("2", "all"):
        sections.append(format_table2(rows))
    if options.table in ("3", "all"):
        pressure = [
            row for name in ORDER for row in pressure_rows(WORKLOADS[name])
        ]
        sections.append(format_table3(pressure))
    if options.compare:
        sections.append(
            format_comparison(
                rows or collect_rows(),
                collect_rows("lucooper"),
                collect_rows("mahlke"),
            )
        )
    print("\n\n".join(sections))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
