"""Table formatting in the paper's layout, with the paper's own numbers
alongside for shape comparison.

Absolute counts cannot match (proxy workloads on an interpreter, not
SPEC binaries on PA-RISC); the tables therefore print the paper's
percentage column next to ours so the *shape* — sign, ranking, rough
magnitude — is inspectable at a glance.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from repro.bench.metrics import BenchmarkRow, PressureRow

#: Paper Table 1: benchmark -> (loads %, stores %, total %) improvement.
#: (Negative = static counts increased, the common case.)
PAPER_TABLE1: Dict[str, tuple] = {
    "go": (-14.3, 2.5, -9.1),
    "li": (-3.6, -4.2, -3.9),
    "ijpeg": (-5.8, 2.9, -2.1),
    "perl": (-5.6, -0.3, -2.9),
    "m88ksim": (-0.8, 4.7, 1.3),
    "gcc": (-11.3, 7.3, -6.6),
    "compress": (1.0, 1.4, 1.2),
    "vortex": (-5.0, 0.9, -2.8),
}

#: Paper Table 2 (dynamic): the rows that are legible in the source text.
#: go and li are fully legible; ijpeg's load reduction is quoted in the
#: prose; vortex's near-zero change is quoted; the rest of the OCR is
#: ambiguous, so those cells are None (see EXPERIMENTS.md).
PAPER_TABLE2_LOADS: Dict[str, Optional[float]] = {
    "go": 25.5,
    "li": 16.5,
    "ijpeg": 25.7,
    "perl": None,
    "m88ksim": None,
    "gcc": None,
    "compress": None,
    "vortex": 0.2,
}


def _fmt_pct(value: Optional[float]) -> str:
    return f"{value:+7.1f}" if value is not None else "      ?"


def format_table1(rows: Sequence[BenchmarkRow]) -> str:
    """Static counts of memory operations (paper Table 1)."""
    lines = [
        "Table 1: Effect of register promotion on static counts of memory operations",
        f"{'bench':<10}{'ld before':>10}{'ld after':>10}{'% ours':>8}{'% paper':>8}"
        f"{'st before':>11}{'st after':>10}{'% ours':>8}{'% paper':>8}"
        f"{'total %':>9}{'paper %':>9}",
    ]
    for row in rows:
        paper = PAPER_TABLE1.get(row.name, (None, None, None))
        lines.append(
            f"{row.name:<10}"
            f"{row.static_loads_before:>10}{row.static_loads_after:>10}"
            f"{_fmt_pct(row.pct('static_loads')):>8}{_fmt_pct(paper[0]):>8}"
            f"{row.static_stores_before:>11}{row.static_stores_after:>10}"
            f"{_fmt_pct(row.pct('static_stores')):>8}{_fmt_pct(paper[1]):>8}"
            f"{_fmt_pct(row.pct('static_total')):>9}{_fmt_pct(paper[2]):>9}"
        )
    return "\n".join(lines)


def format_table2(rows: Sequence[BenchmarkRow]) -> str:
    """Dynamic counts of memory operations (paper Table 2)."""
    lines = [
        "Table 2: Effect of register promotion on dynamic counts of memory operations",
        f"{'bench':<10}{'ld before':>10}{'ld after':>10}{'% ours':>8}{'% paper':>8}"
        f"{'st before':>11}{'st after':>10}{'% ours':>8}"
        f"{'total %':>9}",
    ]
    total_before = total_after = 0
    for row in rows:
        paper_loads = PAPER_TABLE2_LOADS.get(row.name)
        total_before += row.dynamic_total_before
        total_after += row.dynamic_total_after
        lines.append(
            f"{row.name:<10}"
            f"{row.dynamic_loads_before:>10}{row.dynamic_loads_after:>10}"
            f"{_fmt_pct(row.pct('dynamic_loads')):>8}{_fmt_pct(paper_loads):>8}"
            f"{row.dynamic_stores_before:>11}{row.dynamic_stores_after:>10}"
            f"{_fmt_pct(row.pct('dynamic_stores')):>8}"
            f"{_fmt_pct(row.pct('dynamic_total')):>9}"
        )
    overall = (
        100.0 * (total_before - total_after) / total_before if total_before else 0.0
    )
    lines.append(
        f"{'overall':<10}{total_before:>10}{total_after:>10}"
        f"{_fmt_pct(overall):>8}   (paper: ~12% of scalar memory ops)"
    )
    return "\n".join(lines)


def format_table3(rows: Sequence[PressureRow]) -> str:
    """Register pressure: colors needed before/after (paper Table 3)."""
    lines = [
        "Table 3: Effect of register promotion on register pressure",
        f"{'bench':<10}{'routine':<16}{'colors before':>14}{'colors after':>14}{'delta':>7}",
    ]
    for row in rows:
        delta = row.colors_after - row.colors_before
        lines.append(
            f"{row.name:<10}{row.routine:<16}"
            f"{row.colors_before:>14}{row.colors_after:>14}{delta:>+7}"
        )
    lines.append(
        "(paper: promotion increases the number of colors needed, most "
        "visibly for routines that needed few colors)"
    )
    return "\n".join(lines)


def format_comparison(
    ours: Sequence[BenchmarkRow],
    lucooper: Sequence[BenchmarkRow],
    mahlke: Sequence[BenchmarkRow],
) -> str:
    """Ablation table: dynamic total improvement per promoter."""
    lines = [
        "Comparison: dynamic memory-op improvement by promoter (%)",
        f"{'bench':<10}{'sastry-ju':>11}{'lu-cooper':>11}{'mahlke':>9}",
    ]
    by_name = lambda rows: {r.name: r for r in rows}
    lc, mk = by_name(lucooper), by_name(mahlke)
    for row in ours:
        lines.append(
            f"{row.name:<10}"
            f"{row.pct('dynamic_total'):>+11.1f}"
            f"{lc[row.name].pct('dynamic_total'):>+11.1f}"
            f"{mk[row.name].pct('dynamic_total'):>+9.1f}"
        )
    return "\n".join(lines)
