"""Wall-clock timing of the promotion pipeline's execution layers.

Three arms over the 8-workload suite, compared on one machine in one
process tree:

``baseline``
    the classic execution layer — interpreter dispatch loop, no analysis
    cache, serial (``jobs=1``);
``serial``
    the optimized layer, still serial — compiled interpreter dispatch
    plus the per-function analysis cache;
``parallel``
    the optimized layer fanned out over ``jobs`` shared-nothing worker
    processes at workload granularity (each worker promotes a whole
    workload; :func:`repro.parallel.scheduler.map_tasks`).  The arm runs
    on the persistent warm pool: workers are spun up and their imports
    warmed *before* the clock starts (``pool_warmup_seconds`` reports
    that separately), and workloads are grouped into batches weighted by
    the serial arm's measured per-workload seconds, so the timed window
    contains promotion work rather than pool spin-up and per-task
    pickling.

Every arm records per-workload wall-clock seconds and a fingerprint of
everything observable — the transformed IR, the Table 1/2 counts, the
per-function stats, and the canonicalized diagnostics — so the harness
*proves* the arms computed identical results before comparing their
speed.  ``outputs_identical`` is false (and the CI perf gate fails) the
moment an optimization changes an output bit.

Durations are wall-clock and machine-dependent; the committed baseline
(``benchmarks/BENCH_baseline.json``) is compared by **speedup ratios**,
which transfer across machines, not by absolute seconds.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform
import time
from typing import Dict, List, Optional

from repro.bench.workloads import ORDER, WORKLOADS
from repro.frontend.lower import compile_source
from repro.ir.printer import print_module
from repro.parallel.scheduler import map_tasks, resolve_jobs
from repro.promotion.pipeline import PromotionPipeline

ARMS = ("baseline", "serial", "parallel")

#: Speedup may regress to this fraction of the committed baseline's
#: before the perf gate fails (0.75 == "no more than 25% slower").
GATE_RATIO = 0.75

#: Absolute floor for ``parallel_vs_serial`` on multi-core runners: the
#: parallel arm must at least match serial.  Checked independently of the
#: committed baseline, so a baseline recorded on a single-core machine
#: cannot excuse a multi-core regression.
PARALLEL_FLOOR = 1.0


def run_workload_arm(name: str, arm: str, jobs: int) -> Dict[str, object]:
    """Promote one workload under one arm; returns timing + fingerprint.

    Module-level (and with picklable inputs/outputs) so the parallel arm
    can run it in worker processes.
    """
    workload = WORKLOADS[name]
    module = compile_source(workload.source, name)
    optimized = arm != "baseline"
    pipeline = PromotionPipeline(
        entry=workload.entry,
        args=list(workload.args),
        use_cache=optimized,
        compiled_interpreter=optimized,
        # Workload granularity: each task owns a process, so the
        # pipeline itself stays serial even in the parallel arm.
        jobs=1,
    )
    started = time.perf_counter()
    result = pipeline.run(module)
    elapsed = time.perf_counter() - started
    return {
        "workload": name,
        "seconds": elapsed,
        "fingerprint": _fingerprint(module, result),
        "cache": result.cache_stats.as_dict() if result.cache_stats else None,
    }


def _fingerprint(module, result) -> str:
    """Hash of every observable output of one workload's promotion."""
    diagnostics = result.diagnostics.as_dict()
    for outcome in diagnostics["functions"]:
        outcome["duration_ms"] = 0.0  # timing is not an output
    doc = {
        "ir": print_module(module),
        "static": [
            result.static_before.loads,
            result.static_before.stores,
            result.static_after.loads,
            result.static_after.stores,
        ],
        "dynamic": [
            result.dynamic_before.loads,
            result.dynamic_before.stores,
            result.dynamic_after.loads,
            result.dynamic_after.stores,
        ],
        "stats": {name: s.as_dict() for name, s in sorted(result.stats.items())},
        "output_matches": result.output_matches,
        "diagnostics": diagnostics,
    }
    payload = json.dumps(doc, sort_keys=True).encode()
    return hashlib.sha256(payload).hexdigest()


def time_suite(
    jobs: int = 4,
    workloads: Optional[List[str]] = None,
    batch_size="auto",
) -> Dict[str, object]:
    """Run all three arms over the suite; returns the BENCH document."""
    names = list(workloads or ORDER)
    jobs = resolve_jobs(jobs)

    arms: Dict[str, dict] = {}
    fingerprints: Dict[str, Dict[str, str]] = {}
    serial_seconds: Dict[str, float] = {}
    for arm in ARMS:
        arm_jobs = jobs if arm == "parallel" else 1
        entry: Dict[str, object] = {}
        weights = None
        transport: Optional[dict] = None
        if arm == "parallel":
            # Spin the warm pool up (worker spawn + pipeline imports)
            # before the clock starts; steady-state runs reuse warm
            # workers, so cold-start belongs outside the timed window.
            transport = {}
            if arm_jobs > 1:
                from repro.parallel.pool import warm_pool

                entry["pool_warmup_seconds"] = round(
                    warm_pool(arm_jobs).prewarm(), 4
                )
            # Weight batches by the serial arm's measured seconds — the
            # best available prediction of each workload's cost here.
            weights = [serial_seconds.get(name, 1.0) for name in names]
        started = time.perf_counter()
        rows = map_tasks(
            run_workload_arm,
            [(name, arm, arm_jobs) for name in names],
            arm_jobs,
            weights=weights,
            batch_size=batch_size,
            stats=transport,
        )
        total = time.perf_counter() - started
        if arm == "serial":
            serial_seconds = {row["workload"]: row["seconds"] for row in rows}
        fingerprints[arm] = {row["workload"]: row["fingerprint"] for row in rows}
        entry.update(
            {
                "total_seconds": round(total, 4),
                "workloads": {
                    row["workload"]: round(row["seconds"], 4) for row in rows
                },
            }
        )
        if transport is not None:
            entry["batches"] = transport["batches"]
            entry["transport_bytes"] = transport["bytes_out"] + transport["bytes_in"]
        cache_rows = [row["cache"] for row in rows if row["cache"]]
        if cache_rows:
            hits = sum(c["total_hits"] for c in cache_rows)
            misses = sum(c["total_misses"] for c in cache_rows)
            entry["cache_hits"] = hits
            entry["cache_misses"] = misses
            entry["cache_hit_rate"] = (
                round(hits / (hits + misses), 4) if hits + misses else 0.0
            )
        arms[arm] = entry

    identical = all(
        fingerprints["baseline"][name]
        == fingerprints["serial"][name]
        == fingerprints["parallel"][name]
        for name in names
    )
    baseline_s = arms["baseline"]["total_seconds"]
    serial_s = arms["serial"]["total_seconds"]
    parallel_s = arms["parallel"]["total_seconds"]
    return {
        "suite": names,
        "jobs": jobs,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "arms": arms,
        "speedup": {
            "serial_vs_baseline": _ratio(baseline_s, serial_s),
            "parallel_vs_baseline": _ratio(baseline_s, parallel_s),
            "parallel_vs_serial": _ratio(serial_s, parallel_s),
        },
        "outputs_identical": identical,
    }


def _ratio(reference: float, measured: float) -> float:
    return round(reference / measured, 3) if measured else 0.0


def parallel_gate_skip_reason(
    bench: Dict[str, object], baseline: Dict[str, object]
) -> Optional[str]:
    """Why parallel speedup gating would be meaningless here, or None.

    A document recorded on a machine with fewer than 2 CPUs ran its
    "parallel" arm serially — its parallel-vs-* ratios measure process
    overhead, not parallelism, so comparing against (or from) them is
    noise, not signal.  Either side of the comparison being single-core
    disables the parallel keys; a *missing* ``cpu_count`` (documents
    from before the field existed) is unknown, not single-core, and
    does not skip.
    """
    for label, doc in (("this runner", bench), ("the committed baseline", baseline)):
        cpus = doc.get("cpu_count")
        if isinstance(cpus, int) and cpus < 2:
            return (
                f"{label} recorded cpu_count={cpus}, so its parallel arm "
                "ran serially and parallel speedup ratios carry no signal"
            )
    return None


def check_against_baseline(
    bench: Dict[str, object], baseline: Dict[str, object]
) -> List[str]:
    """Perf-gate verdict: list of failure messages (empty == pass).

    Gates on output identity and on *speedup ratios* against the
    committed baseline — absolute seconds do not transfer between
    machines, relative speedups approximately do.  Parallel-arm ratios
    are only gated when both sides actually had parallelism available
    (:func:`parallel_gate_skip_reason`).
    """
    failures: List[str] = []
    if not bench.get("outputs_identical", False):
        failures.append(
            "serial and parallel arms produced different outputs "
            "(IR, tables, or diagnostics diverged)"
        )
    # The absolute floor: on a real multi-core runner the parallel arm
    # must beat (or at least match) serial, no matter what the committed
    # baseline says.  Keyed on *this* runner's cpu_count only — a
    # single-core runner has no parallelism to measure (blind spot kept).
    cpus = bench.get("cpu_count")
    if isinstance(cpus, int) and cpus >= 2:
        measured = (bench.get("speedup") or {}).get("parallel_vs_serial")
        if isinstance(measured, (int, float)) and measured < PARALLEL_FLOOR:
            failures.append(
                f"parallel arm lost to serial on a {cpus}-core runner: "
                f"parallel_vs_serial = {measured:.2f}x "
                f"(floor: >= {PARALLEL_FLOOR:.2f}x)"
            )
    skip_parallel = parallel_gate_skip_reason(bench, baseline) is not None
    reference_speedup = baseline.get("speedup")
    if not isinstance(reference_speedup, dict):
        reference_speedup = {}
    for key, reference in reference_speedup.items():
        if skip_parallel and key.startswith("parallel"):
            continue
        measured = (bench.get("speedup") or {}).get(key)
        # Malformed baselines may carry junk values; the gate only
        # compares real numbers.
        if not isinstance(reference, (int, float)) or not reference:
            continue
        if not isinstance(measured, (int, float)):
            continue
        if measured < reference * GATE_RATIO:
            failures.append(
                f"speedup {key} regressed: {measured:.2f}x measured vs "
                f"{reference:.2f}x in the committed baseline "
                f"(gate: >= {reference * GATE_RATIO:.2f}x)"
            )
    return failures


def write_bench(path: str, bench: Dict[str, object]) -> None:
    with open(path, "w") as handle:
        json.dump(bench, handle, indent=2, sort_keys=True)
        handle.write("\n")
