"""The eight SPECInt95-proxy workloads.

Each module exports a mini-C ``SOURCE`` plus metadata; this package keeps
the registry.  The proxies are *not* the SPEC programs — they are small
deterministic programs engineered to exhibit the promotion profile the
paper reports per benchmark:

===========  ===============================================================
go           global-state game engine: heavily promoted globals on hot scan
             loops, cold bookkeeping calls (paper: −25.5% dynamic loads)
li           recursive interpreter over a cons arena: moderate promotion
ijpeg        array kernels with loop-invariant global reads: big load
             reduction, few eliminable stores (paper calls this out)
perl         opcode-dispatch interpreter: handler call per iteration limits
             promotion to partial wins
m88ksim      CPU simulator: promotable cycle/stat counters around a
             per-instruction execute call
gcc          multi-pass token pipeline over global tables: mixed
compress     tight byte loop with checksum/count globals: small program,
             small absolute counts
vortex       call-saturated object store: promotion finds almost nothing
             (paper: 0.2% dynamic improvement)
===========  ===============================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.bench.workloads import (
    compress,
    gcc,
    go,
    ijpeg,
    li,
    m88ksim,
    perl,
    vortex,
)


@dataclass(frozen=True)
class Workload:
    name: str
    source: str
    description: str
    #: Routines whose interference graphs Table 3 reports.
    pressure_routines: Tuple[str, ...] = ()
    entry: str = "main"
    args: Tuple[int, ...] = ()


WORKLOADS: Dict[str, Workload] = {
    "go": Workload(
        "go", go.SOURCE, go.DESCRIPTION, pressure_routines=("scan_board", "main")
    ),
    "li": Workload(
        "li", li.SOURCE, li.DESCRIPTION, pressure_routines=("eval_node",)
    ),
    "ijpeg": Workload(
        "ijpeg", ijpeg.SOURCE, ijpeg.DESCRIPTION, pressure_routines=("quantize_block",)
    ),
    "perl": Workload(
        "perl", perl.SOURCE, perl.DESCRIPTION, pressure_routines=("run",)
    ),
    "m88ksim": Workload(
        "m88ksim", m88ksim.SOURCE, m88ksim.DESCRIPTION, pressure_routines=("simulate",)
    ),
    "gcc": Workload(
        "gcc", gcc.SOURCE, gcc.DESCRIPTION, pressure_routines=("fold_pass",)
    ),
    "compress": Workload(
        "compress", compress.SOURCE, compress.DESCRIPTION, pressure_routines=("main",)
    ),
    "vortex": Workload(
        "vortex", vortex.SOURCE, vortex.DESCRIPTION, pressure_routines=("main",)
    ),
}

#: Paper ordering for the tables.
ORDER: List[str] = ["go", "li", "ijpeg", "perl", "m88ksim", "gcc", "compress", "vortex"]
