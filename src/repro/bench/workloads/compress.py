"""``compress`` proxy — a tight byte-compression loop.

129.compress is tiny (the paper's static rows are two orders of
magnitude below gcc's); its inner loop hashes bytes and maintains
input/output counters and a checksum in globals, with an occasional
table-flush call.  Absolute counts stay small and the improvement is
modest, matching the paper's near-flat compress row.
"""

DESCRIPTION = "byte loop with checksum/count globals and an occasional flush call"

SOURCE = """
int htab[64];
int in_count = 0;
int out_count = 0;
int checksum = 0;
int flushes = 0;
int seed = 99;

int next_byte() {
    int s = (seed * 75 + 74) % 65537;
    seed = s;
    return s % 256;
}

int literals = 0;
int matches = 0;

void classify_byte(int byte) {
    if (byte % 4 == 0) {
        matches++;
    } else {
        literals++;
    }
}

void flush_table() {
    flushes++;
    for (int i = 0; i < 64; i++) {
        htab[i] = 0;
    }
}

int main() {
    for (int round = 0; round < 220; round++) {
        int byte = next_byte();
        classify_byte(byte);
        in_count++;
        checksum = (checksum * 31 + byte) % 100003;
        int slot = byte % 64;
        if (htab[slot] == byte) {
            out_count++;
        } else {
            htab[slot] = byte;
        }
        if (in_count % 96 == 0) {
            flush_table();
        }
    }
    print(in_count, out_count, checksum, flushes, literals, matches);
    return checksum % 251;
}
"""
