"""``gcc`` proxy — a multi-pass token pipeline over global tables.

126.gcc walks large token/tree tables under the control of global
option flags and statistic counters.  The proxy runs scan and fold
passes whose inner loops read option globals invariantly and bump
counters, with a cold diagnostic call — a mix of full and partial
promotion opportunities and a visible static-count increase after
promotion (the paper reports an 11.3% static load increase for gcc/sc).
"""

DESCRIPTION = "scan+fold compiler passes driven by global option flags and counters"

SOURCE = """
int tokens[96];
int values[96];
int opt_level = 2;
int fold_enabled = 1;
int warn_limit = 4;
int folds = 0;
int scans = 0;
int warnings = 0;
int symbols = 0;

void diagnose(int where) {
    warnings++;
    symbols = (symbols + where) % 4999;
}

int hash_chain = 0;
int interned = 0;

int collisions = 0;
int probe_cost = 0;

int intern(int token) {
    int h = (hash_chain * 33 + token) % 6151;
    hash_chain = h;
    probe_cost = (probe_cost + h % 7) % 9973;
    if (h % 3 == 0) {
        interned++;
    } else {
        collisions = (collisions + h % 5) % 9973;
    }
    return h % 96;
}

int scan_pass() {
    int found = 0;
    for (int i = 0; i < 96; i++) {
        int t = tokens[i];
        scans++;
        int slot = intern(t);
        if (t % 5 == opt_level) {
            found++;
            values[slot] = values[slot] + opt_level;
        }
        if (t % 89 == 0 && warnings < warn_limit) {
            diagnose(i);
        }
    }
    return found;
}

int fold_pass() {
    int changed = 0;
    for (int i = 0; i + 1 < 96; i++) {
        if (fold_enabled == 1 && values[i] % 3 == 0) {
            values[i] = (values[i] + values[i + 1]) / 2;
            folds++;
            changed++;
        }
    }
    return changed;
}

int main() {
    for (int i = 0; i < 96; i++) {
        tokens[i] = (i * 41 + 13) % 178;
        values[i] = i % 23;
    }
    int work = 0;
    for (int pass = 0; pass < 12; pass++) {
        work += scan_pass();
        work += fold_pass();
        if (pass % 4 == 3) {
            opt_level = (opt_level + 1) % 3;
        }
    }
    print(work, folds, scans, warnings, symbols, opt_level);
    print(hash_chain, interned, collisions, probe_cost);
    return work % 251;
}
"""
