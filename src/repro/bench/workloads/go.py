"""``go`` proxy — a global-state board game engine.

The paper singles out 099.go: "The benchmark go uses a number of global
variables including freelist, mvp, etc. which are successfully promoted
by our algorithm", and reports its largest dynamic load reduction
(25.5%) alongside a 14.3% *increase* in static loads (compensation code
on cold paths).

The proxy has the same composition as the real program: a promotable
kernel (``scan_board`` — hot global counters, one cold capture call) and
a larger body of scalar traffic that promotion legitimately cannot touch
(``classify``-style helpers called per position, whose callee-side
global updates are killed by the call boundary on every path).
"""

DESCRIPTION = "board-scan game engine with hot global counters, cold capture calls"

SOURCE = """
int board[121];
int liberties = 0;
int territory = 0;
int captures = 0;
int freelist = 0;
int mvp = 0;
int influence = 0;
int seed = 12345;
int generations = 0;
int stones_black = 0;
int stones_white = 0;
int contested = 0;
int quiet = 0;

int next_rand() {
    seed = (seed * 1103 + 12345) % 65521;
    return seed;
}

void record_capture(int pos) {
    captures++;
    freelist = (freelist * 7 + pos) % 9973;
}

void record_ko(int pos) {
    freelist = (freelist + pos * 3) % 9973;
}

void record_atari(int pos) {
    captures = captures + pos % 2;
}

int scan_board() {
    liberties = 0;
    territory = 0;
    influence = 0;
    for (int pos = 0; pos < 121; pos++) {
        int v = board[pos];
        if (v == 0) {
            territory++;
            influence += pos % 3;
            continue;
        }
        liberties += v % 4;
        influence += v % 5 - 2;
        if (v % 2 == 1) {
            mvp = mvp + 1;
        }
        if (liberties % 53 == 0) {
            record_capture(pos);
        } else if (influence % 67 == 0) {
            record_ko(pos);
        } else if (territory % 71 == 70) {
            record_atari(pos);
        }
    }
    return liberties + territory;
}

void classify(int v, int pos) {
    if (v % 2 == 1) {
        stones_black++;
        contested = (contested + pos + stones_white) % 7919;
        quiet = (quiet + stones_black % 3) % 7919;
    } else if (v != 0) {
        stones_white++;
        contested = (contested + v + stones_black) % 7919;
        quiet = (quiet + stones_white % 3) % 7919;
    } else {
        quiet++;
        contested = (contested + quiet % 5) % 7919;
    }
}

int count_stones() {
    int seen = 0;
    for (int pos = 0; pos < 121; pos++) {
        classify(board[pos], pos);
        classify(board[120 - pos], pos % 9);
        seen++;
    }
    return seen;
}

void mutate_board() {
    for (int i = 0; i < 12; i++) {
        int pos = next_rand() % 121;
        board[pos] = (board[pos] + next_rand() % 3) % 7;
    }
}

int main() {
    for (int i = 0; i < 121; i++) {
        board[i] = (i * 17 + 5) % 7;
    }
    int score = 0;
    for (int g = 0; g < 20; g++) {
        generations++;
        score += scan_board();
        score += count_stones();
        mutate_board();
        if (score % 97 == 0) {
            record_capture(g);
        }
    }
    print(score, liberties, territory, captures, mvp, freelist, influence);
    print(stones_black, stones_white, contested, quiet);
    return score % 251;
}
"""
