"""``ijpeg`` proxy — array kernels with loop-invariant global parameters.

The paper: "The benchmark ijpeg shows a significant reduction in loads
even though only few stores could be eliminated."  Image kernels read
tuning globals (quality factor, bias, clip limit) in every inner-loop
iteration — pure loop-invariant loads that promotion hoists wholesale —
while global *writes* are rare (per-block summaries and a cold clip
notifier), so there is little store traffic to remove.
"""

DESCRIPTION = "quantization kernels reading tuning globals per pixel, writing rarely"

SOURCE = """
int image[64];
int quant[64];
int qfactor = 7;
int bias = 3;
int clip_limit = 200;
int clip_count = 0;
int total_energy = 0;
int blocks_done = 0;

void note_clip() {
    clip_count++;
}

int quantize_block(int block_seed) {
    int sum = 0;
    for (int i = 0; i < 64; i++) {
        int pixel = (image[i] + block_seed) % 256;
        int q = pixel * qfactor / (quant[i] + 1) + bias;
        if (q > clip_limit) {
            q = clip_limit;
            note_clip();
        }
        sum += q;
    }
    total_energy = (total_energy + sum) % 1000003;
    blocks_done++;
    return sum;
}

int smooth_pass() {
    int acc = 0;
    for (int i = 1; i < 63; i++) {
        int avg = (image[i - 1] + image[i] + image[i + 1]) / 3;
        image[i] = (avg * qfactor + bias) % 256;
        acc += avg % 9;
    }
    return acc;
}

int bits_out = 0;
int run_length = 0;
int last_symbol = 0;

void emit_symbol(int symbol) {
    if (symbol == last_symbol) {
        run_length++;
        bits_out += 2;
    } else {
        bits_out += 9 + run_length % 4;
        run_length = 0;
        last_symbol = symbol;
    }
}

int entropy_encode(int block_seed) {
    int emitted = 0;
    for (int i = 0; i < 64; i++) {
        int symbol = (image[i] + block_seed) % 16;
        emit_symbol(symbol);
        emit_symbol(symbol / 4 + 16);
        emitted++;
    }
    return emitted;
}

int main() {
    for (int i = 0; i < 64; i++) {
        image[i] = (i * 31 + 7) % 256;
        quant[i] = i % 16 + 1;
    }
    int checksum = 0;
    for (int block = 0; block < 22; block++) {
        checksum = (checksum + quantize_block(block * 13)) % 65521;
        checksum = (checksum + entropy_encode(block)) % 65521;
        if (block % 6 == 5) {
            checksum = (checksum + smooth_pass()) % 65521;
        }
    }
    print(checksum, total_energy, clip_count, blocks_done);
    print(bits_out, run_length, last_symbol);
    return checksum % 251;
}
"""
