"""``li`` proxy — a recursive expression interpreter over a cons arena.

130.li is a Lisp interpreter: recursive evaluation, a cons-cell arena
managed through global pointers, and interpreter statistics in globals.
The paper reports a solid 16.5% dynamic load reduction.  The proxy
builds expression trees in ``car``/``cdr``/``tag`` arrays and evaluates
them recursively; the allocator's free pointer and the evaluator's
statistic counters are the promotable globals, and a hot no-call arena
sweep (the "garbage collector") provides loop-scope promotion wins.
"""

DESCRIPTION = "recursive cons-arena evaluator with allocator globals and a GC sweep"

SOURCE = """
int car[400];
int cdr[400];
int tag[400];
int freeptr = 0;
int allocs = 0;
int evals = 0;
int gc_live = 0;
int gc_runs = 0;
int deepest = 0;

int cons(int a, int d, int t) {
    int cell = freeptr;
    freeptr = (freeptr + 1) % 400;
    allocs++;
    car[cell] = a;
    cdr[cell] = d;
    tag[cell] = t;
    return cell;
}

int leaf(int value) {
    return cons(value, 0, 0);
}

int build_tree(int depth, int salt) {
    if (depth <= 0) {
        return leaf(salt % 10 + 1);
    }
    int lhs = build_tree(depth - 1, salt * 3 + 1);
    int rhs = build_tree(depth - 1, salt * 5 + 2);
    return cons(lhs, rhs, 1 + salt % 2);
}

int eval_node(int node, int depth) {
    evals++;
    if (depth > deepest) {
        deepest = depth;
    }
    if (tag[node] == 0) {
        return car[node];
    }
    int a = eval_node(car[node], depth + 1);
    int b = eval_node(cdr[node], depth + 1);
    if (tag[node] == 1) {
        return a + b;
    }
    return a * b % 4093;
}

int marked = 0;
int mark_cost = 0;

void mark(int cell) {
    marked++;
    mark_cost = (mark_cost + cell + marked % 3) % 9973;
}

int sweep() {
    gc_runs++;
    gc_live = 0;
    int reachable = 0;
    for (int i = 0; i < 400; i++) {
        if (tag[i] != 0) {
            gc_live++;
            reachable += car[i] % 7;
            mark(i);
        } else {
            reachable += 1;
        }
    }
    return reachable;
}

int main() {
    int total = 0;
    for (int round = 0; round < 14; round++) {
        int tree = build_tree(4, round);
        total = (total + eval_node(tree, 0)) % 100003;
        total = (total + sweep()) % 100003;
    }
    print(total, allocs, evals, gc_live, gc_runs, deepest);
    return total % 251;
}
"""
