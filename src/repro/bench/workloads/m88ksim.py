"""``m88ksim`` proxy — a CPU simulator's fetch/decode/execute loop.

Global machine state (cycle counter, fetch counter, pc, halt flag) is
read and updated around a per-instruction ``execute`` call; an
interrupt-scan stretch with no calls gives loop-scope promotion a
foothold, yielding the moderate improvement the paper reports (and a
near-zero *static* change, since compensation roughly balances the
removed operations).
"""

DESCRIPTION = "fetch/decode/execute simulator with promotable cycle counters"

SOURCE = """
int memory[128];
int regs[16];
int pc = 0;
int cycles = 0;
int fetched = 0;
int halted = 0;
int interrupts = 0;
int irq_mask = 5;

int psr = 0;
int alu_ops = 0;
int mem_ops = 0;
int branches = 0;

void execute(int inst) {
    int opcode = inst % 8;
    int rd = inst / 8 % 16;
    int rs = inst / 128 % 16;
    if (opcode == 0) {
        regs[rd] = regs[rs] + 1;
        alu_ops++;
        psr = (psr + regs[rd] % 2) % 256;
    } else if (opcode == 1) {
        regs[rd] = regs[rd] + regs[rs];
        alu_ops++;
        psr = (psr + regs[rd] % 2) % 256;
    } else if (opcode == 2) {
        regs[rd] = memory[regs[rs] % 128];
        mem_ops++;
    } else if (opcode == 3) {
        memory[regs[rd] % 128] = regs[rs];
        mem_ops++;
    } else if (opcode == 4) {
        pc = (pc + regs[rs]) % 128;
        branches++;
        psr = psr | 4;
    } else {
        regs[rd] = regs[rd] ^ regs[rs];
        alu_ops++;
    }
}

int irq_lines[8];

int scan_interrupts() {
    int pending = 0;
    int now = cycles % 16;
    int mask = irq_mask % 4;
    for (int line = 0; line < 8; line++) {
        int level = (irq_lines[line] + now) % 16;
        if (level < irq_lines[(line + 5) % 8] + mask && line % 2 == 0) {
            pending++;
        }
    }
    return pending;
}

int simulate(int budget) {
    while (halted == 0 && cycles < budget) {
        int inst = memory[pc % 128];
        pc++;
        fetched++;
        cycles += 2;
        execute(inst);
        int pending = scan_interrupts();
        if (pending > 3) {
            interrupts++;
            cycles += 5;
        }
        if (fetched > budget) {
            halted = 1;
        }
    }
    return cycles;
}

int main() {
    for (int i = 0; i < 128; i++) {
        memory[i] = (i * 113 + 29) % 1024;
    }
    for (int i = 0; i < 8; i++) {
        irq_lines[i] = i * 5 % 16;
    }
    int total = simulate(500);
    print(total, fetched, interrupts, regs[1], regs[7]);
    print(psr, alu_ops, mem_ops, branches);
    return total % 251;
}
"""
