"""``perl`` proxy — an opcode-dispatch interpreter.

134.perl's hot loop dispatches through handler routines, so most global
state (pc, stack pointer, accumulator) is killed by a call every
iteration; promotion is limited to flushing around the dispatch and to
call-free decode stretches.  The paper reports one of the smaller (but
non-zero) dynamic improvements for it.
"""

DESCRIPTION = "bytecode interpreter whose per-op handler calls limit promotion"

SOURCE = """
int prog[48];
int stack[32];
int pc = 0;
int sp = 0;
int acc = 0;
int steps = 0;
int faults = 0;

void op_push() {
    if (sp < 31) {
        stack[sp] = acc;
        sp++;
    } else {
        faults++;
    }
}

void op_pop() {
    int top = sp;
    if (top > 0) {
        sp = top - 1;
        acc = acc + stack[top - 1];
    } else {
        faults++;
    }
}

void op_arith(int kind) {
    if (kind == 0) acc = acc + 3;
    else if (kind == 1) acc = acc * 2 % 65521;
    else acc = acc - 1;
}

int decode_operand(int raw) {
    int value = 0;
    for (int bit = 0; bit < 8; bit++) {
        value = value * 2 + (raw >> bit) % 2;
    }
    return value % 7;
}

int run(int budget) {
    while (steps < budget) {
        int at = pc;
        pc = at + 1;
        int op = prog[at % 48];
        steps = steps + 1;
        int kind = decode_operand(op);
        if (kind < 2) op_push();
        else if (kind < 4) op_pop();
        else op_arith(kind - 4);
    }
    return acc;
}

int main() {
    for (int i = 0; i < 48; i++) {
        prog[i] = (i * 37 + 11) % 251;
    }
    int result = run(600);
    print(result, pc, sp, steps, faults);
    return result % 251;
}
"""
