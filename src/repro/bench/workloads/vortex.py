"""``vortex`` proxy — a call-saturated object store.

147.vortex is the paper's outlier: "Except for vortex, there is a
significant reduction of memory operations in all of the benchmarks"
(its dynamic counts barely move: 14877989 → 14853592).  Every operation
in the proxy goes through a function call that touches the global
object tables, so from any scope a call kills the globals on every hot
path, and the profitability test correctly finds nothing worth
promoting.
"""

DESCRIPTION = "object-store operations behind calls on every path; promotion finds ~nothing"

SOURCE = """
int keys[80];
int vals[80];
int population = 0;
int probes = 0;
int hits = 0;
int evictions = 0;

int probe(int key) {
    probes++;
    return key * 13 % 80;
}

int lookup(int key) {
    int slot = probe(key);
    if (keys[slot] == key) {
        hits++;
        return vals[slot];
    }
    return -1;
}

void insert(int key, int value) {
    int slot = probe(key);
    if (keys[slot] != 0) {
        evictions++;
    } else {
        population++;
    }
    keys[slot] = key;
    vals[slot] = value;
}

void remove_key(int key) {
    int slot = probe(key);
    if (keys[slot] == key) {
        keys[slot] = 0;
        population = population - 1;
    }
}

int main() {
    int total = 0;
    for (int op = 1; op <= 260; op++) {
        int key = op * 7 % 143 + 1;
        if (op % 3 == 0) {
            insert(key, op);
        } else if (op % 3 == 1) {
            int found = lookup(key);
            if (found > 0) {
                total = (total + found) % 65521;
            }
        } else {
            remove_key(key);
        }
    }
    print(total, population, probes, hits, evictions);
    return total % 251;
}
"""
