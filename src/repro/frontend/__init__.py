"""A mini-C front end.

The workloads (and many tests) are written in a small C dialect —
integers, pointers, arrays, global structs with scalar fields, functions,
the usual control flow — and lowered to IR with *every* variable in
memory.  Classic SSA construction then registers the unexposed locals;
globals, address-exposed locals, and struct fields remain in memory as
the paper's promotion candidates.

Entry point::

    from repro.frontend import compile_source
    module = compile_source("int x; int main() { x = x + 1; return x; }")
"""

from repro.frontend.errors import CompileError
from repro.frontend.lexer import Token, tokenize
from repro.frontend.parser import parse_program
from repro.frontend.lower import compile_source, lower_program

__all__ = [
    "CompileError",
    "Token",
    "compile_source",
    "lower_program",
    "parse_program",
    "tokenize",
]
