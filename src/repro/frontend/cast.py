"""The mini-C abstract syntax tree.

Plain dataclasses; every node carries its source line for diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass
class Expr:
    line: int = 0


@dataclass
class IntLit(Expr):
    value: int = 0


@dataclass
class Name(Expr):
    """A variable reference: local, parameter, or global scalar."""

    ident: str = ""


@dataclass
class FieldRef(Expr):
    """``s.f`` — scalar component of a global struct variable."""

    struct: str = ""
    field_name: str = ""


@dataclass
class Index(Expr):
    """``A[i]``"""

    array: str = ""
    index: Optional[Expr] = None


@dataclass
class Deref(Expr):
    """``*p``"""

    ptr: Optional[Expr] = None


@dataclass
class AddrOfExpr(Expr):
    """``&lvalue`` where lvalue is a Name, FieldRef, or Index."""

    target: Optional[Expr] = None


@dataclass
class Unary(Expr):
    op: str = ""
    operand: Optional[Expr] = None


@dataclass
class Binary(Expr):
    op: str = ""
    lhs: Optional[Expr] = None
    rhs: Optional[Expr] = None


@dataclass
class ShortCircuit(Expr):
    """``a && b`` / ``a || b`` with C evaluation order."""

    op: str = ""
    lhs: Optional[Expr] = None
    rhs: Optional[Expr] = None


@dataclass
class CallExpr(Expr):
    callee: str = ""
    args: List[Expr] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt:
    line: int = 0


@dataclass
class LocalDecl(Stmt):
    name: str = ""
    is_pointer: bool = False
    array_size: Optional[int] = None
    init: Optional[Expr] = None
    #: ``int buf[4] = {1, 2};`` — literal per-cell initializers (arrays).
    init_values: Optional[List[int]] = None


@dataclass
class Assign(Stmt):
    """``lvalue op= expr`` where op is "" for plain assignment."""

    target: Optional[Expr] = None  # Name | FieldRef | Index | Deref
    op: str = ""
    value: Optional[Expr] = None


@dataclass
class IncDec(Stmt):
    """``lvalue++`` / ``lvalue--`` (statement position only)."""

    target: Optional[Expr] = None
    op: str = "++"


@dataclass
class ExprStmt(Stmt):
    expr: Optional[Expr] = None


@dataclass
class PrintStmt(Stmt):
    args: List[Expr] = field(default_factory=list)


@dataclass
class If(Stmt):
    cond: Optional[Expr] = None
    then_body: List[Stmt] = field(default_factory=list)
    else_body: List[Stmt] = field(default_factory=list)


@dataclass
class While(Stmt):
    cond: Optional[Expr] = None
    body: List[Stmt] = field(default_factory=list)


@dataclass
class DoWhile(Stmt):
    cond: Optional[Expr] = None
    body: List[Stmt] = field(default_factory=list)


@dataclass
class For(Stmt):
    init: Optional[Stmt] = None
    cond: Optional[Expr] = None
    step: Optional[Stmt] = None
    body: List[Stmt] = field(default_factory=list)


@dataclass
class Break(Stmt):
    pass


@dataclass
class Continue(Stmt):
    pass


@dataclass
class Return(Stmt):
    value: Optional[Expr] = None


# ---------------------------------------------------------------------------
# Top level
# ---------------------------------------------------------------------------


@dataclass
class GlobalDecl:
    name: str
    array_size: Optional[int] = None
    init: int = 0
    line: int = 0
    #: ``int A[4] = {1, 2};`` — literal per-cell initializers (arrays).
    init_values: Optional[List[int]] = None


@dataclass
class StructDecl:
    """``struct s { int a; int b; };`` declares a global struct variable
    ``s`` whose scalar fields become independent promotion candidates."""

    name: str
    fields: List[str] = field(default_factory=list)
    inits: List[int] = field(default_factory=list)
    line: int = 0


@dataclass
class FunctionDecl:
    name: str
    params: List[str] = field(default_factory=list)
    body: List[Stmt] = field(default_factory=list)
    line: int = 0


@dataclass
class Program:
    globals: List[GlobalDecl] = field(default_factory=list)
    structs: List[StructDecl] = field(default_factory=list)
    functions: List[FunctionDecl] = field(default_factory=list)
