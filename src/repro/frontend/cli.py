"""Command-line driver: compile, optimize, run, and dump mini-C programs.

Usage::

    repro-minic program.c                 # compile + run
    repro-minic program.c --promote       # run the register promotion pass
    repro-minic program.c --emit-ir       # dump IR instead of running
    repro-minic program.c --fingerprint   # print the sticky routing key
    repro-minic program.c --baseline lucooper
    repro-minic program.c --args 3 4
    repro-minic program.c --promote --diagnostics out.json --strict

Exit codes: the program's return value (masked to 0..255) on success, 2
on driver errors (missing file, compile error, bad flags, runtime
error), 1 when ``--strict`` is given and the pipeline rolled back or
skipped any function or could not preserve behaviour, and 3 when the
run completed only in **degraded** mode — a function was quarantined by
the resilient executor, the parallel layer fell back to serial, or
retries/pool rebuilds were needed.  Precedence: 2 > 1 > 3 > the
program's return value.  ``--trace-out``/``--metrics-out`` export
failures are reported on stderr but never change the exit code —
observability is best-effort and must not mask (or manufacture) a
degraded or strict exit.

The resilient executor (``--timeout``, ``--retries``, ``--chaos``)
requires ``--promote`` with ``--jobs`` != 1; see docs/API.md
"Resilience".
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.frontend.errors import CompileError
from repro.frontend.lower import compile_source
from repro.ir.printer import print_module
from repro.profile.interp import Interpreter, InterpreterError


def _error(message: str) -> int:
    print(f"repro-minic: error: {message}", file=sys.stderr)
    return 2


def _batch_size(value: str):
    """``--batch-size`` values: ``auto`` or a positive integer."""
    if value == "auto":
        return "auto"
    try:
        count = int(value)
    except ValueError:
        count = 0
    if count < 1:
        raise argparse.ArgumentTypeError(
            f"expected 'auto' or a positive integer, got {value!r}"
        )
    return count


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-minic", description="mini-C compiler and runner"
    )
    parser.add_argument("source", help="mini-C source file")
    parser.add_argument("--entry", default="main")
    parser.add_argument("--args", nargs="*", type=int, default=[])
    parser.add_argument(
        "--promote", action="store_true", help="run SSA register promotion"
    )
    parser.add_argument(
        "--baseline",
        choices=["lucooper", "mahlke"],
        help="run a baseline promoter instead of the paper's algorithm",
    )
    parser.add_argument(
        "--unroll", action="store_true", help="unroll innermost loops first"
    )
    parser.add_argument(
        "--emit-ir", action="store_true", help="print IR instead of executing"
    )
    parser.add_argument(
        "--fingerprint",
        action="store_true",
        help="print the module fingerprint (the sharded service tier's "
        "sticky routing key; see docs/SERVICE.md) and exit",
    )
    parser.add_argument(
        "--emit-dot", action="store_true", help="print a Graphviz CFG dump"
    )
    parser.add_argument(
        "--stats", action="store_true", help="print before/after operation counts"
    )
    parser.add_argument(
        "--max-steps",
        type=int,
        default=None,
        metavar="N",
        help="interpreter step budget for profiling and execution",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for promotion (0 = one per CPU; "
        "results are identical to a serial run)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the per-function analysis cache",
    )
    parser.add_argument(
        "--batch-size",
        type=_batch_size,
        default="auto",
        metavar="auto|N",
        help="functions per worker task: 'auto' sizes batches from the "
        "pool's cost model, an integer forces fixed-count batches "
        "(1 = one task per function; default auto)",
    )
    parser.add_argument(
        "--keep-pool",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="keep the warm worker pool alive after the run so later "
        "runs in this process skip pool spin-up (--no-keep-pool "
        "restores per-run teardown)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-function wall-clock deadline; a hung worker is killed "
        "and the attempt retried (requires --jobs != 1)",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=None,
        metavar="N",
        help="extra attempts for transient failures before a function is "
        "quarantined to its unpromoted IR (default 2; requires --jobs != 1)",
    )
    parser.add_argument(
        "--chaos",
        metavar="SPEC",
        help="inject seeded worker faults, e.g. "
        "'crash=0.1,hang=0.1,transient=0.2,seed=42,hang_seconds=5' "
        "(requires --jobs != 1)",
    )
    parser.add_argument(
        "--trace-out",
        metavar="FILE",
        help="write the run's span trace (Chrome trace-event JSON; a "
        ".jsonl suffix writes the event log instead; requires --promote)",
    )
    parser.add_argument(
        "--metrics-out",
        metavar="FILE",
        help="write the run's metrics registry as JSON (requires --promote)",
    )
    parser.add_argument(
        "--decisions-out",
        metavar="FILE",
        help="write the promotion decision journal as JSONL — one "
        "verdict per candidate access (requires --promote)",
    )
    parser.add_argument(
        "--diagnostics",
        metavar="FILE",
        help="write the pipeline's per-function outcome report as JSON",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 if the pipeline rolled back or skipped any function",
    )
    options = parser.parse_args(argv)

    try:
        with open(options.source) as handle:
            source = handle.read()
    except OSError as exc:
        return _error(f"cannot read {options.source}: {exc.strerror or exc}")
    try:
        module = compile_source(source)
    except CompileError as exc:
        return _error(f"{options.source}: {exc}")

    if options.fingerprint:
        # The same key repro-route computes: the fingerprint of the
        # freshly compiled module, before any transformation.
        from repro.parallel.fingerprint import module_fingerprint

        print(module_fingerprint(module)[0])
        return 0

    if options.unroll:
        from repro.passes.unroll import unroll_module

        unrolled = unroll_module(module)
        print(f"unrolled {unrolled} loop(s)", file=sys.stderr)

    pipeline_kwargs = dict(entry=options.entry, args=options.args)
    if options.max_steps is not None:
        pipeline_kwargs["max_steps"] = options.max_steps

    resilience = None
    wants_resilience = (
        options.timeout is not None
        or options.retries is not None
        or options.chaos is not None
    )
    if wants_resilience:
        if not options.promote or options.baseline is not None:
            return _error("--timeout/--retries/--chaos require --promote")
        if options.jobs == 1:
            return _error(
                "--timeout/--retries/--chaos require --jobs != 1 (the "
                "resilient executor acts on worker processes)"
            )
        from repro.robustness import ChaosConfig, ResilienceOptions

        chaos = None
        if options.chaos is not None:
            try:
                chaos = ChaosConfig.parse(options.chaos)
            except ValueError as exc:
                return _error(f"--chaos: {exc}")
        try:
            resilience = ResilienceOptions(
                timeout_s=options.timeout,
                retries=options.retries if options.retries is not None else 2,
                seed=chaos.seed if chaos is not None else 0,
                chaos=chaos,
            )
        except ValueError as exc:
            return _error(str(exc))

    observability = None
    if options.trace_out or options.metrics_out:
        if not options.promote or options.baseline is not None:
            return _error("--trace-out/--metrics-out require --promote")
        from repro.observability import Observability

        observability = Observability.recording()

    decisions = None
    if options.decisions_out:
        if not options.promote or options.baseline is not None:
            return _error("--decisions-out requires --promote")
        from repro.observability import DecisionJournal

        decisions = DecisionJournal()

    result = None
    pipeline = None
    if options.baseline is not None and (
        options.jobs != 1
        or options.no_cache
        or options.batch_size != "auto"
        or not options.keep_pool
    ):
        print(
            "repro-minic: note: --jobs/--no-cache/--batch-size/--keep-pool "
            "only apply to --promote; the baselines run serially",
            file=sys.stderr,
        )
    if options.baseline == "lucooper":
        from repro.baselines.lucooper import LuCooperPipeline

        result = LuCooperPipeline(**pipeline_kwargs).run(module)
    elif options.baseline == "mahlke":
        from repro.baselines.mahlke import MahlkePipeline

        result = MahlkePipeline(**pipeline_kwargs).run(module)
    elif options.promote:
        from repro.promotion.pipeline import PromotionPipeline

        pipeline = PromotionPipeline(
            jobs=options.jobs,
            use_cache=not options.no_cache,
            batch_size=options.batch_size,
            keep_pool=options.keep_pool,
            resilience=resilience,
            observability=observability,
            decisions=decisions,
            **pipeline_kwargs,
        )
        result = pipeline.run(module)

    if options.stats and result is not None:
        print(result.report(), file=sys.stderr)

    if observability is not None and pipeline is not None and result is not None:
        # Exporting is best-effort: observability must never change the
        # run's semantics, so a failed write reports on stderr and leaves
        # the exit code (and its 2 > 1 > 3 precedence) untouched.
        from repro.observability import build_metadata, write_metrics, write_trace

        metadata = build_metadata(
            profile_source=result.diagnostics.profile_source,
            config=pipeline.config_stamp(),
        )
        if options.trace_out:
            try:
                write_trace(
                    options.trace_out, observability.tracer, observability.metrics,
                    metadata,
                )
            except OSError as exc:
                print(
                    f"repro-minic: warning: cannot write trace to "
                    f"{options.trace_out}: {exc.strerror or exc}",
                    file=sys.stderr,
                )
        if options.metrics_out:
            try:
                write_metrics(options.metrics_out, observability.metrics, metadata)
            except OSError as exc:
                print(
                    f"repro-minic: warning: cannot write metrics to "
                    f"{options.metrics_out}: {exc.strerror or exc}",
                    file=sys.stderr,
                )

    if decisions is not None and result is not None:
        # Same best-effort contract as the trace/metrics exports.
        from repro.observability import build_metadata

        try:
            decisions.write(
                options.decisions_out,
                build_metadata(profile_source=result.diagnostics.profile_source),
            )
        except OSError as exc:
            print(
                f"repro-minic: warning: cannot write decisions to "
                f"{options.decisions_out}: {exc.strerror or exc}",
                file=sys.stderr,
            )

    if options.diagnostics:
        if result is None:
            return _error("--diagnostics requires --promote or --baseline")
        try:
            result.diagnostics.write(options.diagnostics)
        except OSError as exc:
            return _error(f"cannot write {options.diagnostics}: {exc.strerror or exc}")
        fallback = result.diagnostics.fallback_reason
        if fallback:
            where = f" in {fallback['function']!r}" if fallback.get("function") else ""
            print(
                "repro-minic: parallel fallback: "
                f"{fallback.get('error_type')}: {fallback.get('detail')}{where}",
                file=sys.stderr,
            )

    strict_failed = (
        options.strict
        and result is not None
        and (not result.diagnostics.clean or not result.output_matches)
    )
    if strict_failed:
        print(
            "repro-minic: strict: "
            f"{result.diagnostics.summary()}, behaviour preserved: "
            f"{result.output_matches}",
            file=sys.stderr,
        )
    degraded = result is not None and result.diagnostics.degraded
    if degraded:
        counters = result.diagnostics.resilience or {}
        print(
            "repro-minic: degraded: "
            f"{len(result.diagnostics.quarantined_functions)} quarantined, "
            f"{counters.get('retries', 0)} retries, "
            f"{counters.get('pool_rebuilds', 0)} pool rebuilds"
            + (
                "; parallel fell back to serial"
                if result.diagnostics.fallback_reason
                else ""
            ),
            file=sys.stderr,
        )

    def _exit(code: int) -> int:
        if strict_failed:
            return 1
        if degraded:
            return 3
        return code

    if options.emit_dot:
        from repro.ir.dot import module_to_dot

        print(module_to_dot(module), end="")
        return _exit(0)
    if options.emit_ir:
        print(print_module(module), end="")
        return _exit(0)

    interp_kwargs = {}
    if options.max_steps is not None:
        interp_kwargs["max_steps"] = options.max_steps
    try:
        run = Interpreter(module, **interp_kwargs).run(options.entry, options.args)
    except InterpreterError as exc:
        return _error(f"execution failed: {exc}")
    for values in run.output:
        print(" ".join(str(v) for v in values))
    return _exit(run.return_value & 0xFF)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
