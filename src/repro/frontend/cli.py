"""Command-line driver: compile, optimize, run, and dump mini-C programs.

Usage::

    repro-minic program.c                 # compile + run
    repro-minic program.c --promote       # run the register promotion pass
    repro-minic program.c --emit-ir       # dump IR instead of running
    repro-minic program.c --baseline lucooper
    repro-minic program.c --args 3 4
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.frontend.lower import compile_source
from repro.ir.printer import print_module
from repro.profile.interp import Interpreter


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-minic", description="mini-C compiler and runner"
    )
    parser.add_argument("source", help="mini-C source file")
    parser.add_argument("--entry", default="main")
    parser.add_argument("--args", nargs="*", type=int, default=[])
    parser.add_argument(
        "--promote", action="store_true", help="run SSA register promotion"
    )
    parser.add_argument(
        "--baseline",
        choices=["lucooper", "mahlke"],
        help="run a baseline promoter instead of the paper's algorithm",
    )
    parser.add_argument(
        "--unroll", action="store_true", help="unroll innermost loops first"
    )
    parser.add_argument(
        "--emit-ir", action="store_true", help="print IR instead of executing"
    )
    parser.add_argument(
        "--emit-dot", action="store_true", help="print a Graphviz CFG dump"
    )
    parser.add_argument(
        "--stats", action="store_true", help="print before/after operation counts"
    )
    options = parser.parse_args(argv)

    with open(options.source) as handle:
        module = compile_source(handle.read())

    if options.unroll:
        from repro.passes.unroll import unroll_module

        unrolled = unroll_module(module)
        print(f"unrolled {unrolled} loop(s)", file=sys.stderr)

    result = None
    if options.baseline == "lucooper":
        from repro.baselines.lucooper import LuCooperPipeline

        result = LuCooperPipeline(entry=options.entry, args=options.args).run(module)
    elif options.baseline == "mahlke":
        from repro.baselines.mahlke import MahlkePipeline

        result = MahlkePipeline(entry=options.entry, args=options.args).run(module)
    elif options.promote:
        from repro.promotion.pipeline import PromotionPipeline

        result = PromotionPipeline(entry=options.entry, args=options.args).run(module)

    if options.stats and result is not None:
        print(result.report(), file=sys.stderr)

    if options.emit_dot:
        from repro.ir.dot import module_to_dot

        print(module_to_dot(module), end="")
        return 0
    if options.emit_ir:
        print(print_module(module), end="")
        return 0

    run = Interpreter(module).run(options.entry, options.args)
    for values in run.output:
        print(" ".join(str(v) for v in values))
    return run.return_value & 0xFF


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
