"""Front-end diagnostics."""

from __future__ import annotations


class CompileError(ValueError):
    """A lexical, syntactic, or semantic error in mini-C source."""

    def __init__(self, message: str, line: int = 0) -> None:
        self.line = line
        super().__init__(f"line {line}: {message}" if line else message)


class FrontendLimitError(CompileError):
    """An untrusted-input resource limit tripped.

    Raised when source size, token count, or nesting depth exceeds the
    active :class:`~repro.frontend.limits.InputLimits` — *before* the
    frontend would hit a raw ``RecursionError`` or exhaust memory.  A
    structured subclass of :class:`CompileError` so existing handlers
    keep working (CLI exit code 2), while servers can distinguish a
    resource-limit rejection (a clean 4xx) from a syntax error.
    """

    def __init__(self, limit: str, actual: int, maximum: int, line: int = 0) -> None:
        self.limit = limit
        self.actual = actual
        self.maximum = maximum
        super().__init__(
            f"input exceeds the {limit} limit ({actual} > {maximum})", line
        )
