"""Tokenizer for mini-C."""

from __future__ import annotations

from typing import List, NamedTuple, Optional

from repro.frontend.errors import CompileError
from repro.frontend.limits import DEFAULT_LIMITS, InputLimits

# fmt: off
KEYWORDS = {
    "int", "void", "struct", "if", "else", "while", "for", "do",
    "return", "break", "continue", "print",
}

#: Multi-character operators, longest first so maximal munch works.
OPERATORS = [
    "<<=", ">>=",
    "==", "!=", "<=", ">=", "&&", "||", "++", "--",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<", ">>",
    "+", "-", "*", "/", "%", "<", ">", "=", "!", "&", "|", "^", "~",
    "(", ")", "{", "}", "[", "]", ";", ",", ".",
]
# fmt: on


class Token(NamedTuple):
    kind: str  # "num" | "ident" | "kw" | "op" | "eof"
    text: str
    line: int

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.kind}:{self.text}@{self.line}"


def tokenize(source: str, limits: Optional[InputLimits] = None) -> List[Token]:
    limits = limits or DEFAULT_LIMITS
    limits.check_source(source)
    tokens: List[Token] = []
    i = 0
    line = 1
    n = len(source)
    while i < n:
        # Checked inside the scan loop so a pathological input is
        # rejected as soon as it crosses the cap, not after buffering
        # every token.
        if len(tokens) >= limits.max_tokens:
            limits.check_tokens(len(tokens) + 1, line)
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if source.startswith("//", i):
            while i < n and source[i] != "\n":
                i += 1
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end == -1:
                raise CompileError("unterminated block comment", line)
            line += source.count("\n", i, end)
            i = end + 2
            continue
        if ch.isdigit():
            j = i
            while j < n and source[j].isdigit():
                j += 1
            tokens.append(Token("num", source[i:j], line))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            tokens.append(Token("kw" if text in KEYWORDS else "ident", text, line))
            i = j
            continue
        for op in OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, line))
                i += len(op)
                break
        else:
            raise CompileError(f"unexpected character {ch!r}", line)
    tokens.append(Token("eof", "", line))
    return tokens
