"""Resource limits for untrusted frontend input.

The frontend was written for trusted benchmark sources; a service
accepting arbitrary jobs needs hard caps so a hostile input fails with a
structured :class:`~repro.frontend.errors.FrontendLimitError` instead of
a raw ``RecursionError`` (deeply nested expressions) or an OOM kill
(pathologically large sources).  Three caps cover the frontend's
resource axes:

``max_source_bytes``
    UTF-8 size of the source text, checked before tokenization;
``max_tokens``
    token count, checked incrementally while the lexer runs, so a
    gigantic comment-free input is rejected mid-scan;
``max_depth``
    combined statement/expression nesting depth in the recursive-descent
    parser.  Lowering recurses over the AST the parser built, so this
    one cap bounds the whole frontend's stack depth.  Each depth unit
    costs roughly a dozen Python frames (the parser descends through
    every binary-precedence level), so the default stays far below the
    interpreter's recursion limit.

The defaults are generous for every legitimate workload in the repo;
services tighten them per deployment (``ServiceConfig.limits``).
"""

from __future__ import annotations

from typing import Dict

from repro.frontend.errors import FrontendLimitError


class InputLimits:
    """Caps for one compilation of untrusted source."""

    __slots__ = ("max_source_bytes", "max_tokens", "max_depth")

    def __init__(
        self,
        max_source_bytes: int = 2_000_000,
        max_tokens: int = 500_000,
        max_depth: int = 48,
    ) -> None:
        for name, value in (
            ("max_source_bytes", max_source_bytes),
            ("max_tokens", max_tokens),
            ("max_depth", max_depth),
        ):
            if value <= 0:
                raise ValueError(f"{name} must be > 0, got {value}")
        self.max_source_bytes = max_source_bytes
        self.max_tokens = max_tokens
        self.max_depth = max_depth

    def check_source(self, source: str) -> None:
        """Reject oversized source before any per-character work."""
        size = len(source.encode("utf-8", errors="replace"))
        if size > self.max_source_bytes:
            raise FrontendLimitError("source size", size, self.max_source_bytes)

    def check_tokens(self, count: int, line: int) -> None:
        if count > self.max_tokens:
            raise FrontendLimitError("token count", count, self.max_tokens, line)

    def check_depth(self, depth: int, line: int) -> None:
        if depth > self.max_depth:
            raise FrontendLimitError("nesting depth", depth, self.max_depth, line)

    def as_dict(self) -> Dict[str, int]:
        return {
            "max_source_bytes": self.max_source_bytes,
            "max_tokens": self.max_tokens,
            "max_depth": self.max_depth,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"InputLimits(max_source_bytes={self.max_source_bytes}, "
            f"max_tokens={self.max_tokens}, max_depth={self.max_depth})"
        )


#: The default caps, applied whenever a caller does not pass its own.
DEFAULT_LIMITS = InputLimits()
