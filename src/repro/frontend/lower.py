"""Lowering from the mini-C AST to IR.

Every variable is lowered to memory — globals and struct fields to
module-level :class:`MemoryVar`s, locals (including parameters, which are
spilled on entry so they are assignable) to frame variables.  Classic SSA
construction later promotes the unexposed locals; what remains in memory
is exactly the paper's candidate set.

Short-circuit ``&&``/``||`` lower through a temporary local (which
mem2reg immediately turns into a phi).  ``break``/``continue`` use the
enclosing loop's exit/continue blocks.  Statements after a terminator
fall into an unreachable block that CFG cleanup removes.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.frontend import cast as A
from repro.frontend.errors import CompileError
from repro.frontend.parser import parse_program
from repro.frontend.sema import FunctionInfo, SemaInfo, analyze
from repro.ir.basicblock import BasicBlock
from repro.ir.builder import IRBuilder
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.values import Const, Value
from repro.memory.resources import MemoryVar, VarKind


def compile_source(source: str, module_name: str = "minic", limits=None) -> Module:
    """Parse, analyze, and lower mini-C source to an IR module.

    ``limits`` (an :class:`~repro.frontend.limits.InputLimits`) caps
    source size, token count, and nesting depth for untrusted input;
    ``None`` applies the generous defaults.
    """
    return lower_program(parse_program(source, limits), module_name)


def lower_program(program: A.Program, module_name: str = "minic") -> Module:
    info = analyze(program)
    module = Module(module_name)
    for decl in program.globals:
        if decl.array_size is not None:
            module.add_global_array(
                decl.name, decl.array_size, decl.init, decl.init_values
            )
        else:
            module.add_global(decl.name, decl.init)
    for struct in program.structs:
        for field_name, init in zip(struct.fields, struct.inits):
            module.add_field(struct.name, field_name, init)
    for function in program.functions:
        _Lowerer(module, info, info.functions[function.name]).lower()
    return module


class _Lowerer:
    def __init__(self, module: Module, info: SemaInfo, finfo: FunctionInfo) -> None:
        self.module = module
        self.info = info
        self.finfo = finfo
        self.func = module.new_function(finfo.decl.name, list(finfo.decl.params))
        self.b = IRBuilder(self.func)
        #: (continue_target, break_target) stack for loops.
        self.loops: List[Tuple[BasicBlock, BasicBlock]] = []
        self._sc_counter = 0

    # -- plumbing ----------------------------------------------------------

    def lower(self) -> Function:
        entry = self.func.add_block("entry")
        self.b.at(entry)
        # Spill parameters so they are assignable like any local.
        for name, reg in zip(self.finfo.decl.params, self.func.params):
            var = self.func.add_frame_var(name, VarKind.LOCAL)
            self.b.store(var, reg)
        # Declare frame storage for every local up front (C block scoping
        # was flattened by sema); initializers run at their statements.
        for name, decl in self.finfo.locals.items():
            kind = VarKind.ARRAY if decl.array_size is not None else VarKind.LOCAL
            var = self.func.add_frame_var(
                name, kind, initial=0, size=decl.array_size or 1
            )
            var.initial_values = decl.init_values
        self.lower_body(self.finfo.decl.body)
        if self.b.block is not None and self.b.block.terminator is None:
            self.b.ret(0)
        return self.func

    def _terminated(self) -> bool:
        return self.b.block is None or self.b.block.terminator is not None

    def _fresh_block_after_terminator(self) -> None:
        """Code after return/break/continue lands in a dead block."""
        self.b.at(self.func.new_block("dead"))

    def lower_body(self, body: List[A.Stmt]) -> None:
        for stmt in body:
            if self._terminated():
                self._fresh_block_after_terminator()
            self.lower_stmt(stmt)

    # -- statements ---------------------------------------------------------

    def lower_stmt(self, stmt: A.Stmt) -> None:
        if isinstance(stmt, A.LocalDecl):
            if stmt.init is not None:
                var = self.func.frame_vars[stmt.name]
                self.b.store(var, self.lower_expr(stmt.init))
        elif isinstance(stmt, A.Assign):
            self.lower_assign(stmt)
        elif isinstance(stmt, A.IncDec):
            delta = 1 if stmt.op == "++" else -1
            current = self.lower_expr(stmt.target)
            updated = self.b.add(current, delta)
            self.store_lvalue(stmt.target, updated)
        elif isinstance(stmt, A.ExprStmt):
            self.lower_expr(stmt.expr)
        elif isinstance(stmt, A.PrintStmt):
            self.b.print_(*[self.lower_expr(a) for a in stmt.args])
        elif isinstance(stmt, A.If):
            self.lower_if(stmt)
        elif isinstance(stmt, A.While):
            self.lower_while(stmt)
        elif isinstance(stmt, A.DoWhile):
            self.lower_do_while(stmt)
        elif isinstance(stmt, A.For):
            self.lower_for(stmt)
        elif isinstance(stmt, A.Break):
            self.b.jump(self.loops[-1][1])
        elif isinstance(stmt, A.Continue):
            self.b.jump(self.loops[-1][0])
        elif isinstance(stmt, A.Return):
            value = self.lower_expr(stmt.value) if stmt.value is not None else None
            self.b.ret(value)
        else:  # pragma: no cover
            raise CompileError(f"cannot lower {type(stmt).__name__}", stmt.line)

    def lower_assign(self, stmt: A.Assign) -> None:
        value = self.lower_expr(stmt.value)
        if stmt.op:
            current = self.lower_expr(stmt.target)
            value = self.b.binop(_COMPOUND[stmt.op], current, value)
        self.store_lvalue(stmt.target, value)

    def lower_if(self, stmt: A.If) -> None:
        then_block = self.func.new_block("then")
        join = self.func.new_block("join")
        else_block = self.func.new_block("else") if stmt.else_body else join
        self.b.cond_br(self.lower_expr(stmt.cond), then_block, else_block)

        self.b.at(then_block)
        self.lower_body(stmt.then_body)
        if not self._terminated():
            self.b.jump(join)
        if stmt.else_body:
            self.b.at(else_block)
            self.lower_body(stmt.else_body)
            if not self._terminated():
                self.b.jump(join)
        self.b.at(join)

    def lower_while(self, stmt: A.While) -> None:
        header = self.func.new_block("wh")
        body = self.func.new_block("wbody")
        exit_block = self.func.new_block("wexit")
        self.b.jump(header)
        self.b.at(header)
        self.b.cond_br(self.lower_expr(stmt.cond), body, exit_block)
        self.loops.append((header, exit_block))
        self.b.at(body)
        self.lower_body(stmt.body)
        if not self._terminated():
            self.b.jump(header)
        self.loops.pop()
        self.b.at(exit_block)

    def lower_do_while(self, stmt: A.DoWhile) -> None:
        body = self.func.new_block("dbody")
        cond_block = self.func.new_block("dcond")
        exit_block = self.func.new_block("dexit")
        self.b.jump(body)
        self.loops.append((cond_block, exit_block))
        self.b.at(body)
        self.lower_body(stmt.body)
        if not self._terminated():
            self.b.jump(cond_block)
        self.loops.pop()
        self.b.at(cond_block)
        self.b.cond_br(self.lower_expr(stmt.cond), body, exit_block)
        self.b.at(exit_block)

    def lower_for(self, stmt: A.For) -> None:
        if stmt.init is not None:
            self.lower_stmt(stmt.init)
        header = self.func.new_block("fh")
        body = self.func.new_block("fbody")
        step_block = self.func.new_block("fstep")
        exit_block = self.func.new_block("fexit")
        self.b.jump(header)
        self.b.at(header)
        cond = self.lower_expr(stmt.cond) if stmt.cond is not None else Const(1)
        self.b.cond_br(cond, body, exit_block)
        self.loops.append((step_block, exit_block))
        self.b.at(body)
        self.lower_body(stmt.body)
        if not self._terminated():
            self.b.jump(step_block)
        self.loops.pop()
        self.b.at(step_block)
        if stmt.step is not None:
            self.lower_stmt(stmt.step)
        self.b.jump(header)
        self.b.at(exit_block)

    # -- lvalues ----------------------------------------------------------

    def store_lvalue(self, target: Optional[A.Expr], value: Value) -> None:
        assert target is not None
        if isinstance(target, A.Name):
            self.b.store(self.scalar_var(target.ident), value)
        elif isinstance(target, A.FieldRef):
            self.b.store(self.field_var(target), value)
        elif isinstance(target, A.Index):
            index = self.lower_expr(target.index)
            self.b.array_store(self.array_var(target.array), index, value)
        elif isinstance(target, A.Deref):
            self.b.ptr_store(self.lower_expr(target.ptr), value)
        else:  # pragma: no cover - sema rejects
            raise CompileError("bad assignment target", target.line)

    def scalar_var(self, name: str) -> MemoryVar:
        var = self.func.frame_vars.get(name)
        if var is not None:
            return var
        return self.module.get_global(name)

    def field_var(self, node: A.FieldRef) -> MemoryVar:
        return self.module.get_global(f"{node.struct}.{node.field_name}")

    def array_var(self, name: str) -> MemoryVar:
        var = self.func.frame_vars.get(name)
        if var is not None:
            return var
        return self.module.get_global(name)

    # -- expressions --------------------------------------------------------

    def lower_expr(self, node: Optional[A.Expr]) -> Value:
        assert node is not None
        if isinstance(node, A.IntLit):
            return Const(node.value)
        if isinstance(node, A.Name):
            return self.b.load(self.scalar_var(node.ident))
        if isinstance(node, A.FieldRef):
            return self.b.load(self.field_var(node))
        if isinstance(node, A.Index):
            index = self.lower_expr(node.index)
            return self.b.array_load(self.array_var(node.array), index)
        if isinstance(node, A.Deref):
            return self.b.ptr_load(self.lower_expr(node.ptr))
        if isinstance(node, A.AddrOfExpr):
            target = node.target
            if isinstance(target, A.Name):
                return self.b.addr_of(self.scalar_var(target.ident))
            if isinstance(target, A.FieldRef):
                return self.b.addr_of(self.field_var(target))
            assert isinstance(target, A.Index)
            index = self.lower_expr(target.index)
            return self.b.elem(self.array_var(target.array), index)
        if isinstance(node, A.Unary):
            return self.b.unop(node.op, self.lower_expr(node.operand))
        if isinstance(node, A.Binary):
            lhs = self.lower_expr(node.lhs)
            rhs = self.lower_expr(node.rhs)
            return self.b.binop(node.op, lhs, rhs)
        if isinstance(node, A.ShortCircuit):
            return self.lower_short_circuit(node)
        if isinstance(node, A.CallExpr):
            args = [self.lower_expr(a) for a in node.args]
            return self.b.call(node.callee, args)
        raise CompileError(f"cannot lower {type(node).__name__}", node.line)

    def lower_short_circuit(self, node: A.ShortCircuit) -> Value:
        """``a && b`` / ``a || b`` via a temporary local that mem2reg
        turns into a phi."""
        self._sc_counter += 1
        tmp = self.func.add_frame_var(f"__sc{self._sc_counter}", VarKind.LOCAL)
        rhs_block = self.func.new_block("sc")
        short_block = self.func.new_block("sc")
        join = self.func.new_block("sc")

        lhs = self.lower_expr(node.lhs)
        if node.op == "&&":
            self.b.cond_br(lhs, rhs_block, short_block)
            short_value: Value = Const(0)
        else:
            self.b.cond_br(lhs, short_block, rhs_block)
            short_value = Const(1)

        self.b.at(rhs_block)
        rhs = self.lower_expr(node.rhs)
        self.b.store(tmp, self.b.ne(rhs, 0))
        self.b.jump(join)

        self.b.at(short_block)
        self.b.store(tmp, short_value)
        self.b.jump(join)

        self.b.at(join)
        return self.b.load(tmp)


# fmt: off
_COMPOUND = {
    "+": "add", "-": "sub", "*": "mul", "/": "div", "%": "rem",
    "&": "and", "|": "or", "^": "xor", "<<": "shl", ">>": "shr",
}
# fmt: on
