"""Recursive-descent parser for mini-C.

Grammar sketch::

    program   := (global | struct | function)*
    global    := "int" ident ("[" num "]")? ("=" int)? ";"
    struct    := "struct" ident "{" ("int" ident ("=" int)? ";")+ "}" ";"
    function  := ("int" | "void") ident "(" params? ")" block
    stmt      := decl | if | while | do-while | for | return | break
               | continue | print | assignment | call-statement
    expr      := C expression grammar with && / || short-circuiting,
                 unary - ! ~ * &, and no assignment-as-expression

Assignments are statements (including ``+=``-style compound forms and
postfix ``++``/``--``), matching how the workloads are written.
"""

from __future__ import annotations

from typing import List, Optional

from repro.frontend import cast as A
from repro.frontend.errors import CompileError
from repro.frontend.lexer import Token, tokenize
from repro.frontend.limits import DEFAULT_LIMITS, InputLimits

_ASSIGN_OPS = {"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="}

_BINARY_LEVELS = [
    ["||"],
    ["&&"],
    ["|"],
    ["^"],
    ["&"],
    ["==", "!="],
    ["<", "<=", ">", ">="],
    ["<<", ">>"],
    ["+", "-"],
    ["*", "/", "%"],
]

# fmt: off
_OP_NAMES = {
    "+": "add", "-": "sub", "*": "mul", "/": "div", "%": "rem",
    "&": "and", "|": "or", "^": "xor", "<<": "shl", ">>": "shr",
    "<": "lt", "<=": "le", ">": "gt", ">=": "ge", "==": "eq", "!=": "ne",
}
# fmt: on


def parse_program(source: str, limits: Optional[InputLimits] = None) -> A.Program:
    limits = limits or DEFAULT_LIMITS
    return _Parser(tokenize(source, limits), limits).program()


class _Parser:
    def __init__(self, tokens: List[Token], limits: Optional[InputLimits] = None) -> None:
        self.tokens = tokens
        self.limits = limits or DEFAULT_LIMITS
        self.pos = 0
        #: Combined statement + expression nesting depth.  Guarded in
        #: every recursive production so a hostile input fails with a
        #: structured FrontendLimitError long before Python's own
        #: RecursionError (each depth unit costs ~a dozen frames in the
        #: precedence climb).  Lowering recurses over the AST this
        #: parser built, so the same cap bounds its stack too.
        self.depth = 0

    def _descend(self) -> None:
        self.depth += 1
        if self.depth > self.limits.max_depth:
            self.limits.check_depth(self.depth, self.tok.line)

    # -- token helpers ----------------------------------------------------

    @property
    def tok(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        tok = self.tok
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def check(self, text: str) -> bool:
        return self.tok.text == text and self.tok.kind in ("op", "kw")

    def accept(self, text: str) -> bool:
        if self.check(text):
            self.advance()
            return True
        return False

    def expect(self, text: str) -> Token:
        if not self.check(text):
            raise CompileError(
                f"expected {text!r}, found {self.tok.text!r}", self.tok.line
            )
        return self.advance()

    def expect_ident(self) -> Token:
        if self.tok.kind != "ident":
            raise CompileError(
                f"expected identifier, found {self.tok.text!r}", self.tok.line
            )
        return self.advance()

    def expect_int(self) -> int:
        negative = self.accept("-")
        if self.tok.kind != "num":
            raise CompileError(
                f"expected integer literal, found {self.tok.text!r}", self.tok.line
            )
        value = int(self.advance().text)
        return -value if negative else value

    # -- top level -------------------------------------------------------

    def program(self) -> A.Program:
        program = A.Program()
        while self.tok.kind != "eof":
            if self.check("struct"):
                program.structs.append(self.struct_decl())
            elif self.check("int") or self.check("void"):
                # Lookahead: "int name (" is a function, else a global.
                if (
                    self.tokens[self.pos + 1].kind == "ident"
                    and self.tokens[self.pos + 2].text == "("
                ):
                    program.functions.append(self.function())
                elif self.check("void"):
                    program.functions.append(self.function())
                else:
                    program.globals.append(self.global_decl())
            else:
                raise CompileError(
                    f"unexpected token {self.tok.text!r} at top level", self.tok.line
                )
        return program

    def global_decl(self) -> A.GlobalDecl:
        line = self.expect("int").line
        name = self.expect_ident().text
        size: Optional[int] = None
        init = 0
        init_values: Optional[List[int]] = None
        if self.accept("["):
            size = self.expect_int()
            self.expect("]")
        if self.accept("="):
            if self.check("{"):
                if size is None:
                    raise CompileError("initializer list requires an array", line)
                init_values = self.int_list()
            else:
                init = self.expect_int()
        self.expect(";")
        return A.GlobalDecl(
            name, array_size=size, init=init, line=line, init_values=init_values
        )

    def int_list(self) -> List[int]:
        self.expect("{")
        values: List[int] = []
        if not self.check("}"):
            while True:
                values.append(self.expect_int())
                if not self.accept(","):
                    break
        self.expect("}")
        return values

    def struct_decl(self) -> A.StructDecl:
        line = self.expect("struct").line
        name = self.expect_ident().text
        self.expect("{")
        decl = A.StructDecl(name, line=line)
        while not self.accept("}"):
            self.expect("int")
            decl.fields.append(self.expect_ident().text)
            decl.inits.append(self.expect_int() if self.accept("=") else 0)
            self.expect(";")
        self.expect(";")
        if not decl.fields:
            raise CompileError(f"struct {name} has no fields", line)
        return decl

    def function(self) -> A.FunctionDecl:
        line = self.advance().line  # int | void
        name = self.expect_ident().text
        self.expect("(")
        params: List[str] = []
        if not self.check(")"):
            while True:
                if not (self.accept("int") or self.accept("void")):
                    raise CompileError("expected parameter type", self.tok.line)
                self.accept("*")  # pointer params are untyped registers
                params.append(self.expect_ident().text)
                if not self.accept(","):
                    break
        self.expect(")")
        body = self.block()
        return A.FunctionDecl(name, params, body, line=line)

    # -- statements -----------------------------------------------------------

    def block(self) -> List[A.Stmt]:
        self.expect("{")
        body: List[A.Stmt] = []
        while not self.accept("}"):
            body.append(self.statement())
        return body

    def statement_or_block(self) -> List[A.Stmt]:
        if self.check("{"):
            return self.block()
        return [self.statement()]

    def statement(self) -> A.Stmt:
        self._descend()
        try:
            return self._statement()
        finally:
            self.depth -= 1

    def _statement(self) -> A.Stmt:
        tok = self.tok
        if self.check("int"):
            return self.local_decl()
        if self.check("if"):
            return self.if_stmt()
        if self.check("while"):
            return self.while_stmt()
        if self.check("do"):
            return self.do_while_stmt()
        if self.check("for"):
            return self.for_stmt()
        if self.accept("return"):
            value = None if self.check(";") else self.expression()
            self.expect(";")
            return A.Return(line=tok.line, value=value)
        if self.accept("break"):
            self.expect(";")
            return A.Break(line=tok.line)
        if self.accept("continue"):
            self.expect(";")
            return A.Continue(line=tok.line)
        if self.accept("print"):
            self.expect("(")
            args = self.call_args()
            self.expect(";")
            return A.PrintStmt(line=tok.line, args=args)
        return self.simple_statement()

    def local_decl(self) -> A.LocalDecl:
        line = self.expect("int").line
        is_pointer = self.accept("*")
        name = self.expect_ident().text
        size: Optional[int] = None
        if self.accept("["):
            size = self.expect_int()
            self.expect("]")
        init = None
        init_values: Optional[List[int]] = None
        if self.accept("="):
            if self.check("{"):
                if size is None:
                    raise CompileError("initializer list requires an array", line)
                init_values = self.int_list()
            else:
                init = self.expression()
        self.expect(";")
        if is_pointer and size is not None:
            raise CompileError("pointer arrays are not supported", line)
        return A.LocalDecl(
            line=line,
            name=name,
            is_pointer=is_pointer,
            array_size=size,
            init=init,
            init_values=init_values,
        )

    def simple_statement(self, need_semi: bool = True) -> A.Stmt:
        """Assignment, increment, or expression statement."""
        line = self.tok.line
        target = self.expression()
        stmt: A.Stmt
        if self.tok.text in _ASSIGN_OPS and self.tok.kind == "op":
            op = self.advance().text
            value = self.expression()
            _require_lvalue(target, line)
            stmt = A.Assign(
                line=line, target=target, op="" if op == "=" else op[:-1], value=value
            )
        elif self.check("++") or self.check("--"):
            op = self.advance().text
            _require_lvalue(target, line)
            stmt = A.IncDec(line=line, target=target, op=op)
        else:
            stmt = A.ExprStmt(line=line, expr=target)
        if need_semi:
            self.expect(";")
        return stmt

    def if_stmt(self) -> A.If:
        line = self.expect("if").line
        self.expect("(")
        cond = self.expression()
        self.expect(")")
        then_body = self.statement_or_block()
        else_body: List[A.Stmt] = []
        if self.accept("else"):
            else_body = self.statement_or_block()
        return A.If(line=line, cond=cond, then_body=then_body, else_body=else_body)

    def while_stmt(self) -> A.While:
        line = self.expect("while").line
        self.expect("(")
        cond = self.expression()
        self.expect(")")
        return A.While(line=line, cond=cond, body=self.statement_or_block())

    def do_while_stmt(self) -> A.DoWhile:
        line = self.expect("do").line
        body = self.statement_or_block()
        self.expect("while")
        self.expect("(")
        cond = self.expression()
        self.expect(")")
        self.expect(";")
        return A.DoWhile(line=line, cond=cond, body=body)

    def for_stmt(self) -> A.For:
        line = self.expect("for").line
        self.expect("(")
        init: Optional[A.Stmt] = None
        if not self.check(";"):
            if self.check("int"):
                init = self.local_decl()  # consumes its ';'
            else:
                init = self.simple_statement(need_semi=True)
        else:
            self.expect(";")
        cond = None if self.check(";") else self.expression()
        self.expect(";")
        step = None if self.check(")") else self.simple_statement(need_semi=False)
        self.expect(")")
        return A.For(
            line=line, init=init, cond=cond, step=step, body=self.statement_or_block()
        )

    # -- expressions ------------------------------------------------------

    def expression(self) -> A.Expr:
        self._descend()
        try:
            return self._binary(0)
        finally:
            self.depth -= 1

    def _binary(self, level: int) -> A.Expr:
        if level >= len(_BINARY_LEVELS):
            return self.unary()
        lhs = self._binary(level + 1)
        while self.tok.kind == "op" and self.tok.text in _BINARY_LEVELS[level]:
            op = self.advance()
            rhs = self._binary(level + 1)
            if op.text in ("&&", "||"):
                lhs = A.ShortCircuit(line=op.line, op=op.text, lhs=lhs, rhs=rhs)
            else:
                lhs = A.Binary(line=op.line, op=_OP_NAMES[op.text], lhs=lhs, rhs=rhs)
        return lhs

    def unary(self) -> A.Expr:
        # Unary chains recurse without passing through expression(), so
        # they carry their own depth guard.
        self._descend()
        try:
            return self._unary()
        finally:
            self.depth -= 1

    def _unary(self) -> A.Expr:
        tok = self.tok
        if self.accept("-"):
            return A.Unary(line=tok.line, op="neg", operand=self.unary())
        if self.accept("!"):
            return A.Unary(line=tok.line, op="not", operand=self.unary())
        if self.accept("~"):
            return A.Unary(line=tok.line, op="bnot", operand=self.unary())
        if self.accept("*"):
            return A.Deref(line=tok.line, ptr=self.unary())
        if self.accept("&"):
            target = self.unary()
            if not isinstance(target, (A.Name, A.FieldRef, A.Index)):
                raise CompileError("& requires a variable, field, or element", tok.line)
            return A.AddrOfExpr(line=tok.line, target=target)
        return self.primary()

    def primary(self) -> A.Expr:
        tok = self.tok
        if tok.kind == "num":
            self.advance()
            return A.IntLit(line=tok.line, value=int(tok.text))
        if self.accept("("):
            inner = self.expression()
            self.expect(")")
            return inner
        if tok.kind == "ident":
            name = self.advance().text
            if self.accept("("):
                return A.CallExpr(line=tok.line, callee=name, args=self.call_args())
            if self.accept("["):
                index = self.expression()
                self.expect("]")
                return A.Index(line=tok.line, array=name, index=index)
            if self.accept("."):
                field_name = self.expect_ident().text
                return A.FieldRef(line=tok.line, struct=name, field_name=field_name)
            return A.Name(line=tok.line, ident=name)
        raise CompileError(f"unexpected token {tok.text!r} in expression", tok.line)

    def call_args(self) -> List[A.Expr]:
        args: List[A.Expr] = []
        if not self.check(")"):
            while True:
                args.append(self.expression())
                if not self.accept(","):
                    break
        self.expect(")")
        return args


def _require_lvalue(node: A.Expr, line: int) -> None:
    if not isinstance(node, (A.Name, A.FieldRef, A.Index, A.Deref)):
        raise CompileError("assignment target is not an lvalue", line)
