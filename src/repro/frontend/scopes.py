"""Block-scope resolution by alpha-renaming.

Mini-C has C block scoping, but the lowerer flattens locals to one frame
per function.  This pre-pass walks each function's scope tree and renames
shadowing or reused declarations to unique internal names (``i``,
``i.2``, ``i.3`` …), rewriting every reference, so that downstream phases
can treat local names as function-unique.  Genuine same-scope duplicates
are rejected here.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.frontend import cast as A
from repro.frontend.errors import CompileError


def resolve_scopes(program: A.Program) -> None:
    global_names = {g.name for g in program.globals}
    for function in program.functions:
        _Renamer(function, global_names).run()


class _Renamer:
    def __init__(self, function: A.FunctionDecl, global_names: Set[str]) -> None:
        self.function = function
        self.global_names = global_names
        #: Stack of scopes: source name -> unique name.
        self.scopes: List[Dict[str, str]] = []
        self.used: Set[str] = set(function.params) | set(global_names)
        self.counter: Dict[str, int] = {}

    def run(self) -> None:
        # Parameters share the outermost block's scope (as in C, where
        # redeclaring a parameter at function top level is an error).
        self.push()
        for name in self.function.params:
            self.scopes[-1][name] = name
        for stmt in self.function.body:
            self.stmt(stmt)
        self.pop()

    # -- scope bookkeeping -------------------------------------------------

    def push(self) -> None:
        self.scopes.append({})

    def pop(self) -> None:
        self.scopes.pop()

    def declare(self, decl: A.LocalDecl) -> None:
        if decl.name in self.scopes[-1]:
            raise CompileError(f"duplicate local {decl.name}", decl.line)
        unique = decl.name
        if unique in self.used:
            self.counter[decl.name] = self.counter.get(decl.name, 1) + 1
            unique = f"{decl.name}.{self.counter[decl.name]}"
        self.used.add(unique)
        self.scopes[-1][decl.name] = unique
        decl.name = unique

    def lookup(self, name: str) -> Optional[str]:
        for scope in reversed(self.scopes):
            if name in scope:
                return scope[name]
        return None

    # -- walking -----------------------------------------------------------

    def body(self, stmts: List[A.Stmt]) -> None:
        self.push()
        for stmt in stmts:
            self.stmt(stmt)
        self.pop()

    def stmt(self, stmt: A.Stmt) -> None:
        if isinstance(stmt, A.LocalDecl):
            if stmt.init is not None:
                self.expr(stmt.init)  # initializer sees the outer binding
            self.declare(stmt)
        elif isinstance(stmt, A.Assign):
            self.expr(stmt.target)
            self.expr(stmt.value)
        elif isinstance(stmt, A.IncDec):
            self.expr(stmt.target)
        elif isinstance(stmt, A.ExprStmt):
            self.expr(stmt.expr)
        elif isinstance(stmt, A.PrintStmt):
            for arg in stmt.args:
                self.expr(arg)
        elif isinstance(stmt, A.If):
            self.expr(stmt.cond)
            self.body(stmt.then_body)
            self.body(stmt.else_body)
        elif isinstance(stmt, (A.While, A.DoWhile)):
            self.expr(stmt.cond)
            self.body(stmt.body)
        elif isinstance(stmt, A.For):
            # The init declaration scopes over cond, step, and body.
            self.push()
            if stmt.init is not None:
                self.stmt(stmt.init)
            if stmt.cond is not None:
                self.expr(stmt.cond)
            if stmt.step is not None:
                self.stmt(stmt.step)
            self.body(stmt.body)
            self.pop()
        elif isinstance(stmt, A.Return):
            if stmt.value is not None:
                self.expr(stmt.value)
        # Break/Continue carry no names.

    def expr(self, node: Optional[A.Expr]) -> None:
        if node is None:
            return
        if isinstance(node, A.Name):
            unique = self.lookup(node.ident)
            if unique is not None:
                node.ident = unique
        elif isinstance(node, A.Index):
            unique = self.lookup(node.array)
            if unique is not None:
                node.array = unique
            self.expr(node.index)
        elif isinstance(node, A.Deref):
            self.expr(node.ptr)
        elif isinstance(node, A.AddrOfExpr):
            self.expr(node.target)
        elif isinstance(node, A.Unary):
            self.expr(node.operand)
        elif isinstance(node, (A.Binary, A.ShortCircuit)):
            self.expr(node.lhs)
            self.expr(node.rhs)
        elif isinstance(node, A.CallExpr):
            for arg in node.args:
                self.expr(arg)
        # IntLit and FieldRef (always global) carry no local names.
