"""Semantic analysis for mini-C.

Builds the program's symbol tables and checks the rules the lowerer
relies on:

* no duplicate globals, struct names, fields, functions, params, locals;
* every referenced name resolves (locals/params shadow globals);
* array subscripts only on arrays; bare references only on scalars;
* ``&`` targets scalars, fields, or array elements — never pointers;
* calls name a declared function with the right arity;
* ``break``/``continue`` appear inside loops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.frontend import cast as A
from repro.frontend.errors import CompileError


@dataclass
class FunctionInfo:
    decl: A.FunctionDecl
    params: List[str] = field(default_factory=list)
    #: Local name -> its declaration (pointers, arrays, scalars).
    locals: Dict[str, A.LocalDecl] = field(default_factory=dict)


@dataclass
class SemaInfo:
    globals: Dict[str, A.GlobalDecl] = field(default_factory=dict)
    structs: Dict[str, A.StructDecl] = field(default_factory=dict)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)

    def is_global_array(self, name: str) -> bool:
        decl = self.globals.get(name)
        return decl is not None and decl.array_size is not None


def analyze(program: A.Program) -> SemaInfo:
    from repro.frontend.scopes import resolve_scopes

    resolve_scopes(program)
    info = SemaInfo()
    for decl in program.globals:
        if decl.name in info.globals or decl.name in info.structs:
            raise CompileError(f"duplicate global {decl.name}", decl.line)
        _check_init_values(decl.init_values, decl.array_size, decl.line)
        info.globals[decl.name] = decl
    for struct in program.structs:
        if struct.name in info.structs or struct.name in info.globals:
            raise CompileError(f"duplicate struct {struct.name}", struct.line)
        if len(set(struct.fields)) != len(struct.fields):
            raise CompileError(f"duplicate field in struct {struct.name}", struct.line)
        info.structs[struct.name] = struct
    for function in program.functions:
        if function.name in info.functions:
            raise CompileError(f"duplicate function {function.name}", function.line)
        if len(set(function.params)) != len(function.params):
            raise CompileError(f"duplicate parameter in {function.name}", function.line)
        info.functions[function.name] = FunctionInfo(function, list(function.params))

    for finfo in info.functions.values():
        _check_function(info, finfo)
    return info


def _check_init_values(values, size, line) -> None:
    if values is None:
        return
    if size is None:
        raise CompileError("initializer list requires an array", line)
    if len(values) > size:
        raise CompileError(f"{len(values)} initializers for an array of {size}", line)


def _check_function(info: SemaInfo, finfo: FunctionInfo) -> None:
    _collect_locals(info, finfo, finfo.decl.body)
    _check_body(info, finfo, finfo.decl.body, in_loop=False)


def _collect_locals(info: SemaInfo, finfo: FunctionInfo, body: List[A.Stmt]) -> None:
    for stmt in body:
        if isinstance(stmt, A.LocalDecl):
            if stmt.name in finfo.locals or stmt.name in finfo.params:
                raise CompileError(f"duplicate local {stmt.name}", stmt.line)
            finfo.locals[stmt.name] = stmt
        elif isinstance(stmt, A.If):
            _collect_locals(info, finfo, stmt.then_body)
            _collect_locals(info, finfo, stmt.else_body)
        elif isinstance(stmt, (A.While, A.DoWhile)):
            _collect_locals(info, finfo, stmt.body)
        elif isinstance(stmt, A.For):
            if stmt.init is not None:
                _collect_locals(info, finfo, [stmt.init])
            _collect_locals(info, finfo, stmt.body)


def _check_body(
    info: SemaInfo, finfo: FunctionInfo, body: List[A.Stmt], in_loop: bool
) -> None:
    for stmt in body:
        _check_stmt(info, finfo, stmt, in_loop)


def _check_stmt(
    info: SemaInfo, finfo: FunctionInfo, stmt: A.Stmt, in_loop: bool
) -> None:
    if isinstance(stmt, A.LocalDecl):
        _check_init_values(stmt.init_values, stmt.array_size, stmt.line)
        if stmt.init is not None:
            _check_expr(info, finfo, stmt.init)
    elif isinstance(stmt, A.Assign):
        _check_lvalue(info, finfo, stmt.target)
        _check_expr(info, finfo, stmt.value)
    elif isinstance(stmt, A.IncDec):
        _check_lvalue(info, finfo, stmt.target)
    elif isinstance(stmt, A.ExprStmt):
        _check_expr(info, finfo, stmt.expr)
    elif isinstance(stmt, A.PrintStmt):
        for arg in stmt.args:
            _check_expr(info, finfo, arg)
    elif isinstance(stmt, A.If):
        _check_expr(info, finfo, stmt.cond)
        _check_body(info, finfo, stmt.then_body, in_loop)
        _check_body(info, finfo, stmt.else_body, in_loop)
    elif isinstance(stmt, (A.While, A.DoWhile)):
        _check_expr(info, finfo, stmt.cond)
        _check_body(info, finfo, stmt.body, in_loop=True)
    elif isinstance(stmt, A.For):
        if stmt.init is not None:
            _check_stmt(info, finfo, stmt.init, in_loop)
        if stmt.cond is not None:
            _check_expr(info, finfo, stmt.cond)
        if stmt.step is not None:
            _check_stmt(info, finfo, stmt.step, in_loop=True)
        _check_body(info, finfo, stmt.body, in_loop=True)
    elif isinstance(stmt, (A.Break, A.Continue)):
        if not in_loop:
            kind = "break" if isinstance(stmt, A.Break) else "continue"
            raise CompileError(f"{kind} outside a loop", stmt.line)
    elif isinstance(stmt, A.Return):
        if stmt.value is not None:
            _check_expr(info, finfo, stmt.value)
    else:  # pragma: no cover - parser produces no other nodes
        raise CompileError(f"unknown statement {type(stmt).__name__}", stmt.line)


def _is_local_array(finfo: FunctionInfo, name: str) -> bool:
    decl = finfo.locals.get(name)
    return decl is not None and decl.array_size is not None


def _is_pointer_local(finfo: FunctionInfo, name: str) -> bool:
    decl = finfo.locals.get(name)
    return decl is not None and decl.is_pointer


def _check_lvalue(info: SemaInfo, finfo: FunctionInfo, node: Optional[A.Expr]) -> None:
    assert node is not None
    if isinstance(node, A.Name):
        _resolve_scalar(info, finfo, node)
    elif isinstance(node, A.FieldRef):
        _resolve_field(info, node)
    elif isinstance(node, A.Index):
        _resolve_array(info, finfo, node)
        _check_expr(info, finfo, node.index)
    elif isinstance(node, A.Deref):
        _check_expr(info, finfo, node.ptr)
    else:
        raise CompileError("not an assignable location", node.line)


def _check_expr(info: SemaInfo, finfo: FunctionInfo, node: Optional[A.Expr]) -> None:
    assert node is not None
    if isinstance(node, A.IntLit):
        return
    if isinstance(node, A.Name):
        _resolve_scalar(info, finfo, node)
    elif isinstance(node, A.FieldRef):
        _resolve_field(info, node)
    elif isinstance(node, A.Index):
        _resolve_array(info, finfo, node)
        _check_expr(info, finfo, node.index)
    elif isinstance(node, A.Deref):
        _check_expr(info, finfo, node.ptr)
    elif isinstance(node, A.AddrOfExpr):
        target = node.target
        if isinstance(target, A.Name):
            if _is_pointer_local(finfo, target.ident):
                raise CompileError("cannot take the address of a pointer", node.line)
            _resolve_scalar(info, finfo, target)
        elif isinstance(target, A.FieldRef):
            _resolve_field(info, target)
        elif isinstance(target, A.Index):
            _resolve_array(info, finfo, target)
            _check_expr(info, finfo, target.index)
        else:  # pragma: no cover - parser enforces this
            raise CompileError("bad & target", node.line)
    elif isinstance(node, A.Unary):
        _check_expr(info, finfo, node.operand)
    elif isinstance(node, (A.Binary, A.ShortCircuit)):
        _check_expr(info, finfo, node.lhs)
        _check_expr(info, finfo, node.rhs)
    elif isinstance(node, A.CallExpr):
        callee = info.functions.get(node.callee)
        if callee is None:
            raise CompileError(f"call to undeclared function {node.callee}", node.line)
        if len(node.args) != len(callee.params):
            raise CompileError(
                f"{node.callee} expects {len(callee.params)} arguments, "
                f"got {len(node.args)}",
                node.line,
            )
        for arg in node.args:
            _check_expr(info, finfo, arg)
    else:  # pragma: no cover
        raise CompileError(f"unknown expression {type(node).__name__}", node.line)


def _resolve_scalar(info: SemaInfo, finfo: FunctionInfo, node: A.Name) -> None:
    name = node.ident
    if name in finfo.params:
        return
    if name in finfo.locals:
        if _is_local_array(finfo, name):
            raise CompileError(f"array {name} used without subscript", node.line)
        return
    decl = info.globals.get(name)
    if decl is not None:
        if decl.array_size is not None:
            raise CompileError(f"array {name} used without subscript", node.line)
        return
    raise CompileError(f"undeclared variable {name}", node.line)


def _resolve_field(info: SemaInfo, node: A.FieldRef) -> None:
    struct = info.structs.get(node.struct)
    if struct is None:
        raise CompileError(f"unknown struct {node.struct}", node.line)
    if node.field_name not in struct.fields:
        raise CompileError(
            f"struct {node.struct} has no field {node.field_name}", node.line
        )


def _resolve_array(info: SemaInfo, finfo: FunctionInfo, node: A.Index) -> None:
    if _is_local_array(finfo, node.array):
        return
    if info.is_global_array(node.array):
        return
    raise CompileError(f"{node.array} is not an array", node.line)
