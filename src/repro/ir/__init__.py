"""Compiler intermediate representation.

A conventional CFG-of-basic-blocks IR with virtual registers, explicit phi
instructions, and memory-resource-tagged memory operations, sufficient to
express every program the paper manipulates (Figures 1 and 7-10) and the
SPECInt95-proxy workloads.
"""

from repro.ir.basicblock import BasicBlock
from repro.ir.builder import IRBuilder
from repro.ir.function import Function
from repro.ir.instructions import (
    AddrOf,
    ArrayLoad,
    ArrayStore,
    BinOp,
    Call,
    CondBr,
    Copy,
    DummyAliasedLoad,
    Elem,
    Instruction,
    Jump,
    Load,
    MemPhi,
    Phi,
    Print,
    PtrLoad,
    PtrStore,
    Ret,
    Store,
    UnOp,
)
from repro.ir.module import Module
from repro.ir.printer import print_function, print_module
from repro.ir.values import Const, Undef, Value, VReg
from repro.ir.verify import VerificationError, verify_function, verify_module

__all__ = [
    "AddrOf",
    "ArrayLoad",
    "ArrayStore",
    "BasicBlock",
    "BinOp",
    "Call",
    "CondBr",
    "Const",
    "Copy",
    "DummyAliasedLoad",
    "Elem",
    "Function",
    "IRBuilder",
    "Instruction",
    "Jump",
    "Load",
    "MemPhi",
    "Module",
    "Phi",
    "Print",
    "PtrLoad",
    "PtrStore",
    "Ret",
    "Store",
    "UnOp",
    "Undef",
    "VReg",
    "Value",
    "VerificationError",
    "print_function",
    "print_module",
    "verify_function",
    "verify_module",
]
