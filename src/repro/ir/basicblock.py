"""Basic blocks.

A block owns an ordered instruction list: zero or more phi/memphi
instructions first, then ordinary instructions, then exactly one
terminator.  Successors are derived from the terminator; predecessor lists
are maintained eagerly by the mutation API (``set_terminator`` and the
function-level block editing helpers), which every pass must use.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, List, Optional

from repro.ir.instructions import Instruction, MemPhi, Phi

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.function import Function


class BasicBlock:
    def __init__(self, name: str, function: Optional["Function"] = None) -> None:
        self.name = name
        self.function = function
        self.instructions: List[Instruction] = []
        #: Predecessor blocks, in deterministic insertion order.
        self.preds: List["BasicBlock"] = []

    # -- structure -------------------------------------------------------

    @property
    def terminator(self) -> Optional[Instruction]:
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    @property
    def succs(self) -> List["BasicBlock"]:
        term = self.terminator
        if term is None:
            return []
        # Deduplicate while preserving order (a condbr may target one block
        # on both edges).
        seen = []
        for target in term.targets:
            if target not in seen:
                seen.append(target)
        return seen

    def phis(self) -> Iterator[Phi]:
        for inst in self.instructions:
            if not inst.is_phi:
                break
            if isinstance(inst, Phi):
                yield inst

    def mem_phis(self) -> Iterator[MemPhi]:
        for inst in self.instructions:
            if not inst.is_phi:
                break
            if isinstance(inst, MemPhi):
                yield inst

    def all_phis(self) -> Iterator[Instruction]:
        """All leading phi instructions (register phis and memory phis)."""
        for inst in self.instructions:
            if inst.is_phi:
                yield inst
            else:
                break

    def first_non_phi_index(self) -> int:
        for i, inst in enumerate(self.instructions):
            if not inst.is_phi:
                return i
        return len(self.instructions)

    # -- mutation ----------------------------------------------------------

    def append(self, inst: Instruction) -> Instruction:
        """Append ``inst``; if it is a terminator, wire successor preds."""
        if self.terminator is not None:
            raise ValueError(f"block {self.name} already has a terminator")
        self.instructions.append(inst)
        inst.block = self
        if inst.is_terminator:
            for succ in _unique(inst.targets):
                if self not in succ.preds:
                    succ.preds.append(self)
        return inst

    def insert_before(self, inst: Instruction, before: Instruction) -> Instruction:
        """Insert non-terminator ``inst`` immediately before ``before``."""
        if inst.is_terminator:
            raise ValueError("use set_terminator for terminators")
        index = self.instructions.index(before)
        self.instructions.insert(index, inst)
        inst.block = self
        return inst

    def insert_after(self, inst: Instruction, after: Instruction) -> Instruction:
        """Insert non-terminator ``inst`` immediately after ``after``."""
        if inst.is_terminator:
            raise ValueError("use set_terminator for terminators")
        index = self.instructions.index(after)
        self.instructions.insert(index + 1, inst)
        inst.block = self
        return inst

    def insert_at_front(self, inst: Instruction) -> Instruction:
        """Insert after any leading phis (or at index 0 for a phi)."""
        index = 0 if inst.is_phi else self.first_non_phi_index()
        self.instructions.insert(index, inst)
        inst.block = self
        return inst

    def insert_before_terminator(self, inst: Instruction) -> Instruction:
        term = self.terminator
        if term is None:
            return self.append(inst)
        return self.insert_before(inst, term)

    def set_terminator(self, inst: Instruction) -> Instruction:
        """Replace the terminator, keeping successor pred lists correct."""
        if not inst.is_terminator:
            raise ValueError("set_terminator requires a terminator")
        old = self.terminator
        if old is not None:
            for succ in _unique(old.targets):
                if self in succ.preds:
                    succ.preds.remove(self)
            self.instructions.pop()
            old.block = None
        self.instructions.append(inst)
        inst.block = self
        for succ in _unique(inst.targets):
            if self not in succ.preds:
                succ.preds.append(self)
        return inst

    def retarget(self, old_succ: "BasicBlock", new_succ: "BasicBlock") -> None:
        """Redirect every terminator edge ``self -> old_succ`` to
        ``new_succ``, updating pred lists (but not phis — callers that
        retarget edges into blocks with phis must fix those up)."""
        term = self.terminator
        if term is None:
            raise ValueError(f"block {self.name} has no terminator")
        term.targets = [new_succ if t is old_succ else t for t in term.targets]
        if self in old_succ.preds:
            old_succ.preds.remove(self)
        if self not in new_succ.preds:
            new_succ.preds.append(self)

    def __repr__(self) -> str:
        return f"BasicBlock({self.name})"

    def __str__(self) -> str:
        return self.name


def _unique(blocks: List["BasicBlock"]) -> List["BasicBlock"]:
    seen: List["BasicBlock"] = []
    for b in blocks:
        if b not in seen:
            seen.append(b)
    return seen
