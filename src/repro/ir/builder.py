"""A convenience builder for constructing IR by hand.

Used by tests, the examples, and the mini-C lowering pass.  All
instruction-creating methods append at the current insertion point (the
end of the current block, before nothing — blocks must not yet be
terminated).
"""

from __future__ import annotations

from typing import Optional, Sequence, Union

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.instructions import (
    AddrOf,
    ArrayLoad,
    ArrayStore,
    BinOp,
    Call,
    CondBr,
    Copy,
    Elem,
    Jump,
    Load,
    Phi,
    Print,
    PtrLoad,
    PtrStore,
    Ret,
    Store,
    UnOp,
)
from repro.ir.values import Const, Value, VReg
from repro.memory.resources import MemoryVar

ValueLike = Union[Value, int]


def as_value(v: ValueLike) -> Value:
    return Const(v) if isinstance(v, int) else v


class IRBuilder:
    def __init__(self, function: Function, block: Optional[BasicBlock] = None) -> None:
        self.function = function
        self.block: Optional[BasicBlock] = block

    def at(self, block: BasicBlock) -> "IRBuilder":
        """Move the insertion point to the end of ``block``."""
        self.block = block
        return self

    def new_block(self, hint: str = "b") -> BasicBlock:
        return self.function.new_block(hint)

    # -- computation -------------------------------------------------------

    def _emit(self, inst):
        assert self.block is not None, "no insertion block set"
        return self.block.append(inst)

    def binop(self, op: str, lhs: ValueLike, rhs: ValueLike, hint: str = "t") -> VReg:
        dst = self.function.new_reg(hint)
        self._emit(BinOp(dst, op, as_value(lhs), as_value(rhs)))
        return dst

    def add(self, lhs: ValueLike, rhs: ValueLike) -> VReg:
        return self.binop("add", lhs, rhs)

    def sub(self, lhs: ValueLike, rhs: ValueLike) -> VReg:
        return self.binop("sub", lhs, rhs)

    def mul(self, lhs: ValueLike, rhs: ValueLike) -> VReg:
        return self.binop("mul", lhs, rhs)

    def div(self, lhs: ValueLike, rhs: ValueLike) -> VReg:
        return self.binop("div", lhs, rhs)

    def lt(self, lhs: ValueLike, rhs: ValueLike) -> VReg:
        return self.binop("lt", lhs, rhs)

    def le(self, lhs: ValueLike, rhs: ValueLike) -> VReg:
        return self.binop("le", lhs, rhs)

    def eq(self, lhs: ValueLike, rhs: ValueLike) -> VReg:
        return self.binop("eq", lhs, rhs)

    def ne(self, lhs: ValueLike, rhs: ValueLike) -> VReg:
        return self.binop("ne", lhs, rhs)

    def unop(self, op: str, src: ValueLike) -> VReg:
        dst = self.function.new_reg()
        self._emit(UnOp(dst, op, as_value(src)))
        return dst

    def copy(self, src: ValueLike, hint: str = "t") -> VReg:
        dst = self.function.new_reg(hint)
        self._emit(Copy(dst, as_value(src)))
        return dst

    def phi(self, incoming: Sequence, hint: str = "t") -> VReg:
        """``incoming`` is a sequence of (block, value-like) pairs.

        Phis are placed at the front of the current block.
        """
        assert self.block is not None
        dst = self.function.new_reg(hint)
        inst = Phi(dst, [(b, as_value(v)) for b, v in incoming])
        self.block.insert_at_front(inst)
        return dst

    # -- memory --------------------------------------------------------------

    def load(self, var: MemoryVar, hint: str = "t") -> VReg:
        dst = self.function.new_reg(hint)
        self._emit(Load(dst, var))
        return dst

    def store(self, var: MemoryVar, value: ValueLike) -> Store:
        return self._emit(Store(var, as_value(value)))

    def addr_of(self, var: MemoryVar) -> VReg:
        dst = self.function.new_reg("p")
        self._emit(AddrOf(dst, var))
        return dst

    def elem(self, array: MemoryVar, index: ValueLike) -> VReg:
        dst = self.function.new_reg("p")
        self._emit(Elem(dst, array, as_value(index)))
        return dst

    def ptr_load(self, ptr: ValueLike, hint: str = "t") -> VReg:
        dst = self.function.new_reg(hint)
        self._emit(PtrLoad(dst, as_value(ptr)))
        return dst

    def ptr_store(self, ptr: ValueLike, value: ValueLike) -> PtrStore:
        return self._emit(PtrStore(as_value(ptr), as_value(value)))

    def array_load(self, array: MemoryVar, index: ValueLike, hint: str = "t") -> VReg:
        dst = self.function.new_reg(hint)
        self._emit(ArrayLoad(dst, array, as_value(index)))
        return dst

    def array_store(
        self, array: MemoryVar, index: ValueLike, value: ValueLike
    ) -> ArrayStore:
        return self._emit(ArrayStore(array, as_value(index), as_value(value)))

    def call(
        self, callee: str, args: Sequence[ValueLike] = (), want_value: bool = True
    ) -> Optional[VReg]:
        dst = self.function.new_reg("r") if want_value else None
        self._emit(Call(dst, callee, [as_value(a) for a in args]))
        return dst

    def print_(self, *values: ValueLike) -> Print:
        return self._emit(Print([as_value(v) for v in values]))

    # -- control flow ---------------------------------------------------------

    def jump(self, target: BasicBlock) -> Jump:
        assert self.block is not None
        return self.block.set_terminator(Jump(target))

    def cond_br(
        self, cond: ValueLike, if_true: BasicBlock, if_false: BasicBlock
    ) -> CondBr:
        assert self.block is not None
        return self.block.set_terminator(CondBr(as_value(cond), if_true, if_false))

    def ret(self, value: Optional[ValueLike] = None) -> Ret:
        assert self.block is not None
        v = None if value is None else as_value(value)
        return self.block.set_terminator(Ret(v))
