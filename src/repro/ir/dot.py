"""Graphviz (DOT) export of functions and their analyses.

Debugging aid: render the CFG with instruction bodies, optionally
overlaying loop nesting (cluster per interval) and block frequencies.

::

    from repro.ir.dot import function_to_dot
    print(function_to_dot(func, profile=profile))
    # dot -Tpdf out.dot -o out.pdf
"""

from __future__ import annotations

from typing import List, Optional

from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.printer import format_instruction


def _escape(text: str) -> str:
    return (
        text.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("<", "\\<")
        .replace(">", "\\>")
        .replace("{", "\\{")
        .replace("}", "\\}")
        .replace("|", "\\|")
    )


def _block_label(block: BasicBlock, freq: Optional[int]) -> str:
    header = block.name if freq is None else f"{block.name}  (freq {freq})"
    lines = [header] + [
        _escape(format_instruction(inst, with_mem=True)) for inst in block.instructions
    ]
    return "\\l".join(lines) + "\\l"


def function_to_dot(
    function: Function,
    profile=None,
    intervals=None,
) -> str:
    """DOT source for ``function``'s CFG.

    ``profile`` (a :class:`repro.profile.profiles.ProfileData`) annotates
    blocks with frequencies; ``intervals`` (an
    :class:`repro.analysis.intervals.IntervalTree`) draws one cluster per
    loop.
    """
    lines: List[str] = [
        f'digraph "{function.name}" {{',
        '  node [shape=record, fontname="monospace", fontsize=9];',
    ]

    emitted: set = set()

    def emit_block(block: BasicBlock, indent: str) -> None:
        freq = profile.freq(block) if profile is not None else None
        lines.append(f'{indent}"{block.name}" [label="{_block_label(block, freq)}"];')
        emitted.add(id(block))

    if intervals is not None:
        def emit_interval(interval, depth: int) -> None:
            indent = "  " * (depth + 1)
            lines.append(f'{indent}subgraph "cluster_{interval.header.name}" {{')
            lines.append(
                f'{indent}  label="interval @{interval.header.name} '
                f'(depth {interval.depth})";'
            )
            own = {id(b) for b in interval.blocks}
            for child in interval.children:
                own -= {id(b) for b in child.blocks}
                emit_interval(child, depth + 1)
            for block in interval.blocks:
                if id(block) in own and id(block) not in emitted:
                    emit_block(block, indent + "  ")
            lines.append(f"{indent}}}")

        for top in intervals.root.children:
            emit_interval(top, 0)

    for block in function.blocks:
        if id(block) not in emitted:
            emit_block(block, "  ")

    for block in function.blocks:
        for succ in block.succs:
            style = ""
            if intervals is not None:
                inner = intervals.innermost(succ)
                if (
                    not inner.is_root
                    and succ in inner.entries
                    and inner.contains(block)
                ):
                    style = ' [style=dashed, label="back"]'
            lines.append(f'  "{block.name}" -> "{succ.name}"{style};')
    lines.append("}")
    return "\n".join(lines) + "\n"


def module_to_dot(module) -> str:
    """One DOT digraph per function, concatenated."""
    return "\n".join(
        function_to_dot(function) for function in module.functions.values()
    )
