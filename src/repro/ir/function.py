"""Functions: ordered CFGs of basic blocks plus naming state."""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, List, Optional

from repro.ir.basicblock import BasicBlock
from repro.ir.instructions import Instruction, MemPhi, Phi
from repro.ir.values import VReg
from repro.memory.resources import MemName, MemoryVar, VarKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.module import Module


class Function:
    """A function: parameter registers, blocks, and local memory variables.

    ``blocks[0]`` is the entry block.  Block order is the textual order and
    is deterministic; analyses that need a traversal order compute their
    own (e.g. reverse postorder).
    """

    def __init__(self, name: str, param_names: Optional[List[str]] = None) -> None:
        self.name = name
        self.module: Optional["Module"] = None
        self.blocks: List[BasicBlock] = []
        self.params: List[VReg] = []
        #: Local memory variables (address-exposed locals, local arrays),
        #: keyed by name.  Storage is per activation.
        self.frame_vars: Dict[str, MemoryVar] = {}
        self._next_reg = 0
        self._next_block = 0
        self._mem_versions: Dict[MemoryVar, int] = {}
        for pname in param_names or []:
            self.params.append(VReg(pname))

    @property
    def entry(self) -> BasicBlock:
        if not self.blocks:
            raise ValueError(f"function {self.name} has no blocks")
        return self.blocks[0]

    # -- naming -----------------------------------------------------------

    def new_reg(self, hint: str = "t") -> VReg:
        """Create a fresh, uniquely named virtual register."""
        self._next_reg += 1
        return VReg(f"{hint}{self._next_reg}")

    def new_block(self, hint: str = "b") -> BasicBlock:
        """Create and append a fresh basic block."""
        self._next_block += 1
        block = BasicBlock(f"{hint}{self._next_block}", self)
        self.blocks.append(block)
        return block

    def add_block(self, name: str) -> BasicBlock:
        """Create and append a block with an exact (unique) name."""
        if any(b.name == name for b in self.blocks):
            raise ValueError(f"duplicate block name {name}")
        block = BasicBlock(name, self)
        self.blocks.append(block)
        return block

    def new_mem_name(
        self, var: MemoryVar, def_inst: Optional[Instruction] = None
    ) -> MemName:
        """Create a fresh SSA name (next version) for ``var``."""
        version = self._mem_versions.get(var, 0) + 1
        self._mem_versions[var] = version
        return MemName(var, version, def_inst)

    def add_frame_var(
        self, name: str, kind: VarKind = VarKind.LOCAL, initial: int = 0, size: int = 1
    ) -> MemoryVar:
        if name in self.frame_vars:
            raise ValueError(f"duplicate frame variable {name}")
        var = MemoryVar(name, kind, initial=initial, size=size)
        self.frame_vars[name] = var
        return var

    # -- traversal ----------------------------------------------------------

    def instructions(self) -> Iterator[Instruction]:
        for block in self.blocks:
            yield from block.instructions

    def remove_block(self, block: BasicBlock) -> None:
        """Remove an unreachable block, cleaning up edges and phi inputs."""
        for succ in block.succs:
            if block in succ.preds:
                succ.preds.remove(block)
            for phi in succ.all_phis():
                if isinstance(phi, (Phi, MemPhi)):
                    phi.remove_incoming(block)
        self.blocks.remove(block)
        block.function = None

    def find_block(self, name: str) -> BasicBlock:
        for block in self.blocks:
            if block.name == name:
                return block
        raise KeyError(f"no block named {name} in {self.name}")

    def __repr__(self) -> str:
        return f"Function({self.name}, {len(self.blocks)} blocks)"
