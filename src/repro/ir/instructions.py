"""The instruction set.

Every instruction may carry, in addition to its register operands:

``mem_uses``
    Memory SSA names this instruction reads (or, for may-defs, whose old
    value it must observe).  Populated by memory-SSA construction
    (:mod:`repro.memory.memssa`); empty before that.

``mem_defs``
    Memory SSA names this instruction defines.

The paper distinguishes *singleton* references (``Load``/``Store``) from
*aliased* references (calls, pointer loads/stores).  Aliased references are
recognized via :attr:`Instruction.is_aliased_mem_op`.  Following HSSA-style
chi semantics — and slightly more conservatively than the paper, which
treats a pointer store as a pure definition — every may-def also carries a
``mem_uses`` entry for the incoming name of each may-defined variable, so
that partial promotion always flushes the register to memory before an
instruction that may (but need not) overwrite the location.  See DESIGN.md.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence, Tuple, Union

from repro.ir.values import Value, VReg
from repro.memory.resources import MemName, MemoryVar

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.basicblock import BasicBlock

#: Binary operators with C-like semantics (division truncates toward zero;
#: division/remainder by zero yield 0 so that program semantics stay total,
#: which property-based tests rely on).
# fmt: off
BINARY_OPS = (
    "add", "sub", "mul", "div", "rem",
    "and", "or", "xor", "shl", "shr",
    "lt", "le", "gt", "ge", "eq", "ne",
)
# fmt: on

UNARY_OPS = ("neg", "not", "bnot")


class Instruction:
    """Base class for all instructions."""

    #: Subclasses that terminate a basic block set this to True.
    is_terminator = False

    def __init__(self) -> None:
        #: Owning block; set when the instruction is inserted.
        self.block: Optional["BasicBlock"] = None
        #: Register operands, in a fixed per-class order.
        self.operands: List[Value] = []
        #: Defined virtual register, if any.
        self.dst: Optional[VReg] = None
        #: Memory SSA names read (filled in by memory-SSA construction).
        self.mem_uses: List[MemName] = []
        #: Memory SSA names defined.
        self.mem_defs: List[MemName] = []

    # -- classification -------------------------------------------------

    @property
    def is_aliased_mem_op(self) -> bool:
        """True for calls and pointer references: the paper's *aliased*
        loads and stores, whose memory effects are uncertain."""
        return False

    @property
    def has_side_effects(self) -> bool:
        """True if the instruction must not be removed even when its
        results are unused."""
        return False

    @property
    def is_phi(self) -> bool:
        return False

    # -- operand manipulation -------------------------------------------

    def replace_operand(self, old: Value, new: Value) -> int:
        """Replace every register operand ``old`` with ``new``.

        Returns the number of replacements.  Works uniformly for plain
        instructions and phis (whose incoming values live in
        :attr:`Phi.incoming` as well as :attr:`operands`).
        """
        count = 0
        for i, op in enumerate(self.operands):
            if op is old:
                self.operands[i] = new
                count += 1
        return count

    def replace_mem_use(self, old: MemName, new: MemName) -> int:
        """Replace memory-use name ``old`` with ``new``; returns count."""
        count = 0
        for i, name in enumerate(self.mem_uses):
            if name is old:
                self.mem_uses[i] = new
                count += 1
        return count

    # -- bookkeeping ----------------------------------------------------

    def _set_dst(self, dst: Optional[VReg]) -> None:
        self.dst = dst
        if dst is not None:
            dst.def_inst = self

    def remove_from_block(self) -> None:
        """Unlink this instruction from its block."""
        if self.block is not None:
            self.block.instructions.remove(self)
            self.block = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        from repro.ir.printer import format_instruction

        return f"<{format_instruction(self)}>"


# ---------------------------------------------------------------------------
# Straight-line computation
# ---------------------------------------------------------------------------


class Copy(Instruction):
    """``dst = src`` — register copy.

    Register promotion rewrites loads into copies; a later copy-propagation
    pass removes them (Section 4.4: "These copy instructions are eliminated
    later").
    """

    def __init__(self, dst: VReg, src: Value) -> None:
        super().__init__()
        self._set_dst(dst)
        self.operands = [src]

    @property
    def src(self) -> Value:
        return self.operands[0]


class BinOp(Instruction):
    """``dst = op lhs, rhs`` for ``op`` in :data:`BINARY_OPS`."""

    def __init__(self, dst: VReg, op: str, lhs: Value, rhs: Value) -> None:
        super().__init__()
        if op not in BINARY_OPS:
            raise ValueError(f"unknown binary op {op!r}")
        self._set_dst(dst)
        self.op = op
        self.operands = [lhs, rhs]

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]


class UnOp(Instruction):
    """``dst = op src`` for ``op`` in :data:`UNARY_OPS`."""

    def __init__(self, dst: VReg, op: str, src: Value) -> None:
        super().__init__()
        if op not in UNARY_OPS:
            raise ValueError(f"unknown unary op {op!r}")
        self._set_dst(dst)
        self.op = op
        self.operands = [src]

    @property
    def src(self) -> Value:
        return self.operands[0]


class Phi(Instruction):
    """``dst = phi [(pred_block, value), ...]`` — register phi.

    Incoming pairs are kept in :attr:`incoming`; :attr:`operands` mirrors
    the values so generic operand replacement works.
    """

    def __init__(
        self, dst: VReg, incoming: Sequence[Tuple["BasicBlock", Value]]
    ) -> None:
        super().__init__()
        self._set_dst(dst)
        self.incoming: List[Tuple["BasicBlock", Value]] = list(incoming)
        self.operands = [v for _, v in self.incoming]

    @property
    def is_phi(self) -> bool:
        return True

    def value_for(self, pred: "BasicBlock") -> Value:
        for block, value in self.incoming:
            if block is pred:
                return value
        raise KeyError(f"phi has no incoming value for block {pred.name}")

    def set_incoming(self, pred: "BasicBlock", value: Value) -> None:
        for i, (block, _) in enumerate(self.incoming):
            if block is pred:
                self.incoming[i] = (block, value)
                self._sync_operands()
                return
        self.incoming.append((pred, value))
        self._sync_operands()

    def remove_incoming(self, pred: "BasicBlock") -> None:
        self.incoming = [(b, v) for b, v in self.incoming if b is not pred]
        self._sync_operands()

    def replace_incoming_block(self, old: "BasicBlock", new: "BasicBlock") -> None:
        self.incoming = [(new if b is old else b, v) for b, v in self.incoming]

    def replace_operand(self, old: Value, new: Value) -> int:
        count = 0
        for i, (block, value) in enumerate(self.incoming):
            if value is old:
                self.incoming[i] = (block, new)
                count += 1
        self._sync_operands()
        return count

    def _sync_operands(self) -> None:
        self.operands = [v for _, v in self.incoming]


class MemPhi(Instruction):
    """A memory phi: joins SSA names of one :class:`MemoryVar`.

    The paper implements phi functions for memory resources as explicit phi
    instructions (Section 3); ``MemPhi`` is that instruction.  The target
    name is ``mem_defs[0]``; incoming names are in :attr:`incoming` and are
    mirrored into :attr:`mem_uses`.
    """

    def __init__(
        self,
        var: MemoryVar,
        dst_name: MemName,
        incoming: Sequence[Tuple["BasicBlock", MemName]],
    ) -> None:
        super().__init__()
        self.var = var
        self.mem_defs = [dst_name]
        dst_name.def_inst = self
        self.incoming: List[Tuple["BasicBlock", MemName]] = list(incoming)
        self._sync_mem_uses()

    @property
    def is_phi(self) -> bool:
        return True

    @property
    def dst_name(self) -> MemName:
        return self.mem_defs[0]

    def name_for(self, pred: "BasicBlock") -> MemName:
        for block, name in self.incoming:
            if block is pred:
                return name
        raise KeyError(f"memphi has no incoming name for block {pred.name}")

    def set_incoming(self, pred: "BasicBlock", name: MemName) -> None:
        for i, (block, _) in enumerate(self.incoming):
            if block is pred:
                self.incoming[i] = (block, name)
                self._sync_mem_uses()
                return
        self.incoming.append((pred, name))
        self._sync_mem_uses()

    def remove_incoming(self, pred: "BasicBlock") -> None:
        self.incoming = [(b, n) for b, n in self.incoming if b is not pred]
        self._sync_mem_uses()

    def replace_incoming_block(self, old: "BasicBlock", new: "BasicBlock") -> None:
        self.incoming = [(new if b is old else b, n) for b, n in self.incoming]

    def replace_mem_use(self, old: MemName, new: MemName) -> int:
        count = 0
        for i, (block, name) in enumerate(self.incoming):
            if name is old:
                self.incoming[i] = (block, new)
                count += 1
        self._sync_mem_uses()
        return count

    def _sync_mem_uses(self) -> None:
        self.mem_uses = [n for _, n in self.incoming]


# ---------------------------------------------------------------------------
# Memory access
# ---------------------------------------------------------------------------


class Load(Instruction):
    """``dst = ld [var]`` — a singleton load of a scalar memory location.

    After memory-SSA construction, ``mem_uses[0]`` is the SSA name of the
    reaching definition of ``var``.
    """

    def __init__(self, dst: VReg, var: MemoryVar) -> None:
        super().__init__()
        if not var.is_scalar:
            raise ValueError(f"singleton load of aggregate {var.name}")
        self._set_dst(dst)
        self.var = var

    @property
    def loaded_name(self) -> Optional[MemName]:
        return self.mem_uses[0] if self.mem_uses else None


class Store(Instruction):
    """``st [var], value`` — a singleton store to a scalar memory location.

    After memory-SSA construction, ``mem_defs[0]`` is the fresh SSA name
    this store defines.  A singleton store fully overwrites the location,
    so it has no memory use.
    """

    def __init__(self, var: MemoryVar, value: Value) -> None:
        super().__init__()
        if not var.is_scalar:
            raise ValueError(f"singleton store to aggregate {var.name}")
        self.var = var
        self.operands = [value]

    @property
    def value(self) -> Value:
        return self.operands[0]

    @property
    def stored_name(self) -> Optional[MemName]:
        return self.mem_defs[0] if self.mem_defs else None

    @property
    def has_side_effects(self) -> bool:
        # A store is removable only via memory-SSA-aware dead store
        # elimination, not generic DCE; model it as side-effecting.
        return True


class AddrOf(Instruction):
    """``dst = addr var`` — take the address of a scalar memory variable."""

    def __init__(self, dst: VReg, var: MemoryVar) -> None:
        super().__init__()
        self._set_dst(dst)
        self.var = var
        var.address_taken = True


class Elem(Instruction):
    """``dst = elem array, index`` — address of an array element."""

    def __init__(self, dst: VReg, array: MemoryVar, index: Value) -> None:
        super().__init__()
        self._set_dst(dst)
        self.array = array
        array.address_taken = True
        self.operands = [index]

    @property
    def index(self) -> Value:
        return self.operands[0]


class PtrLoad(Instruction):
    """``dst = ldp ptr`` — load through a pointer: an *aliased load*.

    ``mem_uses`` holds one SSA name per scalar variable the pointer may
    reference, per the alias model.
    """

    def __init__(self, dst: VReg, ptr: Value) -> None:
        super().__init__()
        self._set_dst(dst)
        self.operands = [ptr]

    @property
    def ptr(self) -> Value:
        return self.operands[0]

    @property
    def is_aliased_mem_op(self) -> bool:
        return True


class PtrStore(Instruction):
    """``stp ptr, value`` — store through a pointer: an *aliased store*.

    May-defines every scalar variable in the pointer's points-to set:
    ``mem_defs`` holds a fresh name per such variable and ``mem_uses`` the
    corresponding incoming name (chi semantics; see the module docstring).
    """

    def __init__(self, ptr: Value, value: Value) -> None:
        super().__init__()
        self.operands = [ptr, value]

    @property
    def ptr(self) -> Value:
        return self.operands[0]

    @property
    def value(self) -> Value:
        return self.operands[1]

    @property
    def is_aliased_mem_op(self) -> bool:
        return True

    @property
    def has_side_effects(self) -> bool:
        return True


class ArrayLoad(Instruction):
    """``dst = lda array, index`` — read an array element.

    Arrays are aggregate resources; array references neither use nor define
    scalar singleton resources, so promotion ignores them (they matter for
    aliasing only when a pointer may point into the array).
    """

    def __init__(self, dst: VReg, array: MemoryVar, index: Value) -> None:
        super().__init__()
        self._set_dst(dst)
        self.array = array
        self.operands = [index]

    @property
    def index(self) -> Value:
        return self.operands[0]


class ArrayStore(Instruction):
    """``sta array, index, value`` — write an array element."""

    def __init__(self, array: MemoryVar, index: Value, value: Value) -> None:
        super().__init__()
        self.array = array
        self.operands = [index, value]

    @property
    def index(self) -> Value:
        return self.operands[0]

    @property
    def value(self) -> Value:
        return self.operands[1]

    @property
    def has_side_effects(self) -> bool:
        return True


class Call(Instruction):
    """``dst = call @callee(args...)`` — both an aliased load and an
    aliased store.

    The alias model decides which scalar variables the call may use and
    define; by default (matching the paper's stated assumption) a call may
    modify and use every global variable, plus any address-exposed local.
    """

    def __init__(self, dst: Optional[VReg], callee: str, args: Sequence[Value]) -> None:
        super().__init__()
        if dst is not None:
            self._set_dst(dst)
        self.callee = callee
        self.operands = list(args)

    @property
    def args(self) -> List[Value]:
        return list(self.operands)

    @property
    def is_aliased_mem_op(self) -> bool:
        return True

    @property
    def has_side_effects(self) -> bool:
        return True


class DummyAliasedLoad(Instruction):
    """A no-op aliased load inserted by promotion in an interval preheader.

    It carries a single ``mem_uses`` entry — the web's live-in resource —
    and tells the *enclosing* interval's promotion that memory must hold
    the variable's current value at this point (Section 4.4).  The final
    cleanup deletes every dummy load.
    """

    def __init__(self, name: MemName) -> None:
        super().__init__()
        self.var = name.var
        self.mem_uses = [name]

    @property
    def is_aliased_mem_op(self) -> bool:
        return True

    @property
    def has_side_effects(self) -> bool:
        # Must not be swept by generic DCE; promotion removes it itself.
        return True


class Print(Instruction):
    """``print values...`` — observable output, used as the semantics
    oracle's channel in differential tests."""

    def __init__(self, values: Sequence[Value]) -> None:
        super().__init__()
        self.operands = list(values)

    @property
    def values(self) -> List[Value]:
        return list(self.operands)

    @property
    def has_side_effects(self) -> bool:
        return True


# ---------------------------------------------------------------------------
# Terminators
# ---------------------------------------------------------------------------


class Jump(Instruction):
    """``jmp target``"""

    is_terminator = True

    def __init__(self, target: "BasicBlock") -> None:
        super().__init__()
        self.targets: List["BasicBlock"] = [target]

    @property
    def target(self) -> "BasicBlock":
        return self.targets[0]


class CondBr(Instruction):
    """``br cond, if_true, if_false``"""

    is_terminator = True

    def __init__(
        self, cond: Value, if_true: "BasicBlock", if_false: "BasicBlock"
    ) -> None:
        super().__init__()
        self.operands = [cond]
        self.targets: List["BasicBlock"] = [if_true, if_false]

    @property
    def cond(self) -> Value:
        return self.operands[0]

    @property
    def if_true(self) -> "BasicBlock":
        return self.targets[0]

    @property
    def if_false(self) -> "BasicBlock":
        return self.targets[1]


class Ret(Instruction):
    """``ret [value]`` — function return.

    After memory-SSA construction a ``Ret`` carries a ``mem_uses`` entry
    for every tracked variable's reaching name: a function's final stores
    to globals are externally observable, and these uses keep dead-store
    elimination honest about that (see DESIGN.md, "Observability at
    returns").
    """

    is_terminator = True

    def __init__(self, value: Optional[Value] = None) -> None:
        super().__init__()
        self.operands = [value] if value is not None else []
        self.targets: List["BasicBlock"] = []

    @property
    def value(self) -> Optional[Value]:
        return self.operands[0] if self.operands else None

    @property
    def has_side_effects(self) -> bool:
        return True

    @property
    def is_aliased_mem_op(self) -> bool:
        # A return observes every global (the caller may read them), so it
        # behaves exactly like an aliased load: promotion must flush a
        # promoted register to memory before it.
        return True


Terminator = Union[Jump, CondBr, Ret]
