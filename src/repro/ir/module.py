"""Modules: global memory variables plus a set of functions."""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.ir.function import Function
from repro.memory.resources import MemoryVar, VarKind


class Module:
    """A whole program: global variables and functions.

    Global scalars and scalar struct fields are the paper's primary
    promotion candidates.  Struct fields are modelled as independent
    ``MemoryVar``s named ``struct.field`` (the paper promotes "scalar
    components of structure variables" individually).
    """

    def __init__(self, name: str = "module") -> None:
        self.name = name
        self.globals: Dict[str, MemoryVar] = {}
        self.functions: Dict[str, Function] = {}

    def add_global(self, name: str, initial: int = 0) -> MemoryVar:
        return self._add(MemoryVar(name, VarKind.GLOBAL, initial=initial))

    def add_global_array(
        self, name: str, size: int, initial: int = 0, initial_values=None
    ) -> MemoryVar:
        return self._add(
            MemoryVar(
                name,
                VarKind.ARRAY,
                initial=initial,
                size=size,
                initial_values=initial_values,
            )
        )

    def add_field(self, struct: str, field: str, initial: int = 0) -> MemoryVar:
        return self._add(MemoryVar(f"{struct}.{field}", VarKind.FIELD, initial=initial))

    def _add(self, var: MemoryVar) -> MemoryVar:
        if var.name in self.globals:
            raise ValueError(f"duplicate global {var.name}")
        self.globals[var.name] = var
        return var

    def get_global(self, name: str) -> MemoryVar:
        return self.globals[name]

    def add_function(self, function: Function) -> Function:
        if function.name in self.functions:
            raise ValueError(f"duplicate function {function.name}")
        self.functions[function.name] = function
        function.module = self
        return function

    def new_function(
        self, name: str, param_names: Optional[List[str]] = None
    ) -> Function:
        return self.add_function(Function(name, param_names))

    def get_function(self, name: str) -> Function:
        return self.functions[name]

    def scalar_globals(self) -> List[MemoryVar]:
        """All promotable module-level variables, in declaration order."""
        return [v for v in self.globals.values() if v.is_scalar]

    def __repr__(self) -> str:
        return (
            f"Module({self.name}, {len(self.globals)} globals, "
            f"{len(self.functions)} functions)"
        )
