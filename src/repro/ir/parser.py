"""Parser for the textual IR form produced by :mod:`repro.ir.printer`.

Only the pre-memory-SSA subset round-trips: memory-SSA annotations
(``[x_2]`` suffixes, ``; use …`` comments, ``memphi``/``dummyload``
instructions) are either ignored or rejected, since memory SSA is always
reconstructed by :func:`repro.memory.memssa.build_memory_ssa`.

The grammar is line-oriented; see the printer for examples.  This exists
so tests and examples can state programs compactly and so IR dumps are
loadable artifacts.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.ir import instructions as I
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.values import Const, Value, VReg
from repro.memory.resources import MemoryVar, VarKind


class IRParseError(ValueError):
    """Raised on malformed textual IR."""


_GLOBAL_RE = re.compile(r"^global @([\w.]+) = (-?\d+)$")
_ARRAY_RE = re.compile(r"^array @([\w.]+)\[(\d+)\] = (-?\d+|\{[^}]*\})$")
_LOCAL_RE = re.compile(r"^local @([\w.]+) = (-?\d+)$")
_LOCAL_ARRAY_RE = re.compile(r"^local @([\w.]+)\[(\d+)\] = (-?\d+|\{[^}]*\})$")
_FUNC_RE = re.compile(r"^func @(\w+)\(([^)]*)\) \{$")
_LABEL_RE = re.compile(r"^(\w+):$")


def parse_module(text: str) -> Module:
    lines = _strip(text)
    module = Module()
    i = 0
    if i < len(lines) and lines[i].startswith("module"):
        module.name = lines[i].split(None, 1)[1] if " " in lines[i] else "module"
        i += 1
    while i < len(lines):
        line = lines[i]
        if m := _GLOBAL_RE.match(line):
            name, init = m.group(1), int(m.group(2))
            kind = VarKind.FIELD if "." in name else VarKind.GLOBAL
            module._add(MemoryVar(name, kind, initial=init))
            i += 1
        elif m := _ARRAY_RE.match(line):
            fill, values = _parse_init(m.group(3))
            module.add_global_array(
                m.group(1), int(m.group(2)), fill, initial_values=values
            )
            i += 1
        elif _FUNC_RE.match(line):
            i = _parse_function(module, lines, i)
        else:
            raise IRParseError(f"unexpected line at module level: {line!r}")
    return module


def parse_function(text: str, module: Optional[Module] = None) -> Function:
    """Parse a single ``func`` block into (a fresh module if needed)."""
    module = module if module is not None else Module()
    lines = _strip(text)
    _parse_function(module, lines, 0)
    return list(module.functions.values())[-1]


def _parse_init(token: str):
    """An array initializer: a fill integer or a ``{v, v, ...}`` list."""
    if token.startswith("{"):
        inner = token[1:-1].strip()
        values = [int(v) for v in inner.split(",")] if inner else []
        return 0, values
    return int(token), None


def _strip(text: str) -> List[str]:
    out = []
    for raw in text.splitlines():
        line = raw.split(";", 1)[0].rstrip()
        line = line.strip()
        if line:
            out.append(line)
    return out


def _parse_function(module: Module, lines: List[str], i: int) -> int:
    m = _FUNC_RE.match(lines[i])
    if not m:
        raise IRParseError(f"expected func header, got {lines[i]!r}")
    name = m.group(1)
    params = [p.strip().lstrip("%") for p in m.group(2).split(",") if p.strip()]
    func = Function(name, params)
    module.add_function(func)
    i += 1

    # Locals, then collect the body lines up to the closing brace.
    body: List[str] = []
    while i < len(lines) and lines[i] != "}":
        line = lines[i]
        if m := _LOCAL_ARRAY_RE.match(line):
            fill, values = _parse_init(m.group(3))
            var = func.add_frame_var(
                m.group(1), VarKind.ARRAY, initial=fill, size=int(m.group(2))
            )
            var.initial_values = values
        elif m := _LOCAL_RE.match(line):
            func.add_frame_var(m.group(1), VarKind.LOCAL, initial=int(m.group(2)))
        else:
            body.append(line)
        i += 1
    if i == len(lines):
        raise IRParseError(f"unterminated function {name}")
    i += 1  # consume '}'

    # Pass 1: create blocks.
    for line in body:
        if m := _LABEL_RE.match(line):
            func.add_block(m.group(1))
    if not func.blocks:
        raise IRParseError(f"function {name} has no blocks")

    # Pass 2: instructions.
    env = _Env(module, func)
    current: Optional[BasicBlock] = None
    pending_phis: List[Tuple[BasicBlock, I.Phi, List[Tuple[str, str]]]] = []
    for line in body:
        if m := _LABEL_RE.match(line):
            current = func.find_block(m.group(1))
            continue
        if current is None:
            raise IRParseError(f"instruction before first label: {line!r}")
        _parse_instruction(env, current, line, pending_phis)

    # Pass 3: resolve phi incoming values (may be forward references).
    for block, phi, pairs in pending_phis:
        incoming = [(func.find_block(bn), env.value(vt)) for bn, vt in pairs]
        phi.incoming = incoming
        phi._sync_operands()
    return i


class _Env:
    def __init__(self, module: Module, func: Function) -> None:
        self.module = module
        self.func = func
        self.regs: Dict[str, VReg] = {p.name: p for p in func.params}

    def reg(self, token: str) -> VReg:
        """Look up or forward-declare a register (``%name``)."""
        name = token.lstrip("%")
        if name not in self.regs:
            self.regs[name] = VReg(name)
        return self.regs[name]

    def value(self, token: str) -> Value:
        token = token.strip()
        if token.startswith("%"):
            return self.reg(token)
        try:
            return Const(int(token))
        except ValueError:
            raise IRParseError(f"bad value token {token!r}")

    def var(self, token: str) -> MemoryVar:
        name = token.lstrip("@")
        if name in self.func.frame_vars:
            return self.func.frame_vars[name]
        if name in self.module.globals:
            return self.module.globals[name]
        raise IRParseError(f"unknown memory variable @{name}")


_PHI_RE = re.compile(r"^%(\w+) = phi \[(.*)\]$")
_ASSIGN_RE = re.compile(r"^%(\w+) = (\w+) (.*)$")
_CALL_RE = re.compile(r"^call @(\w+)\((.*)\)$")
_ASSIGN_CALL_RE = re.compile(r"^%(\w+) = call @(\w+)\((.*)\)$")


def _parse_instruction(
    env: _Env,
    block: BasicBlock,
    line: str,
    pending_phis: List,
) -> None:
    func = env.func

    if m := _PHI_RE.match(line):
        dst = env.reg(m.group(1))
        pairs = []
        for part in _split_args(m.group(2)):
            block_name, value_token = part.split(":", 1)
            pairs.append((block_name.strip(), value_token.strip()))
        phi = I.Phi(dst, [])
        block.insert_at_front(phi)
        pending_phis.append((block, phi, pairs))
        return

    if m := _ASSIGN_CALL_RE.match(line):
        dst = env.reg(m.group(1))
        args = [env.value(a) for a in _split_args(m.group(3))]
        block.append(I.Call(dst, m.group(2), args))
        return

    if m := _CALL_RE.match(line):
        args = [env.value(a) for a in _split_args(m.group(2))]
        block.append(I.Call(None, m.group(1), args))
        return

    if m := _ASSIGN_RE.match(line):
        dst, op, rest = env.reg(m.group(1)), m.group(2), m.group(3)
        args = _split_args(rest)
        if op == "copy":
            block.append(I.Copy(dst, env.value(args[0])))
        elif op in I.UNARY_OPS:
            block.append(I.UnOp(dst, op, env.value(args[0])))
        elif op in I.BINARY_OPS:
            block.append(I.BinOp(dst, op, env.value(args[0]), env.value(args[1])))
        elif op == "ld":
            block.append(I.Load(dst, env.var(args[0])))
        elif op == "addr":
            block.append(I.AddrOf(dst, env.var(args[0])))
        elif op == "elem":
            block.append(I.Elem(dst, env.var(args[0]), env.value(args[1])))
        elif op == "ldp":
            block.append(I.PtrLoad(dst, env.value(args[0])))
        elif op == "lda":
            block.append(I.ArrayLoad(dst, env.var(args[0]), env.value(args[1])))
        else:
            raise IRParseError(f"unknown op in {line!r}")
        return

    head, _, rest = line.partition(" ")
    args = _split_args(rest)
    if head == "st":
        block.append(I.Store(env.var(args[0]), env.value(args[1])))
    elif head == "stp":
        block.append(I.PtrStore(env.value(args[0]), env.value(args[1])))
    elif head == "sta":
        block.append(
            I.ArrayStore(env.var(args[0]), env.value(args[1]), env.value(args[2]))
        )
    elif head == "print":
        block.append(I.Print([env.value(a) for a in args]))
    elif head == "jmp":
        block.set_terminator(I.Jump(func.find_block(args[0])))
    elif head == "br":
        block.set_terminator(
            I.CondBr(
                env.value(args[0]), func.find_block(args[1]), func.find_block(args[2])
            )
        )
    elif head == "ret":
        block.set_terminator(I.Ret(env.value(args[0]) if args else None))
    else:
        raise IRParseError(f"cannot parse instruction {line!r}")


def _split_args(text: str) -> List[str]:
    text = text.strip()
    if not text:
        return []
    return [part.strip() for part in text.split(",")]
