"""Textual IR printing.

The pre-memory-SSA textual form round-trips through
:mod:`repro.ir.parser`; memory-SSA annotations are printed as trailing
``; use …, def …`` comments which the parser ignores.
"""

from __future__ import annotations

from typing import List

from repro.ir import instructions as I
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.values import Value
from repro.memory.resources import VarKind


def _val(v: Value) -> str:
    return str(v)


def _init_text(var) -> str:
    if var.initial_values is not None:
        return "{" + ", ".join(str(v) for v in var.initial_values) + "}"
    return str(var.initial)


def format_instruction(inst: I.Instruction, with_mem: bool = True) -> str:
    text = _format_core(inst)
    if with_mem:
        notes: List[str] = []
        if inst.mem_uses and not isinstance(
            inst, (I.Load, I.MemPhi, I.DummyAliasedLoad)
        ):
            notes.append("use " + ", ".join(str(n) for n in inst.mem_uses))
        if inst.mem_defs and not isinstance(inst, (I.Store, I.MemPhi)):
            notes.append("def " + ", ".join(str(n) for n in inst.mem_defs))
        if notes:
            text += "  ; " + " | ".join(notes)
    return text


def _format_core(inst: I.Instruction) -> str:
    if isinstance(inst, I.Copy):
        return f"{inst.dst} = copy {_val(inst.src)}"
    if isinstance(inst, I.BinOp):
        return f"{inst.dst} = {inst.op} {_val(inst.lhs)}, {_val(inst.rhs)}"
    if isinstance(inst, I.UnOp):
        return f"{inst.dst} = {inst.op} {_val(inst.src)}"
    if isinstance(inst, I.Phi):
        inc = ", ".join(f"{b.name}: {_val(v)}" for b, v in inst.incoming)
        return f"{inst.dst} = phi [{inc}]"
    if isinstance(inst, I.MemPhi):
        inc = ", ".join(f"{b.name}: {n}" for b, n in inst.incoming)
        return f"{inst.dst_name} = memphi @{inst.var.name} [{inc}]"
    if isinstance(inst, I.Load):
        name = f"[{inst.mem_uses[0]}]" if inst.mem_uses else ""
        return f"{inst.dst} = ld @{inst.var.name}{name}"
    if isinstance(inst, I.Store):
        name = f"[{inst.mem_defs[0]}]" if inst.mem_defs else ""
        return f"st @{inst.var.name}{name}, {_val(inst.value)}"
    if isinstance(inst, I.AddrOf):
        return f"{inst.dst} = addr @{inst.var.name}"
    if isinstance(inst, I.Elem):
        return f"{inst.dst} = elem @{inst.array.name}, {_val(inst.index)}"
    if isinstance(inst, I.PtrLoad):
        return f"{inst.dst} = ldp {_val(inst.ptr)}"
    if isinstance(inst, I.PtrStore):
        return f"stp {_val(inst.ptr)}, {_val(inst.value)}"
    if isinstance(inst, I.ArrayLoad):
        return f"{inst.dst} = lda @{inst.array.name}, {_val(inst.index)}"
    if isinstance(inst, I.ArrayStore):
        return f"sta @{inst.array.name}, {_val(inst.index)}, {_val(inst.value)}"
    if isinstance(inst, I.Call):
        args = ", ".join(_val(a) for a in inst.operands)
        head = f"{inst.dst} = " if inst.dst is not None else ""
        return f"{head}call @{inst.callee}({args})"
    if isinstance(inst, I.DummyAliasedLoad):
        return f"dummyload [{inst.mem_uses[0]}]"
    if isinstance(inst, I.Print):
        return "print " + ", ".join(_val(v) for v in inst.operands)
    if isinstance(inst, I.Jump):
        return f"jmp {inst.target.name}"
    if isinstance(inst, I.CondBr):
        return f"br {_val(inst.cond)}, {inst.if_true.name}, {inst.if_false.name}"
    if isinstance(inst, I.Ret):
        return "ret" if inst.value is None else f"ret {_val(inst.value)}"
    raise TypeError(f"unknown instruction {type(inst).__name__}")


def print_function(function: Function, with_mem: bool = True) -> str:
    lines: List[str] = []
    params = ", ".join(str(p) for p in function.params)
    lines.append(f"func @{function.name}({params}) {{")
    for var in function.frame_vars.values():
        if var.kind is VarKind.ARRAY:
            lines.append(f"  local @{var.name}[{var.size}] = {_init_text(var)}")
        else:
            lines.append(f"  local @{var.name} = {var.initial}")
    for block in function.blocks:
        preds = ", ".join(p.name for p in block.preds)
        suffix = f"    ; preds: {preds}" if preds and with_mem else ""
        lines.append(f"{block.name}:{suffix}")
        for inst in block.instructions:
            lines.append("  " + format_instruction(inst, with_mem))
    lines.append("}")
    return "\n".join(lines)


def print_module(module: Module, with_mem: bool = True) -> str:
    lines: List[str] = [f"module {module.name}"]
    for var in module.globals.values():
        if var.kind is VarKind.ARRAY:
            lines.append(f"array @{var.name}[{var.size}] = {_init_text(var)}")
        else:
            lines.append(f"global @{var.name} = {var.initial}")
    for function in module.functions.values():
        lines.append("")
        lines.append(print_function(function, with_mem))
    return "\n".join(lines) + "\n"
