"""IR values: virtual registers, constants, and undef.

Values are what register operands of instructions refer to.  Memory is not
a value; memory locations are :class:`repro.memory.resources.MemoryVar` and
their SSA names are :class:`repro.memory.resources.MemName`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.ir.instructions import Instruction


class Value:
    """Base class of everything a register operand may name."""

    __slots__ = ()


class Const(Value):
    """An integer constant.

    The IR is untyped beyond "machine integer"; pointers are runtime values
    produced by ``addr``/``elem`` instructions and cannot be written as
    literals.
    """

    __slots__ = ("value",)

    def __init__(self, value: int) -> None:
        self.value = int(value)

    def __repr__(self) -> str:
        return f"Const({self.value})"

    def __str__(self) -> str:
        return str(self.value)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Const) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("Const", self.value))


class Undef(Value):
    """An undefined value (used for uninitialized locals).

    Reading undef in the interpreter yields 0, so programs stay
    deterministic, but the verifier still treats it as a distinct value.
    """

    __slots__ = ()

    def __repr__(self) -> str:
        return "Undef()"

    def __str__(self) -> str:
        return "undef"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Undef)

    def __hash__(self) -> int:
        return hash("Undef")


UNDEF = Undef()


class VReg(Value):
    """A virtual register.

    Under SSA form each ``VReg`` has exactly one defining instruction,
    recorded in :attr:`def_inst`.  Names are unique within a function
    (enforced by :class:`repro.ir.function.Function`, which hands them out).
    """

    __slots__ = ("name", "def_inst")

    def __init__(self, name: str, def_inst: Optional["Instruction"] = None) -> None:
        self.name = name
        self.def_inst = def_inst

    def __repr__(self) -> str:
        return f"VReg(%{self.name})"

    def __str__(self) -> str:
        return f"%{self.name}"
