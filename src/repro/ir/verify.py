"""IR and SSA verifier.

Checked invariants (progressively, depending on flags):

structure
    every block ends in exactly one terminator and contains none earlier;
    phi instructions lead their block; pred/succ lists are consistent;
    every referenced block belongs to the function; the entry block has no
    predecessors (passes that need a preheader rely on this).

register SSA (``check_ssa``)
    every virtual register has exactly one defining instruction, every use
    is dominated by its definition (phi uses are checked at the end of the
    corresponding predecessor), and phi incoming blocks match predecessors.

memory SSA (``check_memssa``)
    every memory name has exactly one definition (matching ``def_inst``),
    memphi incoming blocks match predecessors, and every memory use is
    dominated by its definition.
"""

from __future__ import annotations

from typing import Dict, Optional, Set, Tuple

from repro.ir import instructions as I
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.values import Const, Undef, VReg
from repro.memory.resources import MemName


class VerificationError(AssertionError):
    """Raised when the IR violates a checked invariant.

    Carries structured context so drivers (the transactional pipeline,
    fault-injection tests) can attribute the failure without parsing the
    message: ``function`` is the offending function's name, ``block`` the
    offending block's name when one is known, ``stage`` the checker group
    (``structure``, ``ssa``, or ``memssa``), and ``detail`` the bare
    message without the appended IR dump.
    """

    def __init__(
        self,
        message: str,
        function: Optional[str] = None,
        block: Optional[str] = None,
        stage: Optional[str] = None,
        detail: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.function = function
        self.block = block
        self.stage = stage
        self.detail = detail


def verify_module(
    module: Module, check_ssa: bool = False, check_memssa: bool = False
) -> None:
    for function in module.functions.values():
        verify_function(function, check_ssa=check_ssa, check_memssa=check_memssa)


def verify_function(
    function: Function, check_ssa: bool = False, check_memssa: bool = False
) -> None:
    _check_structure(function)
    if check_ssa:
        _check_register_ssa(function)
    if check_memssa:
        _check_memory_ssa(function)


def _fail(
    function: Function,
    message: str,
    block: Optional[BasicBlock] = None,
    stage: Optional[str] = None,
) -> None:
    from repro.ir.printer import print_function

    raise VerificationError(
        f"{function.name}: {message}\n{print_function(function)}",
        function=function.name,
        block=block.name if block is not None else None,
        stage=stage,
        detail=message,
    )


def _check_structure(function: Function) -> None:
    stage = "structure"
    blocks = set(function.blocks)
    if not function.blocks:
        _fail(function, "function has no blocks", stage=stage)
    if function.entry.preds:
        _fail(function, "entry block has predecessors", function.entry, stage)
    names = [b.name for b in function.blocks]
    if len(set(names)) != len(names):
        _fail(function, "duplicate block names", stage=stage)

    for block in function.blocks:
        if block.function is not function:
            _fail(
                function, f"block {block.name} has wrong function backref", block, stage
            )
        term = block.terminator
        if term is None:
            _fail(function, f"block {block.name} lacks a terminator", block, stage)
        for i, inst in enumerate(block.instructions):
            if inst.block is not block:
                _fail(
                    function,
                    f"instruction in {block.name} has wrong block backref",
                    block,
                    stage,
                )
            if inst.is_terminator and inst is not block.instructions[-1]:
                _fail(function, f"terminator not last in {block.name}", block, stage)
            if inst.is_phi and i > block.first_non_phi_index():
                _fail(function, f"phi after non-phi in {block.name}", block, stage)
        for target in term.targets:
            if target not in blocks:
                _fail(
                    function,
                    f"{block.name} targets foreign block {target.name}",
                    block,
                    stage,
                )
        for pred in block.preds:
            if pred not in blocks:
                _fail(
                    function, f"{block.name} has foreign pred {pred.name}", block, stage
                )
            pred_term = pred.terminator
            if pred_term is None or block not in pred_term.targets:
                _fail(
                    function,
                    f"stale pred edge {pred.name} -> {block.name}",
                    block,
                    stage,
                )
        if len(set(id(p) for p in block.preds)) != len(block.preds):
            _fail(function, f"duplicate preds on {block.name}", block, stage)

    # Inverse check: every terminator edge appears in the target's preds.
    for block in function.blocks:
        for succ in block.succs:
            if block not in succ.preds:
                _fail(
                    function,
                    f"missing pred edge {block.name} -> {succ.name}",
                    succ,
                    stage,
                )


def _dominators(function: Function):
    from repro.parallel import cache as analysis_cache

    return analysis_cache.dominator_tree(function)


def _check_register_ssa(function: Function) -> None:
    defs: Dict[VReg, I.Instruction] = {}
    for inst in function.instructions():
        if inst.dst is not None:
            if inst.dst in defs:
                _fail(function, f"{inst.dst} defined more than once", inst.block, "ssa")
            defs[inst.dst] = inst
    for reg, inst in defs.items():
        if reg.def_inst is not inst:
            _fail(function, f"{reg} has stale def_inst backref", inst.block, "ssa")

    domtree = _dominators(function)
    params = set(function.params)
    positions = _instruction_positions(function)

    for block in function.blocks:
        for inst in block.instructions:
            if isinstance(inst, I.Phi):
                incoming_blocks = [b for b, _ in inst.incoming]
                if _as_id_set(incoming_blocks) != _as_id_set(block.preds):
                    _fail(
                        function,
                        f"phi {inst.dst} incoming blocks "
                        f"{[b.name for b in incoming_blocks]} != preds "
                        f"{[p.name for p in block.preds]} of {block.name}",
                        block,
                        "ssa",
                    )
                for pred, value in inst.incoming:
                    _check_reg_use(
                        function,
                        domtree,
                        positions,
                        defs,
                        params,
                        value,
                        use_block=pred,
                        use_pos=len(pred.instructions),
                        what=f"phi {inst.dst} from {pred.name}",
                    )
            else:
                for value in inst.operands:
                    _check_reg_use(
                        function,
                        domtree,
                        positions,
                        defs,
                        params,
                        value,
                        use_block=block,
                        use_pos=positions[id(inst)][1],
                        what=f"use in {block.name}",
                    )


def _check_reg_use(
    function, domtree, positions, defs, params, value, use_block, use_pos, what
) -> None:
    if isinstance(value, (Const, Undef)):
        return
    if value in params:
        return
    if value not in defs:
        _fail(function, f"{value} used but never defined ({what})", use_block, "ssa")
    def_inst = defs[value]
    def_block, def_pos = positions[id(def_inst)]
    if def_block is use_block:
        if def_pos >= use_pos:
            _fail(
                function,
                f"{value} used before local definition ({what})",
                use_block,
                "ssa",
            )
    elif not domtree.dominates(def_block, use_block):
        _fail(
            function,
            f"definition of {value} in {def_block.name} does not dominate "
            f"use in {use_block.name} ({what})",
            use_block,
            "ssa",
        )


def _check_memory_ssa(function: Function) -> None:
    defs: Dict[MemName, I.Instruction] = {}
    entry_names: Set[MemName] = set()
    for inst in function.instructions():
        for name in inst.mem_defs:
            if name in defs:
                _fail(
                    function,
                    f"memory name {name} defined more than once",
                    inst.block,
                    "memssa",
                )
            defs[name] = inst
            if name.def_inst is not inst:
                _fail(
                    function,
                    f"memory name {name} has stale def_inst",
                    inst.block,
                    "memssa",
                )

    domtree = _dominators(function)
    positions = _instruction_positions(function)

    for block in function.blocks:
        for inst in block.instructions:
            if isinstance(inst, I.MemPhi):
                incoming_blocks = [b for b, _ in inst.incoming]
                if _as_id_set(incoming_blocks) != _as_id_set(block.preds):
                    _fail(
                        function,
                        f"memphi {inst.dst_name} incoming blocks != preds of {block.name}",
                        block,
                        "memssa",
                    )
                for pred, name in inst.incoming:
                    _check_mem_use(
                        function,
                        domtree,
                        positions,
                        defs,
                        name,
                        use_block=pred,
                        use_pos=len(pred.instructions),
                        what=f"memphi {inst.dst_name} from {pred.name}",
                    )
            else:
                for name in inst.mem_uses:
                    _check_mem_use(
                        function,
                        domtree,
                        positions,
                        defs,
                        name,
                        use_block=block,
                        use_pos=positions[id(inst)][1],
                        what=f"memory use at {block.name}",
                    )


def _check_mem_use(
    function, domtree, positions, defs, name, use_block, use_pos, what
) -> None:
    if name.is_entry:
        return  # live-on-entry version; defined "above" the entry block
    if name not in defs:
        _fail(
            function,
            f"memory name {name} used but never defined ({what})",
            use_block,
            "memssa",
        )
    def_inst = defs[name]
    def_block, def_pos = positions[id(def_inst)]
    if def_block is use_block:
        if def_pos >= use_pos:
            _fail(
                function,
                f"memory name {name} used before definition ({what})",
                use_block,
                "memssa",
            )
    elif not domtree.dominates(def_block, use_block):
        _fail(
            function,
            f"definition of {name} in {def_block.name} does not dominate "
            f"use in {use_block.name} ({what})",
            use_block,
            "memssa",
        )


def _instruction_positions(function: Function) -> Dict[int, Tuple[BasicBlock, int]]:
    positions: Dict[int, Tuple[BasicBlock, int]] = {}
    for block in function.blocks:
        for i, inst in enumerate(block.instructions):
            positions[id(inst)] = (block, i)
    return positions


def _as_id_set(blocks) -> Set[int]:
    return {id(b) for b in blocks}
