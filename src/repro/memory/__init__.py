"""Memory-resource model: base memory variables, SSA memory names, aliasing.

This package implements the paper's notion of *memory resources*
(Section 3): every scalar memory location carries a unique identifier,
loads/stores are tagged with singleton resources, and aliased operations
(function calls, pointer references) use and define sets of resources.

``AliasModel``/``MemorySSA`` are re-exported lazily (PEP 562) because they
depend on :mod:`repro.ir`, which itself depends on
:mod:`repro.memory.resources`.
"""

from repro.memory.resources import MemName, MemoryVar, VarKind

__all__ = [
    "AliasModel",
    "MemName",
    "MemoryVar",
    "MemorySSA",
    "VarKind",
    "build_memory_ssa",
]


def __getattr__(name):
    if name == "AliasModel":
        from repro.memory.aliasing import AliasModel

        return AliasModel
    if name in ("MemorySSA", "build_memory_ssa"):
        from repro.memory import memssa

        return getattr(memssa, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
