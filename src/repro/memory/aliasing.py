"""The alias model: which scalar memory locations may an instruction touch.

The paper's baseline assumption (Section 3): "a function call may modify
and use all memory singleton resources from global variables", and pointer
references use/define *aggregate* resources whose alias sets share common
singletons.  We realize this with a policy object that maps each
instruction to the sets of scalar :class:`MemoryVar`s it may use and may
define, at variable granularity:

* ``Load``/``Store`` — exactly their variable (singleton references);
* ``Call`` — every scalar global plus every address-taken scalar local of
  the calling function (unknown callees could have stashed the pointer),
  or a precise mod/ref summary when :meth:`AliasModel.with_modref_summaries`
  is used;
* ``PtrLoad``/``PtrStore`` — the pointer's points-to set, which under the
  default flow-insensitive policy is every address-taken scalar in scope;
* ``Ret`` — every scalar global (a function's final stores to globals are
  observable by its caller).

Aggregates (arrays) are never versioned; array references are invisible to
memory SSA except through pointers that may point at scalars.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.ir import instructions as I
from repro.ir.function import Function
from repro.ir.module import Module
from repro.memory.resources import MemoryVar


class AliasModel:
    """Maps instructions to may-use / may-def sets of scalar variables.

    ``modref`` optionally holds per-callee (use, def) summaries computed by
    :meth:`with_modref_summaries`; without it every call conservatively
    touches everything in scope.
    """

    def __init__(
        self,
        module: Module,
        modref: Optional[Dict[str, Tuple[Set[str], Set[str]]]] = None,
    ) -> None:
        self.module = module
        self.modref = modref

    # -- construction -------------------------------------------------------

    @classmethod
    def conservative(cls, module: Module) -> "AliasModel":
        """The paper's model: calls mod/ref all globals (and exposed
        locals); pointers may touch any address-taken scalar."""
        return cls(module)

    @classmethod
    def with_modref_summaries(cls, module: Module) -> "AliasModel":
        """Bottom-up transitive mod/ref summaries per function.

        A function's summary is the set of global scalars it (or anything
        it calls) may load/store, widened to *all* address-taken globals
        as soon as it performs any pointer reference.  This is the
        "pointer analysis" knob the ablation benchmarks turn (Lu & Cooper
        report that better aliasing barely moves register promotion
        results; we reproduce that comparison).
        """
        summaries: Dict[str, Tuple[Set[str], Set[str]]] = {}
        globals_by_name = {v.name: v for v in module.scalar_globals()}
        taken = {v.name for v in module.scalar_globals() if v.address_taken}

        # Iterate to a fixed point over the (possibly cyclic) call graph.
        for name in module.functions:
            summaries[name] = (set(), set())
        changed = True
        while changed:
            changed = False
            for name, function in module.functions.items():
                use, deff = set(summaries[name][0]), set(summaries[name][1])
                for inst in function.instructions():
                    if isinstance(inst, I.Load) and inst.var.name in globals_by_name:
                        use.add(inst.var.name)
                    elif isinstance(inst, I.Store) and inst.var.name in globals_by_name:
                        deff.add(inst.var.name)
                    elif isinstance(inst, I.PtrLoad):
                        use |= taken
                    elif isinstance(inst, I.PtrStore):
                        use |= taken
                        deff |= taken
                    elif isinstance(inst, I.Call):
                        callee = summaries.get(inst.callee)
                        if callee is None:
                            use |= set(globals_by_name)
                            deff |= set(globals_by_name)
                        else:
                            use |= callee[0]
                            deff |= callee[1]
                if (use, deff) != summaries[name]:
                    summaries[name] = (use, deff)
                    changed = True
        return cls(module, modref=summaries)

    # -- queries ---------------------------------------------------------

    def scalar_globals(self) -> List[MemoryVar]:
        return self.module.scalar_globals()

    def tracked_vars(self, function: Function) -> List[MemoryVar]:
        """Scalar variables memory SSA versions for this function: module
        scalars plus the function's scalar frame variables, sorted by name
        for determinism."""
        in_scope = list(self.module.scalar_globals())
        in_scope += [v for v in function.frame_vars.values() if v.is_scalar]
        return sorted(in_scope, key=lambda v: v.name)

    def _taken_scalars(self, function: Function) -> List[MemoryVar]:
        return [v for v in self.tracked_vars(function) if v.address_taken]

    def points_to(self, function: Function, ptr) -> List[MemoryVar]:
        """Points-to set of a pointer value (flow-insensitive: every
        address-taken scalar in scope)."""
        return self._taken_scalars(function)

    def call_effects(
        self, function: Function, callee: str
    ) -> Tuple[List[MemoryVar], List[MemoryVar]]:
        """(may-use, may-def) scalar variables of a call."""
        exposed_locals = [
            v for v in function.frame_vars.values() if v.is_scalar and v.address_taken
        ]
        if self.modref is not None and callee in self.modref:
            use_names, def_names = self.modref[callee]
            # Chi semantics: a MAY-definition must also use the incoming
            # value — the callee might leave the location untouched, so
            # the caller-side store feeding it is still observable.
            use_names = use_names | def_names
            use = [v for v in self.module.scalar_globals() if v.name in use_names]
            deff = [v for v in self.module.scalar_globals() if v.name in def_names]
            return (
                _sorted(use + exposed_locals),
                _sorted(deff + exposed_locals),
            )
        everything = _sorted(list(self.module.scalar_globals()) + exposed_locals)
        return everything, everything

    def may_use_vars(self, function: Function, inst: I.Instruction) -> List[MemoryVar]:
        """Scalar variables whose current memory value ``inst`` may
        observe (including the old value of every may-def; see the chi
        discussion in :mod:`repro.ir.instructions`)."""
        if isinstance(inst, I.Load):
            return [inst.var] if inst.var.is_scalar else []
        if isinstance(inst, I.Call):
            return self.call_effects(function, inst.callee)[0]
        if isinstance(inst, I.PtrLoad):
            return self.points_to(function, inst.ptr)
        if isinstance(inst, I.PtrStore):
            return self.points_to(function, inst.ptr)
        if isinstance(inst, I.Ret):
            return _sorted(self.module.scalar_globals())
        if isinstance(inst, I.DummyAliasedLoad):
            return [inst.var]
        return []

    def may_def_vars(self, function: Function, inst: I.Instruction) -> List[MemoryVar]:
        """Scalar variables ``inst`` may overwrite."""
        if isinstance(inst, I.Store):
            return [inst.var] if inst.var.is_scalar else []
        if isinstance(inst, I.Call):
            return self.call_effects(function, inst.callee)[1]
        if isinstance(inst, I.PtrStore):
            return self.points_to(function, inst.ptr)
        return []


def _sorted(vars_: List[MemoryVar]) -> List[MemoryVar]:
    unique: Dict[str, MemoryVar] = {}
    for v in vars_:
        unique.setdefault(v.name, v)
    return [unique[name] for name in sorted(unique)]
