"""Memory SSA construction.

Puts singleton memory resources in SSA form, "in order to treat them
uniformly with register resources" (Section 3): every tracked scalar
variable gets versioned names, explicit memory phi instructions are placed
at the iterated dominance frontier of its definition blocks, and every
memory-touching instruction is annotated with the SSA names it uses and
defines (via :class:`repro.memory.aliasing.AliasModel`).

Construction is the standard Cytron algorithm (phi placement on the IDF,
then a renaming walk over the dominator tree), run for all tracked
variables in one pass.  Rebuilding is idempotent: existing annotations and
memory phis are discarded first.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.dominance import DominatorTree
from repro.ir import instructions as I
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.memory.aliasing import AliasModel
from repro.memory.resources import MemName, MemoryVar
from repro.parallel import cache as analysis_cache


class MemorySSA:
    """The result of memory-SSA construction for one function."""

    def __init__(self, function: Function, alias_model: AliasModel) -> None:
        self.function = function
        self.alias_model = alias_model
        #: Tracked scalar variables, sorted by name.
        self.tracked: List[MemoryVar] = []
        #: The live-on-entry (version 0) name of each tracked variable.
        self.entry_names: Dict[MemoryVar, MemName] = {}

    def names_of(self, var: MemoryVar) -> List[MemName]:
        """All names of ``var`` currently referenced in the function
        (defined by an instruction, or the entry name if used)."""
        names: List[MemName] = []
        seen = set()

        def visit(name: Optional[MemName]) -> None:
            if name is not None and name.var is var and id(name) not in seen:
                seen.add(id(name))
                names.append(name)

        for inst in self.function.instructions():
            for n in inst.mem_uses:
                visit(n)
            for n in inst.mem_defs:
                visit(n)
        return names


def build_memory_ssa(
    function: Function,
    alias_model: AliasModel,
    domtree: Optional[DominatorTree] = None,
) -> MemorySSA:
    """(Re)build memory SSA for ``function``; returns a :class:`MemorySSA`."""
    _clear(function)
    result = MemorySSA(function, alias_model)
    result.tracked = alias_model.tracked_vars(function)
    if not result.tracked:
        return result
    domtree = domtree or analysis_cache.dominator_tree(function)

    # Per-instruction effect sets (computed once; renaming reuses them).
    may_use: Dict[int, List[MemoryVar]] = {}
    may_def: Dict[int, List[MemoryVar]] = {}
    tracked_ids = {id(v) for v in result.tracked}
    for inst in function.instructions():
        may_use[id(inst)] = [
            v for v in alias_model.may_use_vars(function, inst) if id(v) in tracked_ids
        ]
        may_def[id(inst)] = [
            v for v in alias_model.may_def_vars(function, inst) if id(v) in tracked_ids
        ]

    # Phi placement: IDF of each variable's definition blocks.
    phi_vars: Dict[int, List[MemoryVar]] = {id(b): [] for b in domtree.reachable}
    for var in result.tracked:
        def_blocks: List[BasicBlock] = []
        seen = set()
        for block in domtree.reachable:
            for inst in block.instructions:
                if var in may_def[id(inst)] and id(block) not in seen:
                    seen.add(id(block))
                    def_blocks.append(block)
        if not def_blocks:
            continue
        for block in analysis_cache.idf(function, domtree, def_blocks):
            phi_vars[id(block)].append(var)

    for block in domtree.reachable:
        for var in phi_vars[id(block)]:
            name = function.new_mem_name(var)
            phi = I.MemPhi(var, name, [])
            block.insert_at_front(phi)

    # Renaming walk over the dominator tree.
    stacks: Dict[int, List[MemName]] = {}
    for var in result.tracked:
        entry_name = MemName(var, 0, None)
        result.entry_names[var] = entry_name
        stacks[id(var)] = [entry_name]

    def current(var: MemoryVar) -> MemName:
        return stacks[id(var)][-1]

    # Iterative pre/post-order walk (explicit stack to avoid recursion
    # limits on deep dominator trees).
    work: List = [("visit", function.entry)]
    while work:
        action, block = work.pop()
        if action == "leave":
            for inst in reversed(block.instructions):
                for name in inst.mem_defs:
                    stack = stacks[id(name.var)]
                    assert stack[-1] is name
                    stack.pop()
            continue

        pushed: List[MemName] = []
        for inst in block.instructions:
            if isinstance(inst, I.MemPhi):
                # Defined here; incoming names are filled from the preds.
                stacks[id(inst.var)].append(inst.dst_name)
                continue
            uses = may_use[id(inst)]
            if uses:
                inst.mem_uses = [current(v) for v in uses]
            defs = may_def[id(inst)]
            for var in defs:
                name = function.new_mem_name(var, inst)
                inst.mem_defs.append(name)
                stacks[id(var)].append(name)

        for succ in block.succs:
            for phi in succ.mem_phis():
                phi.set_incoming(block, current(phi.var))

        work.append(("leave", block))
        for child in reversed(domtree.children.get(block, [])):
            work.append(("visit", child))

    return result


def _clear(function: Function) -> None:
    """Remove memory phis and all memory-SSA annotations."""
    for block in function.blocks:
        block.instructions = [
            inst for inst in block.instructions if not isinstance(inst, I.MemPhi)
        ]
        for inst in block.instructions:
            inst.mem_uses = []
            inst.mem_defs = []
