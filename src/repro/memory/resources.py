"""Memory resources: base memory variables and their SSA names.

The paper (Section 3) tags memory locations with unique identifiers called
*memory resources*.  A **singleton** resource represents a single scalar
memory location; after SSA renaming a singleton gets multiple SSA *names*,
each with a unique definition.  We model this with two classes:

``MemoryVar``
    The underlying memory location (the "original name"): a global scalar,
    an address-exposed local, a scalar struct field, or an aggregate such
    as an array.  Aggregates are never promoted; they exist so pointer and
    array references have something to alias.

``MemName``
    One SSA name (version) of a ``MemoryVar``.  Version 0 is the value the
    location holds on function entry (it has no defining instruction).
    Every other version is defined by exactly one instruction: a store, a
    memory phi, or an instruction with a may-def (call / pointer store).
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.ir.instructions import Instruction


class VarKind(enum.Enum):
    """What sort of program object a :class:`MemoryVar` stands for."""

    GLOBAL = "global"
    LOCAL = "local"  # address-exposed local scalar
    FIELD = "field"  # scalar component of a structure variable
    ARRAY = "array"  # aggregate; never promotable


class MemoryVar:
    """A single memory location (the paper's singleton resource).

    Promotion candidates are scalar ``MemoryVar``s: globals, address-exposed
    locals, and scalar struct fields.  Arrays are aggregates and are never
    candidates, but they participate in aliasing.
    """

    def __init__(
        self,
        name: str,
        kind: VarKind = VarKind.GLOBAL,
        initial: int = 0,
        size: int = 1,
        initial_values: Optional[list] = None,
    ) -> None:
        self.name = name
        self.kind = kind
        #: Initial memory contents (scalars: the value; arrays: fill value).
        self.initial = initial
        #: Number of cells (1 for scalars, element count for arrays).
        self.size = size
        #: Optional per-cell initializer list for arrays (padded with the
        #: fill value); ``int A[4] = {1, 2};`` sets the first two cells.
        self.initial_values = initial_values
        #: Set by semantic analysis / alias modelling: address was taken.
        self.address_taken = False

    def initial_cells(self) -> list:
        """The memory contents a fresh activation/program starts with."""
        cells = [self.initial] * self.size
        if self.initial_values is not None:
            for i, value in enumerate(self.initial_values[: self.size]):
                cells[i] = value
        return cells

    @property
    def is_scalar(self) -> bool:
        return self.kind is not VarKind.ARRAY

    @property
    def promotable(self) -> bool:
        """Whether register promotion may consider this location at all."""
        return self.is_scalar

    def __repr__(self) -> str:
        return f"MemoryVar({self.name!r}, {self.kind.value})"

    def __str__(self) -> str:
        return self.name


class MemName:
    """One SSA name (version) of a :class:`MemoryVar`.

    ``def_inst`` is ``None`` exactly for the live-on-entry version 0; every
    other name records the instruction that defines it.  Names are compared
    by identity; the (var, version) pair is unique within a function after
    memory-SSA construction.
    """

    __slots__ = ("var", "version", "def_inst")

    def __init__(
        self, var: MemoryVar, version: int, def_inst: Optional["Instruction"] = None
    ) -> None:
        self.var = var
        self.version = version
        self.def_inst = def_inst

    @property
    def is_entry(self) -> bool:
        """True for the version that is live on function entry."""
        return self.version == 0

    def __repr__(self) -> str:
        return f"{self.var.name}_{self.version}"

    def __str__(self) -> str:
        return f"{self.var.name}_{self.version}"
