"""Pipeline tracing and metrics (the observability layer).

One :class:`Observability` bundle — a hierarchical span tracer plus a
metrics registry — threads through a pipeline run:

* enabled (``Observability.recording()``): spans and counters record
  in-memory and export to Chrome-trace / JSONL / metrics-JSON artifacts
  (:mod:`repro.observability.export`);
* disabled (:data:`NULL_OBSERVABILITY`, the default): every
  instrumentation point hits a true null object — no conditionals at
  call sites, no allocation, overhead bounded by the bench overhead gate
  (:mod:`repro.bench.overhead`).

Deep modules report through the ambient registry
(:func:`repro.observability.metrics.ambient`); worker processes record
locally and ship picklable snapshots that the parent merges in module
order, so enabled-mode aggregates are identical between serial and
parallel runs.
"""

from repro.observability.counting import OpCounts
from repro.observability.decisions import (
    DECISIONS_SCHEMA_VERSION,
    NULL_DECISIONS,
    NULL_FUNCTION_DECISIONS,
    DecisionJournal,
    FunctionDecisions,
    NullDecisionJournal,
    NullFunctionDecisions,
)
from repro.observability.decisions import activate as activate_decisions
from repro.observability.export import (
    SCHEMA_VERSION,
    atomic_write_text,
    build_metadata,
    chrome_trace_document,
    metrics_document,
    text_summary,
    write_chrome_trace,
    write_jsonl,
    write_metrics,
    write_trace,
)
from repro.observability.flightrecorder import (
    NULL_FLIGHT_RECORDER,
    FlightRecorder,
    NullFlightRecorder,
)
from repro.observability.metrics import (
    NULL_METRICS,
    MetricsRegistry,
    NullMetrics,
    ambient,
)
from repro.observability.metrics import activate as activate_metrics
from repro.observability.prometheus import CONTENT_TYPE as PROMETHEUS_CONTENT_TYPE
from repro.observability.prometheus import (
    exposition,
    registry_samples,
    wants_text,
)
from repro.observability.tracer import (
    NULL_SPAN,
    NULL_TRACER,
    NullSpan,
    NullTracer,
    Span,
    SpanRecord,
    TraceContext,
    Tracer,
)


class Observability:
    """A tracer and a metrics registry that travel together."""

    __slots__ = ("tracer", "metrics")

    def __init__(self, tracer, metrics) -> None:
        self.tracer = tracer
        self.metrics = metrics

    @property
    def enabled(self) -> bool:
        return self.tracer.enabled or self.metrics.enabled

    @classmethod
    def recording(cls, trace_id=None) -> "Observability":
        """A fresh enabled bundle (one per run or per worker task); a
        ``trace_id`` ties its root spans to a distributed request."""
        return cls(Tracer(trace_id=trace_id), MetricsRegistry())


#: The disabled bundle: shared, stateless, safe to pass everywhere.
NULL_OBSERVABILITY = Observability(NULL_TRACER, NULL_METRICS)

__all__ = [
    "DECISIONS_SCHEMA_VERSION",
    "DecisionJournal",
    "FlightRecorder",
    "FunctionDecisions",
    "NULL_DECISIONS",
    "NULL_FLIGHT_RECORDER",
    "NULL_FUNCTION_DECISIONS",
    "NULL_METRICS",
    "NULL_OBSERVABILITY",
    "NULL_SPAN",
    "NULL_TRACER",
    "MetricsRegistry",
    "NullDecisionJournal",
    "NullFlightRecorder",
    "NullFunctionDecisions",
    "NullMetrics",
    "NullSpan",
    "NullTracer",
    "Observability",
    "OpCounts",
    "PROMETHEUS_CONTENT_TYPE",
    "SCHEMA_VERSION",
    "Span",
    "SpanRecord",
    "TraceContext",
    "Tracer",
    "activate_decisions",
    "activate_metrics",
    "ambient",
    "atomic_write_text",
    "build_metadata",
    "chrome_trace_document",
    "exposition",
    "metrics_document",
    "registry_samples",
    "text_summary",
    "wants_text",
    "write_chrome_trace",
    "write_jsonl",
    "write_metrics",
    "write_trace",
]
