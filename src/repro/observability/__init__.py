"""Pipeline tracing and metrics (the observability layer).

One :class:`Observability` bundle — a hierarchical span tracer plus a
metrics registry — threads through a pipeline run:

* enabled (``Observability.recording()``): spans and counters record
  in-memory and export to Chrome-trace / JSONL / metrics-JSON artifacts
  (:mod:`repro.observability.export`);
* disabled (:data:`NULL_OBSERVABILITY`, the default): every
  instrumentation point hits a true null object — no conditionals at
  call sites, no allocation, overhead bounded by the bench overhead gate
  (:mod:`repro.bench.overhead`).

Deep modules report through the ambient registry
(:func:`repro.observability.metrics.ambient`); worker processes record
locally and ship picklable snapshots that the parent merges in module
order, so enabled-mode aggregates are identical between serial and
parallel runs.
"""

from repro.observability.counting import OpCounts
from repro.observability.export import (
    SCHEMA_VERSION,
    build_metadata,
    chrome_trace_document,
    metrics_document,
    text_summary,
    write_chrome_trace,
    write_jsonl,
    write_metrics,
    write_trace,
)
from repro.observability.metrics import (
    NULL_METRICS,
    MetricsRegistry,
    NullMetrics,
    ambient,
)
from repro.observability.metrics import activate as activate_metrics
from repro.observability.tracer import (
    NULL_SPAN,
    NULL_TRACER,
    NullSpan,
    NullTracer,
    Span,
    SpanRecord,
    Tracer,
)


class Observability:
    """A tracer and a metrics registry that travel together."""

    __slots__ = ("tracer", "metrics")

    def __init__(self, tracer, metrics) -> None:
        self.tracer = tracer
        self.metrics = metrics

    @property
    def enabled(self) -> bool:
        return self.tracer.enabled or self.metrics.enabled

    @classmethod
    def recording(cls) -> "Observability":
        """A fresh enabled bundle (one per run or per worker task)."""
        return cls(Tracer(), MetricsRegistry())


#: The disabled bundle: shared, stateless, safe to pass everywhere.
NULL_OBSERVABILITY = Observability(NULL_TRACER, NULL_METRICS)

__all__ = [
    "NULL_METRICS",
    "NULL_OBSERVABILITY",
    "NULL_SPAN",
    "NULL_TRACER",
    "MetricsRegistry",
    "NullMetrics",
    "NullSpan",
    "NullTracer",
    "Observability",
    "OpCounts",
    "SCHEMA_VERSION",
    "Span",
    "SpanRecord",
    "Tracer",
    "activate_metrics",
    "ambient",
    "build_metadata",
    "chrome_trace_document",
    "metrics_document",
    "text_summary",
    "write_chrome_trace",
    "write_jsonl",
    "write_metrics",
    "write_trace",
]
