"""The one shared load/store counting helper.

Tables 1 and 2, the ``PipelineResult`` report, and the exported run
metrics all quote load/store counts.  Before this module each consumer
walked the IR (or read the interpreter's counters) independently, so a
drift in one walk could make the bench tables and the run metrics
disagree.  Now every count funnels through :class:`OpCounts`:

* :func:`OpCounts.of_function` / :func:`OpCounts.of_module` — the static
  (textual) walk, Table 1's metric;
* :func:`OpCounts.of_execution` — the interpreter's executed-operation
  counters, Table 2's metric.

``StaticCounts`` and ``DynamicCounts`` in
:mod:`repro.promotion.pipeline` are thin views over these, and the
metrics exporter reads the same values, so the two can never disagree.
"""

from __future__ import annotations

from repro.ir import instructions as I


class OpCounts:
    """Loads and stores, wherever they were counted."""

    __slots__ = ("loads", "stores")

    def __init__(self, loads: int = 0, stores: int = 0) -> None:
        self.loads = loads
        self.stores = stores

    @property
    def total(self) -> int:
        return self.loads + self.stores

    def add(self, other: "OpCounts") -> "OpCounts":
        self.loads += other.loads
        self.stores += other.stores
        return self

    @classmethod
    def of_function(cls, function) -> "OpCounts":
        """Static (textual) loads/stores in one function's IR."""
        counts = cls()
        for inst in function.instructions():
            if isinstance(inst, I.Load):
                counts.loads += 1
            elif isinstance(inst, I.Store):
                counts.stores += 1
        return counts

    @classmethod
    def of_module(cls, module) -> "OpCounts":
        """Static (textual) loads/stores across every module function."""
        counts = cls()
        for function in module.functions.values():
            counts.add(cls.of_function(function))
        return counts

    @classmethod
    def of_execution(cls, result) -> "OpCounts":
        """Executed loads/stores from one interpreter run
        (:class:`repro.profile.interp.ExecutionResult`)."""
        return cls(result.loads, result.stores)

    def as_dict(self) -> dict:
        return {"loads": self.loads, "stores": self.stores, "total": self.total}

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, OpCounts):
            return NotImplemented
        return self.loads == other.loads and self.stores == other.stores

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"OpCounts(loads={self.loads}, stores={self.stores})"
