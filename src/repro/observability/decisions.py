"""The promotion decision journal: per-access verdicts with rationale.

The pipeline's counters say *what* promotion did (Tables 1 and 2); the
decision journal says *why*, access by access.  Every ``Load``/``Store``
instruction present when :func:`~repro.promotion.driver.promote_function`
enters a function is a **candidate** — the same walk
:meth:`~repro.observability.counting.OpCounts.of_function` counts, so
the journal and ``StaticCounts`` can never disagree.  As the interval
walk triages webs, each candidate collects a verdict:

* ``promoted`` — replaced by a register copy (loads) or deleted with its
  value carried in a register (stores of a fully promoted web);
* ``partial`` — a store of a web promoted with ``remove_stores=False``:
  the loads went to a register but the store half stayed in memory
  because store removal was unprofitable (the §4.3 split decision);
* ``blocked`` — an aliasing kill (with the killing definition named),
  an unprofitable web (with the profit numbers), the register-pressure
  gate (with the measured chromatic requirement), or membership in no
  promotable web at all.

Verdicts are last-write-wins across the bottom-up interval walk: a load
blocked in an inner interval may be promoted when the parent interval is
processed, exactly as the paper describes.  Accesses promotion *itself*
inserted (compensating loads/stores, dummies) are journaled under a
separate ``compensating`` origin and excluded from the candidate
reconciliation, so ``promoted + partial + blocked == candidates`` holds
by construction — the sweep in :meth:`FunctionDecisions.finish` assigns
every never-triaged candidate a ``not-in-promotable-web`` verdict.

Worker processes journal locally and ship
:meth:`FunctionDecisions.export` documents back on their results; the
parent :meth:`absorbs <DecisionJournal.absorb>` them in module order.
The ambient :func:`activate`/:func:`ambient` pair mirrors
:mod:`repro.observability.metrics`; the disabled path is a null object —
one no-op method call per web, never per access.
"""

from __future__ import annotations

import contextlib
import contextvars
import json
from typing import Dict, Iterator, List, Optional

PROMOTED = "promoted"
PARTIAL = "partial"
BLOCKED = "blocked"

#: Schema version for exported decision documents / JSONL lines.
DECISIONS_SCHEMA_VERSION = 1

_COUNT_KEYS = (PROMOTED, PARTIAL, BLOCKED, "compensating")


def _mem_name(name) -> str:
    return f"{name.var.name}:{name.version}"


def _block_name(inst) -> Optional[str]:
    block = getattr(inst, "block", None)
    return getattr(block, "name", None)


def _killer(name) -> Dict[str, object]:
    """Describe the definition that kills a load's promotability: the
    reaching def of its resource is not a store/phi of the web, so it is
    an aliased definition (call, pointer store) or the live-on-entry
    state of memory."""
    def_inst = getattr(name, "def_inst", None)
    if def_inst is None:
        return {"killed_by": "live-on-entry", "killer": None}
    return {
        "killed_by": type(def_inst).__name__,
        "killer": _block_name(def_inst),
    }


class FunctionDecisions:
    """The journal of one function's promotion run (one per attempt)."""

    enabled = True

    def __init__(self, journal: "DecisionJournal", function) -> None:
        from repro.ir import instructions as I

        self._journal = journal
        self.name = function.name
        #: id(inst) -> candidate info.  Strong refs to the instructions
        #: are kept (``inst``) so ids stay unique for the journal's
        #: lifetime even after promotion deletes an instruction.
        self._candidates: Dict[int, Dict[str, object]] = {}
        self._order: List[int] = []
        for inst in function.instructions():
            if isinstance(inst, I.Load):
                access = "load"
            elif isinstance(inst, I.Store):
                access = "store"
            else:
                continue
            key = id(inst)
            self._candidates[key] = {
                "inst": inst,
                "access": access,
                "var": inst.var.name,
                "block": _block_name(inst),
            }
            self._order.append(key)
        self._verdicts: Dict[int, Dict[str, object]] = {}
        #: Verdicts on accesses promotion inserted itself (not candidates).
        self._inserted: Dict[int, Dict[str, object]] = {}
        self._inserted_order: List[int] = []

    # -- decision sites (called once per web by the driver) --------------

    def web_blocked_pressure(self, web, interval, pressure: int, limit: int) -> None:
        where = self._where(interval)
        detail = {"pressure": pressure, "pressure_limit": limit}
        for load in web.load_refs:
            self._assign(load, "load", web, where, BLOCKED, "pressure-limit", detail)
        for store in web.store_refs:
            self._assign(store, "store", web, where, BLOCKED, "pressure-limit", detail)

    def web_skipped(self, web, interval, plan) -> None:
        """An unprofitable web: nothing promoted, everything stays."""
        where = self._where(interval)
        detail = _plan_detail(plan)
        for load in web.load_refs:
            self._assign(load, "load", web, where, BLOCKED, "unprofitable", detail)
        for store in web.store_refs:
            self._assign(store, "store", web, where, BLOCKED, "unprofitable", detail)

    def web_promoted(self, web, interval, plan) -> None:
        """A promoted web with definitions: replaceable loads are
        promoted, alias-killed loads blocked with their killer named,
        stores promoted or left partial by the store-removal decision."""
        where = self._where(interval)
        detail = _plan_detail(plan)
        replaceable = {id(load) for load in plan.replaceable_loads}
        for load in web.load_refs:
            if id(load) in replaceable:
                self._assign(
                    load, "load", web, where, PROMOTED, "replaced-by-register", detail
                )
            else:
                kill = dict(detail)
                kill.update(_killer(load.mem_uses[0]))
                self._assign(load, "load", web, where, BLOCKED, "alias-kill", kill)
        if plan.remove_stores:
            for store in web.store_refs:
                self._assign(
                    store, "store", web, where, PROMOTED, "store-removed", detail
                )
        else:
            for store in web.store_refs:
                self._assign(
                    store,
                    "store",
                    web,
                    where,
                    PARTIAL,
                    "store-removal-unprofitable",
                    detail,
                )

    def web_promoted_no_defs(self, web, interval, plan) -> None:
        """The degenerate no-defs promotion: every load of the web is
        served by one entry load in the preheader."""
        where = self._where(interval)
        detail = _plan_detail(plan)
        for load in web.load_refs:
            self._assign(
                load, "load", web, where, PROMOTED, "hoisted-entry-load", detail
            )

    def inserted(self, inst, access: str, web, interval, role: str) -> None:
        """A compensating access at its insertion site (a phi-leaf load,
        a flush store before an aliased load, an interval-tail store, the
        entry load of a no-defs web, or a dummy summarizing the web for
        the parent).  Journaled under the ``compensating`` origin; if the
        parent interval later re-triages it, the verdict is overwritten
        in place."""
        where = self._where(interval)
        self._assign(inst, access, web, where, "inserted", role, None)

    def finish(self) -> None:
        """Sweep: every candidate never claimed by a web was an access to
        memory no web could promote.  Commits the document to the journal
        and bumps the ambient ``decision.*`` counters."""
        from repro.observability.metrics import ambient as ambient_metrics

        for key in self._order:
            if key not in self._verdicts:
                candidate = self._candidates[key]
                self._verdicts[key] = {
                    "verdict": BLOCKED,
                    "reason": "not-in-promotable-web",
                    "web": None,
                    "interval": None,
                    "detail": None,
                    **{
                        field: candidate[field]
                        for field in ("access", "var", "block")
                    },
                }
        doc = self.export()
        metrics = ambient_metrics()
        counts = doc["counts"]
        metrics.inc("decision.candidates", counts["candidates"])
        for verdict in _COUNT_KEYS:
            metrics.inc(f"decision.{verdict}", counts[verdict])
        self._journal._commit(doc)

    # -- internals -------------------------------------------------------

    @staticmethod
    def _where(interval) -> str:
        return "<root>" if interval.is_root else interval.header.name

    def _assign(
        self,
        inst,
        access: str,
        web,
        where: str,
        verdict: str,
        reason: str,
        detail: Optional[Dict[str, object]],
    ) -> None:
        record = {
            "access": access,
            "var": web.var.name,
            "block": _block_name(inst),
            "verdict": verdict,
            "reason": reason,
            "web": _mem_name(web.names[0]) if web.names else web.var.name,
            "interval": where,
            "detail": dict(detail) if detail else None,
        }
        key = id(inst)
        if key in self._candidates:
            self._verdicts[key] = record
            return
        # An access promotion inserted in an inner interval, re-triaged by
        # an enclosing one: journaled, but outside the reconciliation.
        if key not in self._inserted:
            self._inserted_order.append(key)
            # Keep the instruction alive so the id stays unique.
            record["inst"] = inst
        else:
            record["inst"] = self._inserted[key]["inst"]
        self._inserted[key] = record

    def export(self) -> Dict[str, object]:
        """The function's decision document: JSON-safe, picklable."""
        accesses: List[Dict[str, object]] = []
        counts = {"candidates": len(self._order)}
        counts.update({key: 0 for key in _COUNT_KEYS})
        for key in self._order:
            record = dict(self._verdicts[key])
            record["origin"] = "candidate"
            counts[record["verdict"]] += 1
            accesses.append(record)
        for key in self._inserted_order:
            record = {
                k: v for k, v in self._inserted[key].items() if k != "inst"
            }
            record["origin"] = "compensating"
            counts["compensating"] += 1
            accesses.append(record)
        return {
            "function": self.name,
            "status": "committed",
            "counts": counts,
            "accesses": accesses,
        }


class NullFunctionDecisions:
    """The disabled per-function journal: every site is a no-op."""

    __slots__ = ()
    enabled = False
    name = ""

    def web_blocked_pressure(self, web, interval, pressure, limit) -> None:
        return None

    def web_skipped(self, web, interval, plan) -> None:
        return None

    def web_promoted(self, web, interval, plan) -> None:
        return None

    def web_promoted_no_defs(self, web, interval, plan) -> None:
        return None

    def inserted(self, inst, access, web, interval, role) -> None:
        return None

    def finish(self) -> None:
        return None


class DecisionJournal:
    """Per-function decision documents, in commit (module) order."""

    enabled = True

    def __init__(self) -> None:
        self._docs: Dict[str, Dict[str, object]] = {}
        self._order: List[str] = []

    def function(self, function) -> FunctionDecisions:
        """Open the journal for one function's promotion attempt."""
        return FunctionDecisions(self, function)

    def _commit(self, doc: Dict[str, object]) -> None:
        name = str(doc.get("function"))
        if name not in self._docs:
            self._order.append(name)
        self._docs[name] = doc

    def mark(self, name: str, status: str) -> None:
        """Re-stamp a function's document after the pipeline's verdict
        (``rolled_back``, ``quarantined``): its decisions describe an
        attempt whose transformations were not kept."""
        doc = self._docs.get(name)
        if doc is not None:
            doc["status"] = status

    def absorb(self, exported: Optional[Dict[str, object]]) -> None:
        """Adopt a worker's exported function document (module order is
        the caller's responsibility, as for spans and metrics)."""
        if exported:
            self._commit(dict(exported))

    def export(self) -> List[Dict[str, object]]:
        return [self._docs[name] for name in self._order]

    def summary(self) -> Dict[str, object]:
        """The roll-up stored in ``PipelineDiagnostics.decisions``."""
        totals = {"candidates": 0}
        totals.update({key: 0 for key in _COUNT_KEYS})
        statuses: Dict[str, int] = {}
        for doc in self.export():
            status = str(doc.get("status", "committed"))
            statuses[status] = statuses.get(status, 0) + 1
            if status != "committed":
                continue
            for key, value in doc["counts"].items():
                totals[key] = totals.get(key, 0) + int(value)
        return {
            "version": DECISIONS_SCHEMA_VERSION,
            "functions": len(self._order),
            "statuses": statuses,
            "totals": totals,
        }

    def jsonl_lines(
        self, metadata: Optional[Dict[str, object]] = None
    ) -> Iterator[str]:
        """One ``metadata`` line, then one line per journaled access."""
        head: Dict[str, object] = {
            "type": "metadata",
            "version": DECISIONS_SCHEMA_VERSION,
            "summary": self.summary(),
        }
        if metadata:
            head.update(metadata)
        yield json.dumps(head, sort_keys=True)
        for doc in self.export():
            for record in doc["accesses"]:
                line = {
                    "type": "decision",
                    "function": doc["function"],
                    "status": doc["status"],
                }
                line.update(record)
                yield json.dumps(line, sort_keys=True)

    def write(self, path: str, metadata: Optional[Dict[str, object]] = None) -> None:
        from repro.observability.export import atomic_write_text

        atomic_write_text(path, "\n".join(self.jsonl_lines(metadata)) + "\n")


class NullDecisionJournal:
    """The disabled journal — a true null object."""

    __slots__ = ()
    enabled = False

    def function(self, function) -> NullFunctionDecisions:
        return NULL_FUNCTION_DECISIONS

    def mark(self, name: str, status: str) -> None:
        return None

    def absorb(self, exported) -> None:
        return None

    def export(self) -> List[Dict[str, object]]:
        return []

    def summary(self) -> Dict[str, object]:
        return {}

    def jsonl_lines(self, metadata=None) -> Iterator[str]:
        return iter(())

    def write(self, path: str, metadata=None) -> None:
        return None


NULL_FUNCTION_DECISIONS = NullFunctionDecisions()
NULL_DECISIONS = NullDecisionJournal()


def _plan_detail(plan) -> Dict[str, object]:
    rationale = getattr(plan, "rationale", None)
    if callable(rationale):
        return dict(rationale())
    return {
        "profit_loads": plan.profit_loads,
        "profit_stores": plan.profit_stores,
        "profit": plan.profit,
        "loads_added": len(plan.loads_added),
        "stores_added": len(plan.stores_added),
        "replaceable_loads": len(plan.replaceable_loads),
        "remove_stores": plan.remove_stores,
        "worthwhile": plan.worthwhile,
    }


# -- ambient journal -------------------------------------------------------

_ACTIVE: contextvars.ContextVar[Optional[DecisionJournal]] = contextvars.ContextVar(
    "repro-decision-journal", default=None
)


def ambient() -> "DecisionJournal | NullDecisionJournal":
    """The journal installed by the innermost :func:`activate`, or the
    null journal — the driver records unconditionally."""
    journal = _ACTIVE.get()
    return NULL_DECISIONS if journal is None else journal


@contextlib.contextmanager
def activate(journal: Optional[DecisionJournal]):
    """Install ``journal`` as the ambient decision sink (None deactivates)."""
    token = _ACTIVE.set(journal)
    try:
        yield journal
    finally:
        _ACTIVE.reset(token)
