"""Exporters for recorded traces and metrics.

Three artifact formats, all stamped with the same self-describing
metadata block (schema version, ``profile_source``, and the pipeline
configuration — jobs, cache, chaos seed, timeout/retries):

* :func:`write_chrome_trace` — the Chrome trace-event format
  (``chrome://tracing`` / Perfetto's *Open trace file*): one complete
  (``"ph": "X"``) event per span, with the recording process id as the
  Chrome ``pid`` so parent and worker lanes render separately;
* :func:`write_jsonl` — a line-per-event log (metadata line, then span
  lines in record order, then metric lines) for ad-hoc ``jq``/grep;
* :func:`write_metrics` — the metrics registry as one JSON document;
* :func:`text_summary` — a human-readable span tree plus metric table.

``--trace-out`` picks the trace format by suffix: ``.jsonl`` writes the
event log, anything else the Chrome trace.
"""

from __future__ import annotations

import json
import os
import tempfile
from typing import Dict, List, Optional

from repro.observability.tracer import SpanRecord, Tracer

#: Version of the exported artifact schema *and* of the ``observability``
#: section in ``PipelineDiagnostics`` — bump together.
SCHEMA_VERSION = 1


def atomic_write_text(path: str, text: str) -> None:
    """Write ``text`` to ``path`` atomically: a temp file in the same
    directory, fsynced, then ``os.replace``d over the target.  A crashed
    or killed run leaves either the old artifact or the new one on disk,
    never a truncated hybrid — CI jobs that upload artifacts on failure
    depend on this."""
    directory = os.path.dirname(os.path.abspath(path))
    fd, tmp_path = tempfile.mkstemp(
        prefix=os.path.basename(path) + ".", suffix=".tmp", dir=directory
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_path, path)
    except BaseException:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass
        raise


def build_metadata(
    profile_source: Optional[str] = None,
    config: Optional[Dict[str, object]] = None,
    **extra: object,
) -> Dict[str, object]:
    """The stamp shared by every exported artifact."""
    metadata: Dict[str, object] = {
        "schema_version": SCHEMA_VERSION,
        "generator": "repro-observability",
        "profile_source": profile_source,
        "config": dict(config or {}),
    }
    metadata.update(extra)
    return metadata


# -- Chrome trace ----------------------------------------------------------


def chrome_trace_document(
    tracer: Tracer, metadata: Optional[Dict[str, object]] = None
) -> Dict[str, object]:
    """The trace as a Chrome trace-event JSON object document."""
    records = tracer.records
    base_s = min((r.start_s for r in records), default=0.0)
    events: List[Dict[str, object]] = []
    pids = []
    for record in records:
        if record.pid not in pids:
            pids.append(record.pid)
    parent_pid = pids[0] if pids else 0
    for pid in pids:
        label = "pipeline" if pid == parent_pid else f"worker pid {pid}"
        events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": label},
            }
        )
    for record in records:
        events.append(
            {
                "name": record.name,
                "cat": record.category,
                "ph": "X",
                "ts": round((record.start_s - base_s) * 1e6, 3),
                "dur": round(record.duration_ms * 1e3, 3),
                "pid": record.pid,
                "tid": 0,
                "args": dict(record.attrs),
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": metadata or build_metadata(),
    }


def write_chrome_trace(
    path: str, tracer: Tracer, metadata: Optional[Dict[str, object]] = None
) -> None:
    atomic_write_text(
        path, json.dumps(chrome_trace_document(tracer, metadata), indent=2) + "\n"
    )


# -- JSONL event log -------------------------------------------------------


def jsonl_lines(
    tracer: Tracer,
    metrics=None,
    metadata: Optional[Dict[str, object]] = None,
) -> List[str]:
    lines = [json.dumps({"type": "metadata", **(metadata or build_metadata())})]
    for record in tracer.records:
        lines.append(json.dumps({"type": "span", **record.as_dict()}))
    if metrics is not None:
        for name, doc in metrics.as_dict().items():
            # The instrument doc's own "type" (counter/gauge/histogram)
            # must not clobber the event type; it becomes "kind".
            event = {"type": "metric", "name": name}
            event.update(
                ("kind", v) if k == "type" else (k, v) for k, v in doc.items()
            )
            lines.append(json.dumps(event))
    return lines


def write_jsonl(
    path: str,
    tracer: Tracer,
    metrics=None,
    metadata: Optional[Dict[str, object]] = None,
) -> None:
    atomic_write_text(
        path, "".join(line + "\n" for line in jsonl_lines(tracer, metrics, metadata))
    )


def write_trace(
    path: str,
    tracer: Tracer,
    metrics=None,
    metadata: Optional[Dict[str, object]] = None,
) -> None:
    """Suffix-dispatched trace export: ``.jsonl`` → event log, else
    Chrome trace."""
    if path.endswith(".jsonl"):
        write_jsonl(path, tracer, metrics, metadata)
    else:
        write_chrome_trace(path, tracer, metadata)


# -- metrics ---------------------------------------------------------------


def metrics_document(
    metrics, metadata: Optional[Dict[str, object]] = None
) -> Dict[str, object]:
    return {
        "schema_version": SCHEMA_VERSION,
        "metadata": metadata or build_metadata(),
        "metrics": metrics.as_dict(),
    }


def write_metrics(
    path: str, metrics, metadata: Optional[Dict[str, object]] = None
) -> None:
    atomic_write_text(
        path,
        json.dumps(metrics_document(metrics, metadata), indent=2, sort_keys=True)
        + "\n",
    )


# -- text summary ----------------------------------------------------------


def text_summary(tracer: Tracer, metrics=None, max_depth: int = 4) -> str:
    """A terminal-friendly span tree (durations in ms) plus the metric
    values — the quick look before reaching for Perfetto."""
    lines: List[str] = []

    by_parent: Dict[Optional[int], List[SpanRecord]] = {}
    for record in tracer.records:
        by_parent.setdefault(record.parent, []).append(record)

    def walk(record: SpanRecord, depth: int) -> None:
        indent = "  " * depth
        attrs = ""
        if record.attrs:
            shown = ", ".join(f"{k}={v}" for k, v in sorted(record.attrs.items()))
            attrs = f"  [{shown}]"
        lines.append(f"{indent}{record.name}  {record.duration_ms:.2f}ms{attrs}")
        if depth + 1 >= max_depth:
            return
        for child in by_parent.get(record.id, ()):
            walk(child, depth + 1)

    if tracer.records:
        lines.append("spans:")
        for root in by_parent.get(None, ()):
            walk(root, 1)
    if metrics is not None and len(metrics):
        lines.append("metrics:")
        for name, doc in metrics.as_dict().items():
            if doc["type"] == "histogram":
                lines.append(
                    f"  {name}: n={doc['count']} sum={doc['sum']}{doc['unit']}"
                    f" min={doc['min']} max={doc['max']}"
                )
            else:
                lines.append(f"  {name}: {doc['value']} {doc['unit']}")
    return "\n".join(lines)
