"""The crash flight recorder: a bounded ring of recent service events.

Post-mortems of a crashed daemon, a tripped breaker, or a SIGTERM drain
need the *last few seconds* of context — which jobs were admitted, what
the breaker saw, which backend was failing — not a full trace of the
process lifetime.  :class:`FlightRecorder` keeps a fixed-capacity ring
buffer of timestamped events (``record`` is an O(1) append; old events
fall off the far end) and :meth:`dump` writes the whole ring atomically
to the artifacts directory when something goes wrong: an engine crash, a
quarantine, a breaker opening, or a graceful drain.  CI uploads the
dumps on failure.

Recording is unconditional at call sites via the module-level
:func:`install`/:func:`ambient` pair — deliberately a plain global, not
a ``ContextVar``: the recorder belongs to the *process* (daemon or
router), and asyncio task-context copies would strand per-task values.
The default :data:`NULL_FLIGHT_RECORDER` swallows everything, so code
paths shared with library use (the resilient executor, the breaker)
cost a no-op method call when no recorder is installed.
"""

from __future__ import annotations

import collections
import json
import time
from typing import Callable, Deque, Dict, List, Optional

_FILENAME_OK = "abcdefghijklmnopqrstuvwxyz0123456789-"


def _slug(text: str) -> str:
    cleaned = "".join(
        ch if ch in _FILENAME_OK else "-" for ch in text.lower().strip()
    )
    return cleaned.strip("-") or "event"


class FlightRecorder:
    """A named ring buffer of recent events, dumpable to JSON."""

    enabled = True

    def __init__(
        self,
        name: str,
        capacity: int = 512,
        artifacts_dir: Optional[str] = None,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.name = name
        self.capacity = capacity
        self.artifacts_dir = artifacts_dir
        self._clock = clock or time.time
        self._ring: Deque[Dict[str, object]] = collections.deque(maxlen=capacity)
        self.recorded_total = 0
        self.dumps = 0

    def record(self, kind: str, **fields: object) -> None:
        """Append one event; the oldest event falls off at capacity."""
        event: Dict[str, object] = {"t": self._clock(), "kind": kind}
        event.update(fields)
        self._ring.append(event)
        self.recorded_total += 1

    def snapshot(self) -> List[Dict[str, object]]:
        return list(self._ring)

    def dump(self, reason: str, artifacts_dir: Optional[str] = None) -> Optional[str]:
        """Write the ring to ``flight-<name>-<pid>-<reason>-<seq>.json``
        in the artifacts dir (atomic; see export.atomic_write_text).  The
        pid keeps sibling processes sharing one artifacts dir — a
        cluster's three daemons all named ``daemon`` — from overwriting
        each other's black boxes.  Returns the path, or ``None`` when no
        artifacts dir is configured or the write failed — a dying process
        must never die harder because its black box could not be written.
        """
        directory = artifacts_dir or self.artifacts_dir
        if not directory:
            return None
        import os

        self.dumps += 1
        document = {
            "recorder": self.name,
            "reason": reason,
            "pid": os.getpid(),
            "sequence": self.dumps,
            "dumped_at": self._clock(),
            "capacity": self.capacity,
            "recorded_total": self.recorded_total,
            "events": self.snapshot(),
        }
        path = (
            f"{directory}/flight-{_slug(self.name)}-{os.getpid()}"
            f"-{_slug(reason)}-{self.dumps:03d}.json"
        )
        try:
            from repro.observability.export import atomic_write_text

            os.makedirs(directory, exist_ok=True)
            atomic_write_text(
                path, json.dumps(document, indent=2, sort_keys=True, default=str)
            )
        except OSError:
            return None
        return path

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "capacity": self.capacity,
            "recorded_total": self.recorded_total,
            "buffered": len(self._ring),
            "dumps": self.dumps,
        }


class NullFlightRecorder:
    """The disabled recorder: records nothing, dumps nowhere."""

    __slots__ = ()
    enabled = False
    name = "null"
    recorded_total = 0
    dumps = 0

    def record(self, kind: str, **fields: object) -> None:
        return None

    def snapshot(self) -> List[Dict[str, object]]:
        return []

    def dump(self, reason: str, artifacts_dir: Optional[str] = None) -> None:
        return None

    def as_dict(self) -> Dict[str, object]:
        return {"name": "null", "recorded_total": 0, "buffered": 0, "dumps": 0}


NULL_FLIGHT_RECORDER = NullFlightRecorder()

#: The process-wide recorder.  A plain global on purpose — see the
#: module docstring for why this is not a ``ContextVar``.
_INSTALLED: "FlightRecorder | NullFlightRecorder" = NULL_FLIGHT_RECORDER


def install(
    recorder: "Optional[FlightRecorder | NullFlightRecorder]",
) -> "FlightRecorder | NullFlightRecorder":
    """Install the process-wide recorder (None resets to the null
    recorder); returns the previously installed one."""
    global _INSTALLED
    previous = _INSTALLED
    _INSTALLED = recorder if recorder is not None else NULL_FLIGHT_RECORDER
    return previous


def ambient() -> "FlightRecorder | NullFlightRecorder":
    """The installed process-wide recorder, or the null recorder."""
    return _INSTALLED
