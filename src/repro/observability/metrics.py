"""The promotion metrics registry: counters, gauges, and histograms.

Instruments the *events* of a pipeline run — webs built and promoted,
loads/stores deleted, compensating loads/stores inserted, phis placed by
the incremental SSA updater vs. the CSS96 comparator, analysis-cache
hits/misses, and the resilient executor's retry/timeout/quarantine
counters — as named instruments with units, serializable to one JSON
document (see :mod:`repro.observability.export`).

Deep modules (:mod:`repro.ssa.incremental`, :mod:`repro.ssa.css96`)
report through the **ambient** registry: :func:`activate` installs a
registry on a :class:`contextvars.ContextVar` (the same pattern as
:mod:`repro.parallel.cache`), and :func:`ambient` returns the installed
registry or the no-op :data:`NULL_METRICS` — so instrumented code never
tests whether metrics are on.

Worker processes record into their own registry and ship
:meth:`MetricsRegistry.as_dict` snapshots back with their results; the
parent :meth:`absorbs <MetricsRegistry.absorb>` them in module order, so
aggregate counters are identical to a serial run's.
"""

from __future__ import annotations

import contextlib
import contextvars
from typing import Dict, Optional


class Counter:
    """A monotonically increasing count of events."""

    __slots__ = ("name", "unit", "value")

    kind = "counter"

    def __init__(self, name: str, unit: str = "count") -> None:
        self.name = name
        self.unit = unit
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def as_dict(self) -> Dict[str, object]:
        return {"type": self.kind, "unit": self.unit, "value": self.value}


class Gauge:
    """A last-written value (e.g. a before/after operation count)."""

    __slots__ = ("name", "unit", "value")

    kind = "gauge"

    def __init__(self, name: str, unit: str = "count") -> None:
        self.name = name
        self.unit = unit
        self.value: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = value

    def as_dict(self) -> Dict[str, object]:
        return {"type": self.kind, "unit": self.unit, "value": self.value}


class Histogram:
    """A summarized distribution: count, sum, min, max."""

    __slots__ = ("name", "unit", "count", "sum", "min", "max")

    kind = "histogram"

    def __init__(self, name: str, unit: str = "ms") -> None:
        self.name = name
        self.unit = unit
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def as_dict(self) -> Dict[str, object]:
        return {
            "type": self.kind,
            "unit": self.unit,
            "count": self.count,
            "sum": round(self.sum, 3),
            "min": None if self.min is None else round(self.min, 3),
            "max": None if self.max is None else round(self.max, 3),
        }


class MetricsRegistry:
    """Named instruments, get-or-create by name.

    ``ops`` counts every recording call — the overhead gate multiplies it
    by the measured per-op cost to bound instrumentation overhead.
    """

    def __init__(self) -> None:
        self._instruments: Dict[str, object] = {}
        self.ops = 0

    @property
    def enabled(self) -> bool:
        return True

    def _get(self, cls, name: str, unit: str):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = cls(name, unit)
            self._instruments[name] = instrument
        elif not isinstance(instrument, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {cls.__name__}"
            )
        return instrument

    def counter(self, name: str, unit: str = "count") -> Counter:
        return self._get(Counter, name, unit)

    def gauge(self, name: str, unit: str = "count") -> Gauge:
        return self._get(Gauge, name, unit)

    def histogram(self, name: str, unit: str = "ms") -> Histogram:
        return self._get(Histogram, name, unit)

    # -- recording conveniences (one call per event at the call sites) ---

    def inc(self, name: str, amount: int = 1, unit: str = "count") -> None:
        self.ops += 1
        self.counter(name, unit).inc(amount)

    def set(self, name: str, value: float, unit: str = "count") -> None:
        self.ops += 1
        self.gauge(name, unit).set(value)

    def observe(self, name: str, value: float, unit: str = "ms") -> None:
        self.ops += 1
        self.histogram(name, unit).observe(value)

    # -- aggregation -----------------------------------------------------

    def absorb(self, snapshot: Optional[Dict[str, Dict[str, object]]]) -> None:
        """Merge another registry's :meth:`as_dict` snapshot into this one:
        counters add, gauges last-write-wins, histograms pool."""
        if not snapshot:
            return
        for name, doc in snapshot.items():
            kind = doc.get("type")
            unit = str(doc.get("unit", "count"))
            if kind == "counter":
                self.counter(name, unit).inc(int(doc.get("value", 0) or 0))
            elif kind == "gauge":
                value = doc.get("value")
                if value is not None:
                    self.gauge(name, unit).set(value)
            elif kind == "histogram":
                histogram = self.histogram(name, unit)
                count = int(doc.get("count", 0) or 0)
                if count:
                    histogram.count += count
                    histogram.sum += float(doc.get("sum", 0.0) or 0.0)
                    for key, pick in (("min", min), ("max", max)):
                        value = doc.get(key)
                        if value is None:
                            continue
                        current = getattr(histogram, key)
                        setattr(
                            histogram,
                            key,
                            value if current is None else pick(current, value),
                        )

    def as_dict(self) -> Dict[str, Dict[str, object]]:
        return {
            name: instrument.as_dict()
            for name, instrument in sorted(self._instruments.items())
        }

    def value(self, name: str) -> object:
        """The current value of a counter/gauge (None when unregistered)."""
        instrument = self._instruments.get(name)
        return getattr(instrument, "value", None)

    def __len__(self) -> int:
        return len(self._instruments)


class _NullInstrument:
    """Counter/gauge/histogram stand-in that discards everything."""

    __slots__ = ()
    value = 0

    def inc(self, amount: int = 1) -> None:
        return None

    def set(self, value: float) -> None:
        return None

    def observe(self, value: float) -> None:
        return None


class NullMetrics:
    """The disabled registry — same surface, no state, no branches at
    call sites."""

    __slots__ = ()
    ops = 0

    @property
    def enabled(self) -> bool:
        return False

    def counter(self, name: str, unit: str = "count") -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, unit: str = "count") -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(self, name: str, unit: str = "ms") -> _NullInstrument:
        return _NULL_INSTRUMENT

    def inc(self, name: str, amount: int = 1, unit: str = "count") -> None:
        return None

    def set(self, name: str, value: float, unit: str = "count") -> None:
        return None

    def observe(self, name: str, value: float, unit: str = "ms") -> None:
        return None

    def absorb(self, snapshot) -> None:
        return None

    def as_dict(self) -> Dict[str, Dict[str, object]]:
        return {}

    def value(self, name: str) -> None:
        return None

    def __len__(self) -> int:
        return 0


_NULL_INSTRUMENT = _NullInstrument()
NULL_METRICS = NullMetrics()


# -- ambient registry ------------------------------------------------------

_ACTIVE: contextvars.ContextVar[Optional[MetricsRegistry]] = contextvars.ContextVar(
    "repro-metrics-registry", default=None
)


def ambient() -> "MetricsRegistry | NullMetrics":
    """The registry installed by the innermost :func:`activate`, or the
    no-op registry — instrumented code records unconditionally."""
    # Explicit None test: an empty registry is falsy (len() == 0) but
    # still the active sink.
    registry = _ACTIVE.get()
    return NULL_METRICS if registry is None else registry


@contextlib.contextmanager
def activate(registry: Optional[MetricsRegistry]):
    """Install ``registry`` as the ambient metrics sink (None deactivates)."""
    token = _ACTIVE.set(registry)
    try:
        yield registry
    finally:
        _ACTIVE.reset(token)
