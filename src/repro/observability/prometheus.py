"""Prometheus text-exposition rendering for metrics documents.

The service tier speaks JSON by default (`GET /metrics` on the daemon
and the router), but a scraping fleet wants the Prometheus text format
(version 0.0.4).  This module is a pure renderer: it converts either a
:meth:`~repro.observability.metrics.MetricsRegistry.as_dict` snapshot or
a plain nested dict of numeric values (the daemon's admission/breaker/
engine document) into :class:`Sample` rows, then
:func:`exposition` groups them by metric name — one ``# TYPE`` comment
per name, every labelled series beneath it — and returns the exposition
body.

Naming follows the Prometheus data model: dots and dashes become
underscores, counters keep their registry name (plus labels), histogram
summaries expand to ``_count``/``_sum``/``_min``/``_max`` series.  The
renderer never raises on odd values — non-numeric leaves are skipped,
``None`` gauges are withheld — because ``/metrics`` must stay servable
while the process is degraded.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, List, Mapping, Optional

#: The content type a text-exposition response must carry.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def metric_name(name: str, namespace: str = "") -> str:
    """A raw registry name (``router.jobs_total``) as a valid Prometheus
    metric name, optionally under a ``namespace`` prefix."""
    full = f"{namespace}.{name}" if namespace else name
    sanitized = _NAME_OK.sub("_", full)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _render_labels(labels: Optional[Mapping[str, str]]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label(str(value))}"' for key, value in sorted(labels.items())
    )
    return "{" + inner + "}"


class Sample:
    """One exposition row: a metric name, its type, labels, and a value."""

    __slots__ = ("name", "kind", "labels", "value")

    def __init__(
        self,
        name: str,
        kind: str,
        value: float,
        labels: Optional[Mapping[str, str]] = None,
    ) -> None:
        self.name = name
        self.kind = kind
        self.labels = dict(labels or {})
        self.value = value

    def line(self) -> str:
        value = self.value
        if isinstance(value, bool):
            value = int(value)
        if isinstance(value, float) and value.is_integer():
            value = int(value)
        return f"{self.name}{_render_labels(self.labels)} {value}"


def _numeric(value: object) -> Optional[float]:
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, (int, float)):
        return float(value)
    return None


def registry_samples(
    snapshot: Mapping[str, Mapping[str, object]],
    namespace: str = "repro",
    labels: Optional[Mapping[str, str]] = None,
) -> List[Sample]:
    """Samples for a :meth:`MetricsRegistry.as_dict` snapshot.

    Counters and gauges map one-to-one; a histogram becomes
    ``_count``/``_sum`` (and ``_min``/``_max`` gauges when observed).
    Gauges that were never set (value ``None``) are withheld rather than
    exported as a misleading zero.
    """
    samples: List[Sample] = []
    for name, doc in snapshot.items():
        kind = doc.get("type")
        base = metric_name(name, namespace)
        if kind == "counter":
            samples.append(
                Sample(base, "counter", float(doc.get("value", 0) or 0), labels)
            )
        elif kind == "gauge":
            value = _numeric(doc.get("value"))
            if value is not None:
                samples.append(Sample(base, "gauge", value, labels))
        elif kind == "histogram":
            samples.append(
                Sample(base + "_count", "counter", float(doc.get("count", 0) or 0), labels)
            )
            samples.append(
                Sample(base + "_sum", "counter", float(doc.get("sum", 0.0) or 0.0), labels)
            )
            for stat in ("min", "max"):
                value = _numeric(doc.get(stat))
                if value is not None:
                    samples.append(Sample(f"{base}_{stat}", "gauge", value, labels))
    return samples


def document_samples(
    doc: Mapping[str, object],
    namespace: str,
    labels: Optional[Mapping[str, str]] = None,
) -> List[Sample]:
    """Samples for a plain nested document (e.g. the daemon's
    ``/metrics`` JSON: admission, breaker, and engine counters).

    Nested dicts flatten with ``_`` joins; numeric and boolean leaves
    become gauges; strings and ``None`` are skipped.
    """
    samples: List[Sample] = []
    _flatten(doc, namespace, labels, samples)
    return samples


def _flatten(
    doc: Mapping[str, object],
    prefix: str,
    labels: Optional[Mapping[str, str]],
    out: List[Sample],
) -> None:
    for key in sorted(doc):
        value = doc[key]
        name = f"{prefix}.{key}" if prefix else str(key)
        if isinstance(value, Mapping):
            _flatten(value, name, labels, out)
            continue
        number = _numeric(value)
        if number is not None:
            out.append(Sample(metric_name(name), "gauge", number, labels))


def exposition(samples: Iterable[Sample]) -> str:
    """The text-exposition body: samples grouped by metric name in
    first-seen order, one ``# TYPE`` comment per name."""
    by_name: Dict[str, List[Sample]] = {}
    kinds: Dict[str, str] = {}
    for sample in samples:
        by_name.setdefault(sample.name, []).append(sample)
        kinds.setdefault(sample.name, sample.kind)
    lines: List[str] = []
    for name, group in by_name.items():
        lines.append(f"# TYPE {name} {kinds[name]}")
        lines.extend(sample.line() for sample in group)
    return "\n".join(lines) + ("\n" if lines else "")


def wants_text(accept_header: Optional[str]) -> bool:
    """Content negotiation: the client asked for the text exposition.

    JSON stays the default — only an explicit ``text/plain`` (or an
    OpenMetrics accept) selects the Prometheus body, so existing JSON
    consumers (the smokes, `repro-report`) keep working unchanged.
    """
    if not accept_header:
        return False
    accept = accept_header.lower()
    return "text/plain" in accept or "openmetrics" in accept
