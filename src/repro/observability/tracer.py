"""Hierarchical span tracing for the promotion pipeline.

A :class:`Tracer` records a tree of :class:`SpanRecord` objects —
pipeline → phase → function → stage — each with a wall-clock start
(epoch seconds, comparable across processes), a monotonic-clock
duration, the recording process id, and free-form attributes.  Spans
are opened with the :meth:`Tracer.span` context manager; records are
appended at *enter* time, so the record list order is deterministic for
a deterministic pipeline (module order), independent of how long each
span ran.

Worker processes record into their own tracer and ship plain-dict span
records back with their results; :meth:`Tracer.merge` re-numbers them
and re-parents their roots under a parent span, producing one coherent
trace whose worker lanes are distinguished by the records' ``pid``.

The disabled path is a true null object: :data:`NULL_TRACER` returns
:data:`NULL_SPAN` from every ``span()`` call, so instrumentation sites
never test a flag — ``with obs.tracer.span(...)`` costs two no-op
method calls when tracing is off.
"""

from __future__ import annotations

import os
import re
import time
from typing import Dict, List, Optional

_TRACEPARENT = re.compile(
    r"^(?P<version>[0-9a-f]{2})-(?P<trace_id>[0-9a-f]{32})"
    r"-(?P<span_id>[0-9a-f]{16})-(?P<flags>[0-9a-f]{2})$"
)


class TraceContext:
    """W3C-traceparent-style trace context: one ``trace_id`` for a whole
    distributed request, plus the span id of the immediate caller.

    The service tier carries it in the ``traceparent`` HTTP header
    (``00-<trace_id>-<parent_span_id>-01``); the pipeline stamps the
    ``trace_id`` onto its root spans (via ``Tracer(trace_id=...)``) so a
    merged Chrome trace from router, daemon, engine, and warm-pool
    workers forms one connected tree under one id.
    """

    __slots__ = ("trace_id", "parent_span_id")

    def __init__(self, trace_id: str, parent_span_id: Optional[str] = None) -> None:
        self.trace_id = trace_id
        self.parent_span_id = parent_span_id

    @classmethod
    def new(cls) -> "TraceContext":
        """A fresh context at the edge of the system (no caller span)."""
        return cls(os.urandom(16).hex(), None)

    def child(self) -> "TraceContext":
        """The context to propagate downstream: same trace, a fresh span
        id standing for *this* hop."""
        return TraceContext(self.trace_id, os.urandom(8).hex())

    def to_traceparent(self) -> str:
        parent = self.parent_span_id or os.urandom(8).hex()
        return f"00-{self.trace_id}-{parent}-01"

    @classmethod
    def from_traceparent(cls, header: Optional[str]) -> Optional["TraceContext"]:
        """Parse a ``traceparent`` header; None when absent or malformed
        (a bad header must never fail a job — it just starts a new trace)."""
        if not header:
            return None
        match = _TRACEPARENT.match(header.strip().lower())
        if match is None or match.group("trace_id") == "0" * 32:
            return None
        return cls(match.group("trace_id"), match.group("span_id"))

    def as_dict(self) -> Dict[str, object]:
        return {"trace_id": self.trace_id, "parent_span_id": self.parent_span_id}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TraceContext({self.trace_id!r}, parent={self.parent_span_id!r})"


class SpanRecord:
    """One completed (or still-open) span, plain data and picklable."""

    __slots__ = (
        "id",
        "parent",
        "name",
        "category",
        "start_s",
        "duration_ms",
        "pid",
        "attrs",
    )

    def __init__(
        self,
        id: int,
        parent: Optional[int],
        name: str,
        category: str,
        start_s: float,
        duration_ms: float,
        pid: int,
        attrs: Dict[str, object],
    ) -> None:
        self.id = id
        self.parent = parent
        self.name = name
        self.category = category
        #: Wall-clock (epoch) start in seconds — comparable across the
        #: parent and worker processes, unlike the monotonic clock.
        self.start_s = start_s
        self.duration_ms = duration_ms
        self.pid = pid
        self.attrs = attrs

    def as_dict(self) -> Dict[str, object]:
        return {
            "id": self.id,
            "parent": self.parent,
            "name": self.name,
            "category": self.category,
            "start_s": self.start_s,
            "duration_ms": round(self.duration_ms, 3),
            "pid": self.pid,
            "attrs": dict(self.attrs),
        }

    @classmethod
    def from_dict(cls, doc: Dict[str, object]) -> "SpanRecord":
        return cls(
            int(doc["id"]),
            None if doc.get("parent") is None else int(doc["parent"]),
            str(doc["name"]),
            str(doc.get("category", "pipeline")),
            float(doc.get("start_s", 0.0)),
            float(doc.get("duration_ms", 0.0)),
            int(doc.get("pid", 0)),
            dict(doc.get("attrs") or {}),
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpanRecord({self.name!r}, id={self.id}, parent={self.parent})"


class Span:
    """A live span: a context manager that closes its record on exit."""

    __slots__ = ("_tracer", "record", "_start_mono")

    def __init__(self, tracer: "Tracer", record: SpanRecord) -> None:
        self._tracer = tracer
        self.record = record
        self._start_mono = time.perf_counter()

    def set(self, key: str, value: object) -> "Span":
        """Attach (or overwrite) one attribute on the span."""
        self.record.attrs[key] = value
        return self

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.record.duration_ms = (time.perf_counter() - self._start_mono) * 1e3
        if exc_type is not None:
            self.record.attrs.setdefault("error_type", exc_type.__name__)
        self._tracer._pop(self.record)


class Tracer:
    """Records spans into an in-memory list; one instance per run/worker."""

    def __init__(self, trace_id: Optional[str] = None) -> None:
        self.records: List[SpanRecord] = []
        self._stack: List[SpanRecord] = []
        self._next_id = 1
        #: Distributed trace id; when set, every *root* span is stamped
        #: with a ``trace_id`` attribute so cross-process merges stay
        #: attributable to one request.
        self.trace_id = trace_id

    @property
    def enabled(self) -> bool:
        return True

    def span(self, name: str, category: str = "pipeline", **attrs: object) -> Span:
        """Open a child span of the innermost open span (or a root)."""
        parent = self._stack[-1].id if self._stack else None
        attrs = dict(attrs)
        if parent is None and self.trace_id:
            attrs.setdefault("trace_id", self.trace_id)
        record = SpanRecord(
            self._next_id,
            parent,
            name,
            category,
            time.time(),
            0.0,
            os.getpid(),
            attrs,
        )
        self._next_id += 1
        self.records.append(record)
        self._stack.append(record)
        return Span(self, record)

    def _pop(self, record: SpanRecord) -> None:
        # Tolerate exception-driven unwinding out of order.
        if record in self._stack:
            while self._stack and self._stack[-1] is not record:
                self._stack.pop()
            if self._stack:
                self._stack.pop()

    def add_record(
        self,
        name: str,
        category: str = "pipeline",
        start_s: Optional[float] = None,
        duration_ms: float = 0.0,
        parent: Optional[SpanRecord] = None,
        pid: Optional[int] = None,
        **attrs: object,
    ) -> SpanRecord:
        """Append a pre-measured (synthetic) span, e.g. one reconstructed
        from a resilient-executor attempt record."""
        if parent is None and self._stack:
            parent_id: Optional[int] = self._stack[-1].id
        else:
            parent_id = parent.id if parent is not None else None
        record = SpanRecord(
            self._next_id,
            parent_id,
            name,
            category,
            time.time() if start_s is None else start_s,
            duration_ms,
            os.getpid() if pid is None else pid,
            dict(attrs),
        )
        self._next_id += 1
        self.records.append(record)
        return record

    def merge(
        self,
        exported: Optional[List[Dict[str, object]]],
        parent: Optional[SpanRecord] = None,
    ) -> List[SpanRecord]:
        """Graft spans exported by another tracer (a worker) into this one.

        Ids are re-numbered, internal parent links preserved, and roots
        re-parented under ``parent`` (or the innermost open span).  The
        records keep their original ``pid`` — that is the worker lane.
        """
        if not exported:
            return []
        if parent is None and self._stack:
            parent_id: Optional[int] = self._stack[-1].id
        else:
            parent_id = parent.id if parent is not None else None
        id_map: Dict[int, int] = {}
        merged: List[SpanRecord] = []
        for doc in exported:
            record = SpanRecord.from_dict(doc)
            id_map[record.id] = self._next_id
            record.id = self._next_id
            self._next_id += 1
            merged.append(record)
        for record in merged:
            if record.parent is None:
                record.parent = parent_id
            else:
                record.parent = id_map.get(record.parent, parent_id)
            self.records.append(record)
        return merged

    def export(self) -> List[Dict[str, object]]:
        """Plain-dict span records (picklable, for cross-process shipping)."""
        return [record.as_dict() for record in self.records]

    def roots(self) -> List[SpanRecord]:
        return [record for record in self.records if record.parent is None]

    def children(self, record: SpanRecord) -> List[SpanRecord]:
        return [r for r in self.records if r.parent == record.id]


class NullSpan:
    """The no-op span: every operation returns immediately."""

    __slots__ = ()

    def set(self, key: str, value: object) -> "NullSpan":
        return self

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


class NullTracer:
    """The disabled tracer: a true null object.

    Instrumentation sites call ``tracer.span(...)`` unconditionally; when
    tracing is off this returns the shared :data:`NULL_SPAN` without
    allocating, so the disabled path stays a handful of attribute lookups.
    """

    __slots__ = ()
    records: List[SpanRecord] = []
    trace_id: Optional[str] = None

    @property
    def enabled(self) -> bool:
        return False

    def span(self, name: str, category: str = "pipeline", **attrs: object) -> NullSpan:
        return NULL_SPAN

    def add_record(
        self, name: str, category: str = "pipeline", **kwargs: object
    ) -> None:
        return None

    def merge(self, exported, parent=None) -> List[SpanRecord]:
        return []

    def export(self) -> List[Dict[str, object]]:
        return []

    def roots(self) -> List[SpanRecord]:
        return []

    def children(self, record) -> List[SpanRecord]:
        return []


NULL_SPAN = NullSpan()
NULL_TRACER = NullTracer()
