"""Parallel, cache-aware execution layer for the promotion pipeline.

Five pieces:

* :mod:`repro.parallel.cache` — a per-function :class:`AnalysisCache`
  memoizing dominator trees, iterated dominance frontiers, and liveness
  across pipeline phases, keyed by IR fingerprints so mutation is
  invalidation.
* :mod:`repro.parallel.transport` — pickle-based IR payloads that move
  functions and modules between shared-nothing worker processes while
  preserving the module/global sharing discipline.
* :mod:`repro.parallel.fingerprint` — identity fingerprints for cache
  invalidation plus *content* fingerprints (:func:`content_fingerprint`,
  :func:`module_fingerprint`) that drive the incremental transport: only
  functions whose content changed since the last dispatch are re-shipped.
* :mod:`repro.parallel.batching` — the :class:`CostModel` (static
  instruction/block prior blended with measured per-function timings)
  and :func:`plan_batches`, which cut the pending function list into
  contiguous module-order batches; :class:`TransportStats` reports what
  a dispatch shipped vs reused.
* :mod:`repro.parallel.scheduler` and :mod:`repro.parallel.pool` — the
  batched scheduler and the persistent warm worker pools it runs on.
  Import them directly (``from repro.parallel import scheduler``;
  ``from repro.parallel.pool import warm_pool``); they are not
  re-exported here because the scheduler imports promotion passes, which
  would make ``import repro.parallel`` drag in — and cycle with — the
  pipeline.

When workers may misbehave (deadlines, crash recovery, retry/backoff,
quarantine, chaos injection), the pipeline wraps this layer with
:class:`repro.robustness.executor.ResilientExecutor`; enable it with
``PromotionPipeline(resilience=ResilienceOptions(...))`` or the CLI's
``--timeout``/``--retries``/``--chaos`` flags.
"""

from repro.parallel.batching import CostModel, TransportStats, plan_batches
from repro.parallel.cache import (
    AnalysisCache,
    CacheStats,
    activate,
    active_cache,
    dominator_tree,
    idf,
    liveness,
)
from repro.parallel.fingerprint import (
    cfg_fingerprint,
    code_fingerprint,
    content_fingerprint,
    globals_fingerprint,
    module_fingerprint,
)
from repro.parallel.transport import (
    FunctionPayload,
    ModulePayload,
    TransportError,
    export_profile,
    import_profile,
)

__all__ = [
    "AnalysisCache",
    "CacheStats",
    "activate",
    "active_cache",
    "dominator_tree",
    "idf",
    "liveness",
    "cfg_fingerprint",
    "code_fingerprint",
    "content_fingerprint",
    "globals_fingerprint",
    "module_fingerprint",
    "CostModel",
    "TransportStats",
    "plan_batches",
    "FunctionPayload",
    "ModulePayload",
    "TransportError",
    "export_profile",
    "import_profile",
]
