"""Parallel, cache-aware execution layer for the promotion pipeline.

Three pieces:

* :mod:`repro.parallel.cache` — a per-function :class:`AnalysisCache`
  memoizing dominator trees, iterated dominance frontiers, and liveness
  across pipeline phases, keyed by IR fingerprints so mutation is
  invalidation.
* :mod:`repro.parallel.transport` — pickle-based IR payloads that move
  functions and modules between shared-nothing worker processes while
  preserving the module/global sharing discipline.
* :mod:`repro.parallel.scheduler` — the process-pool scheduler itself.
  Import it directly (``from repro.parallel import scheduler``); it is not
  re-exported here because it imports promotion passes, which would make
  ``import repro.parallel`` drag in — and cycle with — the pipeline.

When workers may misbehave (deadlines, crash recovery, retry/backoff,
quarantine, chaos injection), the pipeline wraps this layer with
:class:`repro.robustness.executor.ResilientExecutor`; enable it with
``PromotionPipeline(resilience=ResilienceOptions(...))`` or the CLI's
``--timeout``/``--retries``/``--chaos`` flags.
"""

from repro.parallel.cache import (
    AnalysisCache,
    CacheStats,
    activate,
    active_cache,
    dominator_tree,
    idf,
    liveness,
)
from repro.parallel.fingerprint import cfg_fingerprint, code_fingerprint
from repro.parallel.transport import (
    FunctionPayload,
    ModulePayload,
    TransportError,
    export_profile,
    import_profile,
)

__all__ = [
    "AnalysisCache",
    "CacheStats",
    "activate",
    "active_cache",
    "dominator_tree",
    "idf",
    "liveness",
    "cfg_fingerprint",
    "code_fingerprint",
    "FunctionPayload",
    "ModulePayload",
    "TransportError",
    "export_profile",
    "import_profile",
]
