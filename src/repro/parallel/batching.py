"""Cost-model batch planning for the shared-nothing scheduler.

One task per function made process-pool bookkeeping the dominant cost on
real modules: every function paid its own submit, its own pickle of the
result, and its own future wake-up, while the promotion work itself is
tiny (SSA-local, by design of the paper's algorithm).  The scheduler
therefore ships **batches** — contiguous module-order slices of the
pending function list, one pickled payload and one future each.

Batch sizing is a classic longest-processing-time tradeoff (grouping
work units to amortize fixed per-unit costs; cf. Domagała et al.'s
tiling argument in PAPERS.md), and like the promotion algorithm itself
we stay greedy rather than optimal: batches are cut when their
accumulated weight reaches ``total / (jobs * OVERSUBSCRIBE)``.  The
oversubscription factor keeps more batches than workers in flight so a
surprisingly slow batch does not serialize the tail.

Weights come from :class:`CostModel`: a static prior (instruction +
block counts — available for free from the IR) blended with measured
per-function promotion times (EWMA over previous dispatches, fed from
the scheduler's own duration reports).  Measured times dominate once
they exist; the prior is rescaled to the measured cost-per-unit so
mixed batches stay comparable.

Batches are *contiguous in module order*, so the parent's deterministic
module-order merge is unchanged no matter how batches complete.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Union

from repro.parallel.cache import CacheStats

#: Target batches per worker; >1 so one slow batch cannot serialize the
#: tail of the run behind it.
OVERSUBSCRIBE = 2

#: Weight of the newest observation in the per-function EWMA.
EWMA_ALPHA = 0.5


class CostModel:
    """Per-function promotion-cost estimates, warm across runs.

    ``observe`` feeds measured stage timings (milliseconds) back from
    completed dispatches; ``weights`` turns a function list into batch
    weights, preferring measurements and falling back to the static
    prior (instructions + blocks) rescaled to the measured
    cost-per-unit when any measurement exists.
    """

    def __init__(self) -> None:
        self._ewma_ms: Dict[str, float] = {}

    def observe(self, name: str, duration_ms: float) -> None:
        if duration_ms < 0:
            return
        previous = self._ewma_ms.get(name)
        if previous is None:
            self._ewma_ms[name] = duration_ms
        else:
            self._ewma_ms[name] = (
                EWMA_ALPHA * duration_ms + (1.0 - EWMA_ALPHA) * previous
            )

    def measured(self, name: str) -> Optional[float]:
        return self._ewma_ms.get(name)

    @staticmethod
    def static_units(function) -> float:
        """The static prior: one unit per instruction plus one per block."""
        blocks = list(function.blocks)
        instructions = sum(len(block.instructions) for block in blocks)
        return float(instructions + len(blocks))

    def weights(self, sizes: Dict[str, float]) -> Dict[str, float]:
        """Blend measurements into the static prior ``sizes``.

        ``sizes`` maps function name -> static units.  Functions with a
        measured EWMA use it directly; the rest use their static units
        scaled by the measured milliseconds-per-unit (1.0 when nothing
        was ever measured — relative weights are all batching needs).
        """
        measured = {
            name: self._ewma_ms[name] for name in sizes if name in self._ewma_ms
        }
        scale = 1.0
        if measured:
            unit_total = sum(sizes[name] for name in measured)
            if unit_total > 0:
                scale = sum(measured.values()) / unit_total
        return {
            name: measured.get(name, max(sizes[name], 1.0) * scale)
            for name in sizes
        }

    def as_dict(self) -> Dict[str, float]:
        return {name: round(ms, 3) for name, ms in sorted(self._ewma_ms.items())}


def plan_batches(
    names: Sequence[str],
    weights: Dict[str, float],
    jobs: int,
    batch_size: Union[str, int] = "auto",
) -> List[List[str]]:
    """Cut ``names`` (already in module order) into contiguous batches.

    ``batch_size="auto"`` targets ``total_weight / (jobs * OVERSUBSCRIBE)``
    per batch; an integer forces fixed-count batches (1 = the old
    one-task-per-function behaviour, useful for debugging).  Every batch
    is non-empty and the concatenation of all batches is exactly
    ``names`` — order is never disturbed.
    """
    names = list(names)
    if not names:
        return []
    if batch_size != "auto":
        count = int(batch_size)
        if count < 1:
            raise ValueError(f"batch_size must be >= 1 or 'auto', got {batch_size}")
        return [names[i : i + count] for i in range(0, len(names), count)]
    jobs = max(1, jobs)
    total = sum(max(weights.get(name, 1.0), 0.0) for name in names)
    slots = jobs * OVERSUBSCRIBE
    if total <= 0 or len(names) <= slots:
        return [[name] for name in names]
    target = total / slots
    batches: List[List[str]] = []
    current: List[str] = []
    accumulated = 0.0
    for name in names:
        current.append(name)
        accumulated += max(weights.get(name, 1.0), 0.0)
        if accumulated >= target:
            batches.append(current)
            current = []
            accumulated = 0.0
    if current:
        batches.append(current)
    return batches


class TransportStats:
    """What one parallel dispatch shipped, reused, and received.

    Reported on :class:`~repro.promotion.pipeline.PipelineResult` (never
    inside the diagnostics — transport volume is machine-local noise and
    must stay out of the byte-identical output fingerprint, exactly like
    cache hit counts).
    """

    def __init__(self) -> None:
        #: Batches dispatched to workers this run.
        self.batches = 0
        #: Functions promoted via a worker dispatch this run.
        self.functions_shipped = 0
        #: Functions whose previous dispatch was replayed from the
        #: warm pool's dispatch cache — no pickling, no worker.
        self.functions_reused = 0
        #: Worker-side full module installs (anchor downloads) and
        #: per-function delta installs triggered by this run's sync.
        self.installs_full = 0
        self.installs_delta = 0
        #: Parent -> workers: epoch publication bytes (anchor payloads,
        #: delta chains, meta blobs) this run actually added.
        self.bytes_out = 0
        #: Workers -> parent: transformed-IR payload bytes received.
        self.bytes_in = 0
        #: Pool identity the run executed on (warm-pool generation lets
        #: tests assert "same pool as last run").
        self.pool_generation: Optional[int] = None
        #: Aggregated worker analysis-cache delta for this run, when
        #: caching was on (see :class:`CacheStats`).
        self.cache: Optional[CacheStats] = None

    def as_dict(self) -> Dict[str, object]:
        return {
            "batches": self.batches,
            "functions_shipped": self.functions_shipped,
            "functions_reused": self.functions_reused,
            "installs_full": self.installs_full,
            "installs_delta": self.installs_delta,
            "bytes_out": self.bytes_out,
            "bytes_in": self.bytes_in,
            "pool_generation": self.pool_generation,
        }
