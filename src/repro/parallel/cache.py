"""A per-function analysis cache keyed by IR fingerprints.

The pipeline recomputes dominator trees, iterated dominance frontiers, and
liveness several times per function: SSA construction, CFG normalization,
memory-SSA construction, the promotion driver, incremental SSA updates,
and each verifier pass all ask for the same analyses on an unchanged CFG.
:class:`AnalysisCache` memoizes them, keyed by the fingerprints of
:mod:`repro.parallel.fingerprint`; a mutation of the fingerprinted
structure changes the key, which *is* the invalidation — stale entries are
dropped the first time a lookup observes a new fingerprint, so callers
never need to notify the cache of IR edits (though :meth:`invalidate`
exists for explicit control).

The cache is installed with :func:`activate` (a context manager backed by
a :class:`contextvars.ContextVar`, so concurrent pipelines in one process
cannot observe each other's caches) and consumed through the module-level
accessors :func:`dominator_tree`, :func:`liveness`, and :func:`idf`, which
fall back to a direct computation when no cache is active.
"""

from __future__ import annotations

import contextlib
import contextvars
from typing import Dict, Iterable, List, Optional

from repro.analysis.dominance import DominatorTree
from repro.analysis.idf import iterated_dominance_frontier
from repro.analysis.liveness import Liveness
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.parallel.fingerprint import cfg_fingerprint, code_fingerprint


class CacheStats:
    """Hit/miss counters per analysis kind."""

    KINDS = ("domtree", "idf", "liveness")

    def __init__(self) -> None:
        self.hits: Dict[str, int] = {kind: 0 for kind in self.KINDS}
        self.misses: Dict[str, int] = {kind: 0 for kind in self.KINDS}

    def hit(self, kind: str) -> None:
        self.hits[kind] += 1

    def miss(self, kind: str) -> None:
        self.misses[kind] += 1

    @property
    def total_hits(self) -> int:
        return sum(self.hits.values())

    @property
    def total_misses(self) -> int:
        return sum(self.misses.values())

    def hit_rate(self) -> float:
        total = self.total_hits + self.total_misses
        return self.total_hits / total if total else 0.0

    def absorb(self, other: "CacheStats") -> None:
        for kind in self.KINDS:
            self.hits[kind] += other.hits[kind]
            self.misses[kind] += other.misses[kind]

    def copy(self) -> "CacheStats":
        dup = CacheStats()
        dup.absorb(self)
        return dup

    def since(self, earlier: "CacheStats") -> "CacheStats":
        """The counter delta accumulated after ``earlier`` was copied —
        how one run reports per-run stats against a long-lived shared
        cache whose counters span many runs."""
        delta = CacheStats()
        for kind in self.KINDS:
            delta.hits[kind] = self.hits[kind] - earlier.hits[kind]
            delta.misses[kind] = self.misses[kind] - earlier.misses[kind]
        return delta

    def as_dict(self) -> Dict[str, object]:
        return {
            "hits": dict(self.hits),
            "misses": dict(self.misses),
            "total_hits": self.total_hits,
            "total_misses": self.total_misses,
            "hit_rate": round(self.hit_rate(), 4),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CacheStats(hits={self.total_hits}, misses={self.total_misses})"


class _FunctionEntry:
    """Cached analyses of one function at one fingerprint."""

    __slots__ = (
        "function",
        "cfg_key",
        "cfg_pins",
        "code_key",
        "code_pins",
        "domtree",
        "idf_results",
        "liveness",
    )

    def __init__(self, function: Function) -> None:
        self.function = function
        self.cfg_key: Optional[tuple] = None
        self.cfg_pins: List[object] = []
        self.code_key: Optional[tuple] = None
        self.code_pins: List[object] = []
        self.domtree: Optional[DominatorTree] = None
        #: def-block id-set -> IDF block list, valid for the current cfg_key.
        self.idf_results: Dict[tuple, List[BasicBlock]] = {}
        self.liveness: Optional[Liveness] = None


class AnalysisCache:
    """Memoized dominator trees, IDFs, and liveness per function.

    Shared-nothing by design: each pipeline run (and each parallel worker)
    owns its own instance, so no locking is needed and hit rates describe
    exactly one run.
    """

    def __init__(self) -> None:
        self._entries: Dict[int, _FunctionEntry] = {}
        self.stats = CacheStats()

    # -- entry management ------------------------------------------------

    def _entry(self, function: Function) -> _FunctionEntry:
        entry = self._entries.get(id(function))
        if entry is None or entry.function is not function:
            entry = _FunctionEntry(function)
            self._entries[id(function)] = entry
        return entry

    def _cfg_entry(self, function: Function) -> _FunctionEntry:
        """The entry revalidated against the current CFG fingerprint."""
        entry = self._entry(function)
        key, pins = cfg_fingerprint(function)
        if key != entry.cfg_key:
            entry.cfg_key = key
            entry.cfg_pins = pins
            entry.domtree = None
            entry.idf_results = {}
            # Liveness depends on the CFG too; the code key embeds the
            # terminator targets, so it would miss anyway — clear it to
            # release the pinned IR promptly.
            entry.code_key = None
            entry.code_pins = []
            entry.liveness = None
        return entry

    def invalidate(self, function: Optional[Function] = None) -> None:
        """Drop cached analyses for ``function`` (or everything)."""
        if function is None:
            self._entries.clear()
        else:
            self._entries.pop(id(function), None)

    # -- analyses --------------------------------------------------------

    def dominator_tree(self, function: Function) -> DominatorTree:
        entry = self._cfg_entry(function)
        if entry.domtree is not None:
            self.stats.hit("domtree")
            return entry.domtree
        self.stats.miss("domtree")
        entry.domtree = DominatorTree.compute(function)
        return entry.domtree

    def idf(
        self,
        function: Function,
        domtree: DominatorTree,
        def_blocks: Iterable[BasicBlock],
    ) -> List[BasicBlock]:
        defs = list(def_blocks)
        entry = self._cfg_entry(function)
        if domtree is not entry.domtree:
            # A caller-owned tree we cannot vouch for: compute directly.
            self.stats.miss("idf")
            return iterated_dominance_frontier(domtree, defs)
        key = tuple(sorted(id(b) for b in defs))
        cached = entry.idf_results.get(key)
        if cached is not None:
            self.stats.hit("idf")
            return list(cached)
        self.stats.miss("idf")
        result = iterated_dominance_frontier(domtree, defs)
        entry.idf_results[key] = list(result)
        return result

    def liveness(self, function: Function) -> Liveness:
        entry = self._cfg_entry(function)
        key, pins = code_fingerprint(function)
        if key == entry.code_key and entry.liveness is not None:
            self.stats.hit("liveness")
            return entry.liveness
        self.stats.miss("liveness")
        entry.code_key = key
        entry.code_pins = pins
        entry.liveness = Liveness.compute(function)
        return entry.liveness


# -- activation -----------------------------------------------------------

_ACTIVE: contextvars.ContextVar[Optional[AnalysisCache]] = contextvars.ContextVar(
    "repro-analysis-cache", default=None
)


def active_cache() -> Optional[AnalysisCache]:
    """The cache installed by the innermost :func:`activate`, if any."""
    return _ACTIVE.get()


@contextlib.contextmanager
def activate(cache: Optional[AnalysisCache]):
    """Install ``cache`` as the ambient analysis cache (None deactivates)."""
    token = _ACTIVE.set(cache)
    try:
        yield cache
    finally:
        _ACTIVE.reset(token)


# -- cache-aware accessors (the analysis consumers call these) ------------


def dominator_tree(function: Function) -> DominatorTree:
    """Dominator tree of ``function``, memoized when a cache is active."""
    cache = _ACTIVE.get()
    if cache is None:
        return DominatorTree.compute(function)
    return cache.dominator_tree(function)


def idf(
    function: Function, domtree: DominatorTree, def_blocks: Iterable[BasicBlock]
) -> List[BasicBlock]:
    """Iterated dominance frontier, memoized when a cache is active."""
    cache = _ACTIVE.get()
    if cache is None:
        return iterated_dominance_frontier(domtree, def_blocks)
    return cache.idf(function, domtree, def_blocks)


def liveness(function: Function) -> Liveness:
    """Live-variable analysis, memoized when a cache is active."""
    cache = _ACTIVE.get()
    if cache is None:
        return Liveness.compute(function)
    return cache.liveness(function)
