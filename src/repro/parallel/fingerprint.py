"""Structural fingerprints of function IR, for analysis caching.

A fingerprint is a nested tuple of object identities that changes whenever
the fingerprinted structure is mutated, paired with a *pin list* holding a
strong reference to every object whose ``id()`` appears in the key.  The
pins make identity keys sound: as long as a cache entry (and therefore its
pins) is alive, none of those ids can be recycled for a new object, so a
key match proves the cached analysis still describes the exact same IR
objects.

Two granularities:

* :func:`cfg_fingerprint` covers the block set and the edge structure —
  everything a dominator tree or an IDF computation depends on.  Inserting
  or deleting instructions does not change it; adding/removing blocks or
  retargeting a terminator does (terminator targets are part of the key).
* :func:`code_fingerprint` additionally covers every instruction: its
  identity, class, target register, operand identities, and (for phis) the
  incoming predecessor blocks — everything liveness depends on.  Replacing
  an operand in place swaps the operand object, so it changes the key.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.ir.function import Function
from repro.ir.instructions import Phi


def cfg_fingerprint(function: Function) -> Tuple[tuple, List[object]]:
    """(key, pins) covering the CFG: blocks in order plus successor edges."""
    pins: List[object] = [function]
    parts = []
    for block in function.blocks:
        pins.append(block)
        succ_ids = []
        term = block.terminator
        if term is not None:
            for target in term.targets:
                pins.append(target)
                succ_ids.append(id(target))
        parts.append((id(block), tuple(succ_ids)))
    return tuple(parts), pins


def code_fingerprint(function: Function) -> Tuple[tuple, List[object]]:
    """(key, pins) covering the CFG plus every instruction and operand."""
    pins: List[object] = [function]
    parts = []
    for block in function.blocks:
        pins.append(block)
        inst_parts = []
        for inst in block.instructions:
            pins.append(inst)
            operand_ids = []
            for op in inst.operands:
                pins.append(op)
                operand_ids.append(id(op))
            dst = inst.dst
            if dst is not None:
                pins.append(dst)
            extra: tuple = ()
            if isinstance(inst, Phi):
                # replace_incoming_block swaps predecessors without
                # touching the operand list; liveness cares.
                pred_ids = []
                for pred, _ in inst.incoming:
                    pins.append(pred)
                    pred_ids.append(id(pred))
                extra = tuple(pred_ids)
            elif inst.is_terminator:
                target_ids = []
                for target in inst.targets:
                    pins.append(target)
                    target_ids.append(id(target))
                extra = tuple(target_ids)
            inst_parts.append(
                (
                    id(inst),
                    id(inst.__class__),
                    0 if dst is None else id(dst),
                    tuple(operand_ids),
                    extra,
                )
            )
        parts.append((id(block), tuple(inst_parts)))
    return tuple(parts), pins
