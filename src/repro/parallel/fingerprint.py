"""Structural fingerprints of function IR, for analysis caching.

A fingerprint is a nested tuple of object identities that changes whenever
the fingerprinted structure is mutated, paired with a *pin list* holding a
strong reference to every object whose ``id()`` appears in the key.  The
pins make identity keys sound: as long as a cache entry (and therefore its
pins) is alive, none of those ids can be recycled for a new object, so a
key match proves the cached analysis still describes the exact same IR
objects.

Two granularities:

* :func:`cfg_fingerprint` covers the block set and the edge structure —
  everything a dominator tree or an IDF computation depends on.  Inserting
  or deleting instructions does not change it; adding/removing blocks or
  retargeting a terminator does (terminator targets are part of the key).
* :func:`code_fingerprint` additionally covers every instruction: its
  identity, class, target register, operand identities, and (for phis) the
  incoming predecessor blocks — everything liveness depends on.  Replacing
  an operand in place swaps the operand object, so it changes the key.

Identity keys only mean anything inside one process, so the batched
transport layer adds a second family: **content fingerprints**, stable
sha256 digests of everything promotion reads from a function — the
printed IR, the frame-variable table (including ``address_taken``, which
the printer does not show), and the naming counters (two textually
identical functions with different ``_next_reg`` would promote to
differently *named* registers).  Content keys survive process
boundaries and module rebuilds, which is what lets the warm worker pool
skip re-shipping functions that have not changed since the last
dispatch (:mod:`repro.parallel.pool`).
"""

from __future__ import annotations

import hashlib
from typing import Dict, List, Tuple

from repro.ir.function import Function
from repro.ir.instructions import Phi


def cfg_fingerprint(function: Function) -> Tuple[tuple, List[object]]:
    """(key, pins) covering the CFG: blocks in order plus successor edges."""
    pins: List[object] = [function]
    parts = []
    for block in function.blocks:
        pins.append(block)
        succ_ids = []
        term = block.terminator
        if term is not None:
            for target in term.targets:
                pins.append(target)
                succ_ids.append(id(target))
        parts.append((id(block), tuple(succ_ids)))
    return tuple(parts), pins


def code_fingerprint(function: Function) -> Tuple[tuple, List[object]]:
    """(key, pins) covering the CFG plus every instruction and operand."""
    pins: List[object] = [function]
    parts = []
    for block in function.blocks:
        pins.append(block)
        inst_parts = []
        for inst in block.instructions:
            pins.append(inst)
            operand_ids = []
            for op in inst.operands:
                pins.append(op)
                operand_ids.append(id(op))
            dst = inst.dst
            if dst is not None:
                pins.append(dst)
            extra: tuple = ()
            if isinstance(inst, Phi):
                # replace_incoming_block swaps predecessors without
                # touching the operand list; liveness cares.
                pred_ids = []
                for pred, _ in inst.incoming:
                    pins.append(pred)
                    pred_ids.append(id(pred))
                extra = tuple(pred_ids)
            elif inst.is_terminator:
                target_ids = []
                for target in inst.targets:
                    pins.append(target)
                    target_ids.append(id(target))
                extra = tuple(target_ids)
            inst_parts.append(
                (
                    id(inst),
                    id(inst.__class__),
                    0 if dst is None else id(dst),
                    tuple(operand_ids),
                    extra,
                )
            )
        parts.append((id(block), tuple(inst_parts)))
    return tuple(parts), pins


# -- content fingerprints (cross-process, cross-run) ----------------------


def _var_tuple(var) -> tuple:
    """Every :class:`MemoryVar` field promotion can observe."""
    return (
        var.name,
        var.kind.value,
        var.initial,
        var.size,
        tuple(var.initial_values) if var.initial_values is not None else None,
        bool(var.address_taken),
    )


def content_fingerprint(function: Function) -> str:
    """A stable digest of one function's promotion-relevant content.

    Covers the printed IR, the frame-variable table, and the naming
    counters (``_next_reg``/``_next_block``/``_mem_versions``) — the
    counters matter because promotion *names* new registers and blocks
    from them, so two structurally identical functions with different
    counters transform to textually different IR.  Equal fingerprints
    imply promotion produces byte-identical results, which is the
    soundness condition for replaying a cached dispatch.
    """
    from repro.ir.printer import print_function

    digest = hashlib.sha256()
    digest.update(print_function(function).encode())
    digest.update(repr((function._next_reg, function._next_block)).encode())
    versions = sorted(
        (var.name, version) for var, version in function._mem_versions.items()
    )
    digest.update(repr(versions).encode())
    frame = [_var_tuple(var) for var in function.frame_vars.values()]
    digest.update(repr(frame).encode())
    return digest.hexdigest()


def globals_fingerprint(module) -> str:
    """A stable digest of the module's global variable table.

    The alias model and payload re-binding both resolve globals by name,
    so a dispatch may only be replayed against a module whose globals
    carry the same names, kinds, sizes, initials, and address-taken
    bits.
    """
    digest = hashlib.sha256()
    digest.update(repr([_var_tuple(v) for v in module.globals.values()]).encode())
    return digest.hexdigest()


def module_fingerprint(module) -> Tuple[str, Dict[str, str]]:
    """(module key, per-function content keys) for epoch bookkeeping.

    The module key covers the globals table plus every function's
    content fingerprint in declaration order; two modules with equal
    keys are IR-equivalent as far as promotion is concerned, which is
    what lets a warm worker skip re-synchronizing entirely.
    """
    fps = {
        name: content_fingerprint(function)
        for name, function in module.functions.items()
    }
    digest = hashlib.sha256()
    digest.update(module.name.encode())
    digest.update(globals_fingerprint(module).encode())
    for name, fp in fps.items():
        digest.update(name.encode())
        digest.update(fp.encode())
    return digest.hexdigest(), fps
