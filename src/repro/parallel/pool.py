"""Persistent, warm worker pools with incremental IR transport.

The original scheduler created a ``ProcessPoolExecutor`` per pipeline
run with the whole module pickled into the pool *initializer*: every run
paid worker spawn-up, a full module broadcast, and interpreter/module
import costs before the first function promoted.  That overhead is why
the committed baseline once recorded the parallel arm *losing* to
serial.  This module replaces that lifecycle with process pools that
survive across runs (and across modules) and a pull-based epoch
protocol that ships only what changed.

**Pool lifecycle.**  :func:`warm_pool` hands out one :class:`WarmPool`
per worker count, process-wide.  The pool owns a plain executor (no
initializer — workers are blank until a task syncs them), a
``multiprocessing.Manager`` board for epoch publication, the persistent
:class:`~repro.parallel.batching.CostModel`, and the dispatch cache.
``rebuild()`` is the *single* recovery path — the scheduler's
infrastructure failures and the resilient executor's crash/hang
recovery both land here — and keeps the board, so rebuilt workers
resynchronize from the already-published epoch without a new broadcast.

**Epoch protocol.**  Before dispatching, the parent publishes to the
board (under the pool lease):

* ``anchor`` — a full :class:`ModulePayload` plus its module content
  key (re-published only when the function set, the globals table, or
  too long a delta chain makes deltas unusable);
* ``chain`` — an ordered tuple of ``(module_key, delta_blob)`` entries,
  each delta a pickled ``{name: FunctionPayload bytes}`` of just the
  functions whose :func:`~repro.parallel.fingerprint.content_fingerprint`
  changed since the previous entry;
* ``meta`` — the run configuration (profile map, options, alias-model
  factory, flags), content-keyed so an unchanged configuration is never
  re-shipped.

Every task names the ``(module_key, meta_key)`` epoch it needs; a
worker already at that epoch touches nothing, a worker one or more
deltas behind applies just the suffix, and a blank (or rebuilt) worker
pulls the anchor plus the full chain.  There is no broadcast barrier —
workers pull lazily, so lazily-spawned or newly-rebuilt processes are
handled by construction.

Workers keep their module copy **pristine**: the scheduler restores the
pre-promotion snapshot after capturing each result payload, so the
module a worker holds always matches the published epoch and the next
run can reuse it.
"""

from __future__ import annotations

import atexit
import collections
import hashlib
import multiprocessing
import os
import pickle
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Tuple

from repro.parallel.batching import CostModel
from repro.parallel.cache import AnalysisCache
from repro.parallel.fingerprint import globals_fingerprint, module_fingerprint
from repro.parallel.transport import (
    FunctionPayload,
    ModulePayload,
    TransportError,
)

#: Delta-chain length at which the parent re-anchors: a blank worker
#: must replay the whole chain, so unbounded chains would make worker
#: rebuilds progressively slower.
MAX_CHAIN = 8

#: Replayable dispatch results kept per pool (LRU).
DISPATCH_CACHE_LIMIT = 512


class WarmPool:
    """One persistent worker pool plus its transport state.

    Callers serialize whole dispatches through :attr:`lock` (the service
    engine's threads contend on it safely); everything below the lock —
    executor, manager board, epoch bookkeeping, cost model, dispatch
    cache — is owned by the lease holder for the duration of a run.
    """

    def __init__(self, jobs: int) -> None:
        if jobs < 1:
            raise ValueError(f"a warm pool needs jobs >= 1, got {jobs}")
        self.jobs = jobs
        self.lock = threading.RLock()
        #: Bumped on every rebuild; lets callers observe "same workers
        #: as last run" (or not) without reaching into the executor.
        self.generation = 0
        self.rebuilds = 0
        self.runs = 0
        self.prewarmed = False
        self.dispatch_hits = 0
        self.cost_model = CostModel()
        self._dispatch_cache: "collections.OrderedDict[tuple, object]" = (
            collections.OrderedDict()
        )
        self._executor: Optional[ProcessPoolExecutor] = None
        self._manager = None
        self._board = None
        #: Parent-side mirror of what the board holds; ``None`` until
        #: the first publication (or after a full shutdown).
        self._epoch: Optional[dict] = None

    # -- executor ---------------------------------------------------------

    def executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self.jobs)
        return self._executor

    def submit(self, fn, *args):
        return self.executor().submit(fn, *args)

    def processes(self) -> Dict[int, object]:
        """pid -> Process view of the live workers (crash attribution)."""
        executor = self._executor
        if executor is None:
            return {}
        return dict(getattr(executor, "_processes", None) or {})

    def rebuild(self, kill: bool = False) -> None:
        """Tear the worker processes down and start blank ones.

        The board (and therefore the published epoch) survives, so the
        fresh workers re-anchor from it on their first task — chaos
        recovery and infrastructure-failure recovery share this one
        path.  ``kill=True`` terminates workers that will not exit on
        their own (hangs).
        """
        executor, self._executor = self._executor, None
        self.generation += 1
        self.rebuilds += 1
        self.prewarmed = False
        if executor is None:
            return
        procs = dict(getattr(executor, "_processes", None) or {})
        executor.shutdown(wait=not kill, cancel_futures=True)
        if kill:
            for proc in procs.values():
                try:
                    if proc.is_alive():
                        proc.terminate()
                except Exception:
                    pass
            for proc in procs.values():
                try:
                    proc.join(timeout=1.0)
                except Exception:
                    pass

    def prewarm(self, timeout_s: float = 10.0) -> float:
        """Spin every worker up and warm its imports; returns seconds.

        Submits one rendezvous task per worker; the tasks import the
        pipeline (the bulk of a cold worker's first-task latency) and
        meet on a manager barrier so the lazy executor is forced to
        spawn all ``jobs`` processes instead of funnelling the tasks
        through one.  Best-effort: a barrier timeout degrades to
        whatever spun up.
        """
        started = time.perf_counter()
        with self.lock:
            executor = self.executor()
            barrier = None
            if self.jobs > 1:
                try:
                    self.board()
                    barrier = self._manager.Barrier(self.jobs, timeout=timeout_s)
                except Exception:
                    barrier = None
            futures = [
                executor.submit(_prewarm_task, barrier) for _ in range(self.jobs)
            ]
            for future in futures:
                try:
                    future.result(timeout=timeout_s)
                except Exception:
                    break
            self.prewarmed = True
        return time.perf_counter() - started

    # -- shared state -----------------------------------------------------

    def board(self):
        """The manager-hosted epoch board (created on first use)."""
        if self._board is None:
            self._manager = multiprocessing.Manager()
            self._board = self._manager.dict()
            self._epoch = None
        return self._board

    def shared_dict(self):
        """A fresh manager dict on this pool's manager (the resilient
        executor's heartbeat/claim scoreboard lives here, so it shares
        the pool's lifetime instead of paying a manager per run)."""
        self.board()
        return self._manager.dict()

    # -- dispatch cache ---------------------------------------------------

    def dispatch_lookup(self, key: tuple):
        result = self._dispatch_cache.get(key)
        if result is not None:
            self._dispatch_cache.move_to_end(key)
            self.dispatch_hits += 1
        return result

    def dispatch_store(self, key: tuple, result) -> None:
        self._dispatch_cache[key] = result
        self._dispatch_cache.move_to_end(key)
        while len(self._dispatch_cache) > DISPATCH_CACHE_LIMIT:
            self._dispatch_cache.popitem(last=False)

    # -- lifecycle --------------------------------------------------------

    def shutdown(self) -> None:
        with self.lock:
            executor, self._executor = self._executor, None
            manager, self._manager = self._manager, None
            self._board = None
            self._epoch = None
            self.prewarmed = False
        if executor is not None:
            try:
                executor.shutdown(wait=False, cancel_futures=True)
            except Exception:
                pass
        if manager is not None:
            try:
                manager.shutdown()
            except Exception:
                pass

    def as_dict(self) -> Dict[str, object]:
        return {
            "jobs": self.jobs,
            "generation": self.generation,
            "rebuilds": self.rebuilds,
            "runs": self.runs,
            "prewarmed": self.prewarmed,
            "dispatch_entries": len(self._dispatch_cache),
            "dispatch_hits": self.dispatch_hits,
            "epoch_published": self._epoch is not None,
        }


# -- epoch publication (parent side) --------------------------------------


def publish_epoch(
    pool: WarmPool,
    module,
    meta_blob: bytes,
    precomputed: Optional[Tuple[str, Dict[str, str]]] = None,
) -> Tuple[str, str, Dict[str, str], int]:
    """Bring the pool's board up to date with ``module`` + ``meta_blob``.

    Returns ``(module_key, meta_key, per_function_fps, bytes_published)``.
    Caller must hold the pool lease.  Publication is incremental: an
    unchanged module publishes nothing, a partially-changed module
    appends one delta entry, and only structural changes (function set,
    globals table, overlong chain) re-anchor with a full payload.
    ``precomputed`` lets a caller that already fingerprinted the module
    (for dispatch-cache lookups) skip the second walk.
    """
    if precomputed is not None:
        ir_key, fps = precomputed
    else:
        ir_key, fps = module_fingerprint(module)
    gkey = globals_fingerprint(module)
    meta_key = hashlib.sha256(meta_blob).hexdigest()
    board = pool.board()
    epoch = pool._epoch
    names = tuple(module.functions)
    bytes_out = 0

    need_anchor = (
        epoch is None
        or epoch["globals_key"] != gkey
        or epoch["names"] != names
        or len(epoch["chain_keys"]) >= MAX_CHAIN
    )
    if need_anchor or epoch["ir_key"] != ir_key:
        changed = (
            []
            if need_anchor
            else [name for name in names if fps[name] != epoch["fps"][name]]
        )
        if not need_anchor and changed:
            blob = pickle.dumps(
                {
                    name: FunctionPayload.capture(module.functions[name]).data
                    for name in changed
                },
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            board["chain"] = tuple(board.get("chain") or ()) + ((ir_key, blob),)
            bytes_out += len(blob)
            epoch["chain_keys"].append(ir_key)
            epoch["ir_key"] = ir_key
            epoch["fps"] = fps
        else:
            payload = ModulePayload.capture(module)
            board["anchor"] = (ir_key, payload.data)
            board["chain"] = ()
            bytes_out += len(payload.data)
            pool._epoch = epoch = {
                "ir_key": ir_key,
                "fps": fps,
                "globals_key": gkey,
                "names": names,
                "chain_keys": [],
                "meta_key": None,
            }
    if epoch["meta_key"] != meta_key:
        board["meta"] = (meta_key, meta_blob)
        epoch["meta_key"] = meta_key
        bytes_out += len(meta_blob)
    return ir_key, meta_key, fps, bytes_out


# -- worker side -----------------------------------------------------------

#: This worker process's transport state: its module copy, the epoch
#: keys it is synchronized to, its persistent analysis cache.
_WORKER: dict = {}


def _prewarm_task(barrier) -> int:
    # The import IS the work: a cold worker's first task otherwise pays
    # for pulling in the whole promotion pipeline.
    import repro.promotion.pipeline  # noqa: F401

    try:
        if barrier is not None:
            barrier.wait()
    except Exception:
        pass
    return os.getpid()


def _sync_worker(board, ir_key: str, meta_key: str) -> Dict[str, int]:
    """Bring this worker to the ``(ir_key, meta_key)`` epoch.

    Fast path: already there — no board traffic at all.  Otherwise pull
    the anchor and/or the delta-chain suffix, rebuild the scheduler's
    ``_WORKER_STATE`` (the alias model is module-bound, so an IR change
    always rebuilds it), and report what was installed.
    Any failure clears the worker back to blank so the next task
    re-anchors instead of trusting half-applied state.
    """
    from repro.parallel import scheduler

    state = _WORKER
    sync = {"installs_full": 0, "installs_delta": 0}
    if state.get("ir_key") == ir_key and state.get("meta_key") == meta_key:
        return sync
    try:
        if state.get("ir_key") != ir_key:
            anchor = board.get("anchor")
            if anchor is None:
                raise TransportError(f"epoch {ir_key[:12]} has no anchor")
            anchor_key, module_bytes = anchor
            chain = tuple(board.get("chain") or ())
            keys = [anchor_key] + [key for key, _ in chain]
            if ir_key not in keys:
                raise TransportError(
                    f"epoch {ir_key[:12]} is not on the board (stale task?)"
                )
            target = keys.index(ir_key)
            module = state.get("module")
            current = state.get("ir_key")
            if module is not None and current in keys and keys.index(current) <= target:
                start = keys.index(current)
            else:
                module = ModulePayload(module_bytes).restore()
                sync["installs_full"] = 1
                start = 0
            for key, blob in chain[start:target]:
                for name, data in pickle.loads(blob).items():
                    FunctionPayload(name, data).install(module)
                    sync["installs_delta"] += 1
            state["module"] = module
            state["ir_key"] = ir_key
            # The alias model is bound to the old module objects; force
            # the meta rebind below.
            state["meta_key"] = None
        if state.get("meta_key") != meta_key:
            meta_entry = board.get("meta")
            if meta_entry is None or meta_entry[0] != meta_key:
                raise TransportError(
                    f"meta epoch {meta_key[:12]} is not on the board"
                )
            meta = pickle.loads(meta_entry[1])
            module = state["module"]
            cache = state.get("cache")
            if not meta["use_cache"]:
                cache = None
            elif cache is None:
                cache = AnalysisCache()
                state["cache"] = cache
            scheduler._WORKER_STATE = {
                "module": module,
                "model": meta["alias_model_factory"](module),
                # Name-keyed, not block-bound: snapshot restores and delta
                # installs replace block objects, so the scheduler re-keys
                # a function-local profile per promotion instead.
                "profile_map": meta["profile_map"],
                "options": meta["options"],
                "verify": meta["verify"],
                "use_cache": meta["use_cache"],
                "observe": meta["observe"],
                "cache": cache,
                "extras": meta.get("extras") or {},
            }
            state["meta_key"] = meta_key
    except Exception:
        state.clear()
        scheduler._WORKER_STATE = None
        raise
    return sync


# -- the process-wide pool registry ---------------------------------------

_POOLS: Dict[int, WarmPool] = {}
_REGISTRY_LOCK = threading.Lock()


def warm_pool(jobs: int) -> WarmPool:
    """The process-wide warm pool for ``jobs`` workers (created once)."""
    jobs = int(jobs)
    with _REGISTRY_LOCK:
        pool = _POOLS.get(jobs)
        if pool is None:
            pool = WarmPool(jobs)
            _POOLS[jobs] = pool
        return pool


def shutdown_pool(jobs: int) -> None:
    """Shut down (and forget) the pool for ``jobs``, if one exists."""
    with _REGISTRY_LOCK:
        pool = _POOLS.pop(int(jobs), None)
    if pool is not None:
        pool.shutdown()


def shutdown_pools() -> None:
    """Shut every warm pool down (process exit, service drain)."""
    with _REGISTRY_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.shutdown()


def pool_info() -> List[Dict[str, object]]:
    """Snapshot of every live pool (service ``/healthz`` reporting)."""
    with _REGISTRY_LOCK:
        return [pool.as_dict() for pool in _POOLS.values()]


atexit.register(shutdown_pools)
