"""The shared-nothing function-level scheduler.

Sastry & Ju's algorithm is embarrassingly parallel at function
granularity: each function's interval tree, memory-SSA webs, and
promotion decisions depend only on that function's IR, the module-level
profile, and an alias model built from the *pre-promotion* module.  The
scheduler exploits that:

* dispatch runs on a **persistent warm pool**
  (:mod:`repro.parallel.pool`): workers survive across runs, pull the
  module via the incremental epoch protocol (full anchor once, deltas
  for changed functions after), and keep their analysis caches hot —
  workers still share nothing at promotion time, so there is no locking
  and no cross-talk;
* each task is one **batch** of function names, contiguous in module
  order and sized by the pool's cost model
  (:mod:`repro.parallel.batching`), so per-task pickling and future
  overhead amortize over many functions; the worker runs phases 3+4
  (memory SSA, promotion, cleanup, verification) per function on its
  copy, ships the transformed IR back as :class:`FunctionPayload`\\ s,
  and then **restores its copy** so the next run finds the module at
  the published epoch;
* functions whose content fingerprint, profile slice, and configuration
  match a previous dispatch are **replayed** from the pool's dispatch
  cache without shipping anything (conservative alias model only — a
  custom factory could read module state the fingerprints do not
  cover);
* the parent merges results **in module order** regardless of completion
  order, so statistics, diagnostics, and the final IR are deterministic
  and byte-identical to a serial run.

Failures inside a worker reproduce the serial transaction semantics: the
worker restores its local snapshot, reports the failing stage and error,
and the parent records a rollback without installing anything — exactly
what the serial path's snapshot/restore does.

Pool-level failures (a worker dying, unpicklable user callables) rebuild
the warm pool — the same recovery path the resilient executor uses — and
degrade to the serial path with a diagnostic warning rather than failing
the run.
"""

from __future__ import annotations

import os
import pickle
import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.analysis.intervals import IntervalTree
from repro.parallel.batching import CostModel, TransportStats, plan_batches
from repro.parallel.cache import AnalysisCache, CacheStats, activate
from repro.parallel.transport import FunctionPayload, export_profile


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` means one worker per
    CPU; anything else must be a positive worker count."""
    if jobs is None or jobs == 0:
        return max(1, os.cpu_count() or 1)
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


class FunctionResult:
    """What one worker task produced for one function (picklable)."""

    __slots__ = (
        "name",
        "status",
        "stage",
        "error_type",
        "reason",
        "duration_ms",
        "stats",
        "payload",
        "cache_stats",
        "spans",
        "metrics",
        "decisions",
    )

    PROMOTED = "promoted"
    ROLLED_BACK = "rolled_back"

    def __init__(
        self,
        name: str,
        status: str,
        stage: Optional[str] = None,
        error_type: Optional[str] = None,
        reason: Optional[str] = None,
        duration_ms: float = 0.0,
        stats: Optional[Dict[str, int]] = None,
        payload: Optional[FunctionPayload] = None,
        cache_stats: Optional[CacheStats] = None,
        spans: Optional[List[Dict[str, object]]] = None,
        metrics: Optional[Dict[str, Dict[str, object]]] = None,
        decisions: Optional[Dict[str, object]] = None,
    ) -> None:
        self.name = name
        self.status = status
        self.stage = stage
        self.error_type = error_type
        self.reason = reason
        self.duration_ms = duration_ms
        self.stats = stats
        self.payload = payload
        self.cache_stats = cache_stats
        #: Exported worker span records (``Tracer.export``) when the run
        #: was observed; the parent merges them into its own trace with
        #: this worker's pid as the lane.  ``None`` when tracing was off.
        self.spans = spans
        #: The worker-local metrics snapshot (``MetricsRegistry.as_dict``)
        #: to absorb in module order; ``None`` when tracing was off.
        self.metrics = metrics
        #: This function's exported decision document
        #: (``FunctionDecisions.export``) when journaling was on;
        #: ``None`` otherwise, or when the attempt failed before the
        #: journal committed.
        self.decisions = decisions


class SchedulerError(RuntimeError):
    """The pool could not be used; callers should fall back to serial.

    Carries the triggering failure in structured form — exception type,
    first message line, and (when one task was identifiable) the
    function whose result exposed the failure — so the pipeline can
    record a ``fallback_reason`` instead of discarding the cause.
    """

    def __init__(
        self,
        message: str,
        error_type: Optional[str] = None,
        detail: Optional[str] = None,
        function: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.error_type = error_type
        self.detail = detail
        self.function = function

    @classmethod
    def wrap(cls, exc: BaseException, function: Optional[str] = None) -> "SchedulerError":
        detail = (str(exc) or type(exc).__name__).splitlines()[0]
        where = f" (while collecting {function!r})" if function else ""
        return cls(
            f"parallel promotion unavailable ({type(exc).__name__}: {detail})"
            f"{where}; falling back to serial execution",
            error_type=type(exc).__name__,
            detail=detail,
            function=function,
        )

    def as_dict(self) -> Dict[str, Optional[str]]:
        return {
            "error_type": self.error_type,
            "detail": self.detail,
            "function": self.function,
        }


# -- worker side ----------------------------------------------------------

#: Per-worker-process state, (re)built by :func:`repro.parallel.pool.
#: _sync_worker` whenever a task names an epoch the worker is not at.
_WORKER_STATE: Optional[dict] = None

#: Optional worker-side hook called as ``observer(name, stage)`` at every
#: stage transition inside :func:`_promote_one`.  The resilient executor
#: installs one so a function killed by the deadline watchdog can be
#: attributed to the stage it hung in.
_STAGE_OBSERVER: Optional[Callable[[str, str], None]] = None


def _enter_stage(name: str, stage: str) -> str:
    if _STAGE_OBSERVER is not None:
        _STAGE_OBSERVER(name, stage)
    return stage


def _promote_one(name: str) -> FunctionResult:
    """Run phases 3+4 for one function on the worker's module copy.

    The worker's copy is left **pristine**: after capturing the result
    payload (or on failure) the pre-promotion snapshot is restored, so
    the module always matches the epoch the pool published and the next
    run's incremental sync stays valid.
    """
    # Imported here: the pipeline imports this module, so a top-level
    # import would be circular.
    from repro.ir.verify import verify_function
    from repro.memory.memssa import build_memory_ssa
    from repro.observability import (
        NULL_OBSERVABILITY,
        DecisionJournal,
        Observability,
        activate_decisions,
        activate_metrics,
    )
    from repro.passes.copyprop import propagate_copies
    from repro.passes.dce import (
        dead_code_elimination,
        dead_memory_elimination,
        remove_dummy_loads,
    )
    from repro.profile.profiles import ProfileData
    from repro.promotion.driver import promote_function
    from repro.robustness.snapshot import snapshot_function

    state = _WORKER_STATE
    assert state is not None, "worker used before epoch synchronization"
    module = state["module"]
    function = module.functions[name]
    # ProfileData is keyed by block *identity*, and this function's block
    # objects are replaced by every snapshot restore and delta install —
    # so bind a fresh function-local profile from the name-keyed map on
    # every promotion instead of keeping a module-wide one in the state.
    counts = state["profile_map"].get(name) or {}
    profile = ProfileData()
    for block in function.blocks:
        freq = counts.get(block.name)
        if freq is not None:
            profile.set_freq(block, freq)
    cache = None
    if state["use_cache"]:
        # The warm pool keeps a persistent per-worker cache; fall back
        # to a per-call one when none was provisioned.
        cache = state.get("cache") or AnalysisCache()
    # A persistent cache carries cumulative counters; report per-call
    # deltas so the parent's module-order aggregation stays additive.
    cache_before = cache.stats.copy() if cache is not None else None
    extras = state.get("extras") or {}
    obs = (
        Observability.recording(trace_id=extras.get("trace"))
        if state["observe"]
        else NULL_OBSERVABILITY
    )
    journal = DecisionJournal() if extras.get("decisions") else None

    snap = snapshot_function(function)
    started = time.perf_counter()
    stage = _enter_stage(name, "memssa")
    with activate(cache), activate_metrics(
        obs.metrics if obs.enabled else None
    ), activate_decisions(journal), obs.tracer.span(
        "function:" + name, category="promote"
    ) as fn_span:
        try:
            # The parent already normalized the CFG in phase 1; recompute
            # the (deterministic) interval tree on this copy.
            with obs.tracer.span("stage:memssa", category="promote"):
                tree = IntervalTree.compute(function)
                mssa = build_memory_ssa(function, state["model"])
            stage = _enter_stage(name, "promote")
            with obs.tracer.span("stage:promote", category="promote"):
                stats = promote_function(
                    function, mssa, profile, tree, state["options"]
                )
            stage = _enter_stage(name, "cleanup")
            with obs.tracer.span("stage:cleanup", category="promote"):
                remove_dummy_loads(function)
                propagate_copies(function)
                dead_code_elimination(function)
                dead_memory_elimination(function)
            stage = _enter_stage(name, "verify")
            with obs.tracer.span("stage:verify", category="promote"):
                if state["verify"]:
                    verify_function(function, check_ssa=True, check_memssa=True)
        except Exception as exc:
            snap.restore()
            fn_span.set("status", "rolled_back").set("stage", stage)
            text = str(exc) or type(exc).__name__
            result = FunctionResult(
                name,
                FunctionResult.ROLLED_BACK,
                stage=stage,
                error_type=type(exc).__name__,
                reason=text.splitlines()[0],
                duration_ms=(time.perf_counter() - started) * 1e3,
                cache_stats=(
                    cache.stats.since(cache_before) if cache is not None else None
                ),
            )
        else:
            fn_span.set("status", "promoted")
            fn_span.set("webs_promoted", stats.webs_promoted)
            payload = FunctionPayload.capture(function)
            # Restore-after-capture: the parent installs the payload;
            # this copy stays at the published epoch for the next run.
            snap.restore()
            result = FunctionResult(
                name,
                FunctionResult.PROMOTED,
                duration_ms=(time.perf_counter() - started) * 1e3,
                stats=stats.as_dict(),
                payload=payload,
                cache_stats=(
                    cache.stats.since(cache_before) if cache is not None else None
                ),
            )
    if obs.enabled:
        result.spans = obs.tracer.export()
        result.metrics = obs.metrics.as_dict()
    if journal is not None:
        docs = journal.export()
        result.decisions = docs[0] if docs else None
    return result


def _promote_batch(
    board, ir_key: str, meta_key: str, names: Sequence[str]
) -> Tuple[Dict[str, int], List[FunctionResult], int]:
    """One worker task: sync to the epoch, promote a batch of functions.

    Returns the sync accounting (full/delta installs this task caused),
    the per-function results in batch order, and the total transformed-IR
    payload bytes headed back to the parent.
    """
    from repro.parallel.pool import _sync_worker

    sync = _sync_worker(board, ir_key, meta_key)
    results = [_promote_one(name) for name in names]
    payload_bytes = sum(
        len(result.payload.data) for result in results if result.payload is not None
    )
    return sync, results, payload_bytes


# -- parent side ----------------------------------------------------------


def _options_key(options) -> tuple:
    """A hashable digest of a :class:`PromotionOptions` (flat fields)."""
    try:
        fields = vars(options)
    except TypeError:
        return (repr(options),)
    return tuple(sorted((key, repr(value)) for key, value in fields.items()))


def _replay(result: FunctionResult) -> FunctionResult:
    """A dispatch-cache hit, stripped of the original run's bookkeeping.

    The payload and stats are byte-identical to re-running the worker
    (that is the dispatch key's contract); the cache counters and spans
    describe work the *original* dispatch did and must not be charged to
    this run.
    """
    return FunctionResult(
        result.name,
        result.status,
        stage=result.stage,
        error_type=result.error_type,
        reason=result.reason,
        duration_ms=result.duration_ms,
        stats=result.stats,
        payload=result.payload,
    )


def promote_functions_parallel(
    module,
    names: Sequence[str],
    profile,
    options,
    alias_model_factory: Callable,
    verify: bool,
    jobs: int,
    use_cache: bool = True,
    observe: bool = False,
    pool=None,
    batch_size: Union[str, int] = "auto",
    extras: Optional[Dict[str, object]] = None,
) -> Tuple[List[FunctionResult], TransportStats]:
    """Fan phases 3+4 out over the warm pool; results in ``names`` order.

    The dispatch is batched (``batch_size="auto"`` sizes batches from
    the pool's cost model; an integer forces fixed-count batches) and
    incremental: the module ships as an anchor-plus-deltas epoch, and
    functions whose fingerprinted content and configuration match a
    previous dispatch replay that dispatch's result without touching a
    worker at all.  ``observe`` makes each worker record spans and
    metrics for its tasks (and disables dispatch replay, which would
    have no spans to report).

    Returns the results plus a :class:`TransportStats` describing what
    was shipped vs reused.  Raises :class:`SchedulerError` when the pool
    cannot be used at all (e.g. an unpicklable alias-model factory)
    after rebuilding it; the caller falls back to the serial path.
    """
    from repro.memory.aliasing import AliasModel
    from repro.parallel.fingerprint import globals_fingerprint, module_fingerprint
    from repro.parallel.pool import publish_epoch, warm_pool

    if pool is None:
        pool = warm_pool(jobs)
    stats = TransportStats()
    profile_map = export_profile(profile, module)
    # Replaying a previous dispatch is only sound when the fingerprints
    # cover everything the promotion read: the conservative alias model
    # reads the globals table (fingerprinted) and the function's own
    # frame variables (fingerprinted); a custom factory could read
    # arbitrary module state, so it always dispatches.
    # ``==``, not ``is``: classmethod access builds a fresh bound-method
    # object every time, so identity would never match.
    # ``extras`` (decision journaling, a trace id) also disables replay:
    # a cached dispatch has no decision document or trace-stamped spans.
    reuse_ok = (
        use_cache
        and not observe
        and not extras
        and alias_model_factory == AliasModel.conservative
    )
    with pool.lock:
        pool.runs += 1
        stats.pool_generation = pool.generation
        try:
            ir_key, fps = module_fingerprint(module)
            gkey = globals_fingerprint(module)
        except Exception as exc:
            raise SchedulerError.wrap(exc) from exc
        opt_key = _options_key(options)
        keys: Dict[str, tuple] = {}
        for name in names:
            slice_key = tuple(sorted((profile_map.get(name) or {}).items()))
            keys[name] = (name, fps[name], gkey, slice_key, opt_key, verify)
        results_by_name: Dict[str, FunctionResult] = {}
        pending: List[str] = []
        for name in names:
            cached = pool.dispatch_lookup(keys[name]) if reuse_ok else None
            if cached is not None:
                results_by_name[name] = _replay(cached)
                stats.functions_reused += 1
            else:
                pending.append(name)
        if pending:
            meta = {
                "profile_map": profile_map,
                "options": options,
                "alias_model_factory": alias_model_factory,
                "verify": verify,
                "use_cache": use_cache,
                "observe": observe,
                "extras": dict(extras or {}),
            }
            try:
                meta_blob = pickle.dumps(meta, protocol=pickle.HIGHEST_PROTOCOL)
                ir_key, meta_key, fps, published = publish_epoch(
                    pool, module, meta_blob, precomputed=(ir_key, fps)
                )
            except Exception as exc:
                raise SchedulerError.wrap(exc) from exc
            stats.bytes_out += published
            sizes = {
                name: CostModel.static_units(module.functions[name])
                for name in pending
            }
            weights = pool.cost_model.weights(sizes)
            batches = plan_batches(pending, weights, jobs, batch_size)
            stats.batches = len(batches)
            try:
                board = pool.board()
                futures = [
                    pool.submit(_promote_batch, board, ir_key, meta_key, tuple(batch))
                    for batch in batches
                ]
                for batch, future in zip(batches, futures):
                    try:
                        sync, batch_results, payload_bytes = future.result()
                    except Exception as exc:
                        # Attribute the failure to the batch whose result
                        # exposed it; the pipeline records this as the
                        # structured fallback reason.  The rebuild below
                        # leaves the pool fresh for the next run — the
                        # same recovery path chaos crashes take.
                        pool.rebuild(kill=True)
                        raise SchedulerError.wrap(exc, function=batch[0]) from exc
                    stats.installs_full += sync["installs_full"]
                    stats.installs_delta += sync["installs_delta"]
                    stats.bytes_in += payload_bytes
                    for result in batch_results:
                        results_by_name[result.name] = result
                        stats.functions_shipped += 1
                        if result.duration_ms > 0:
                            pool.cost_model.observe(result.name, result.duration_ms)
                        if reuse_ok and result.status == FunctionResult.PROMOTED:
                            pool.dispatch_store(keys[result.name], result)
            except SchedulerError:
                raise
            except Exception as exc:
                pool.rebuild(kill=True)
                raise SchedulerError.wrap(exc) from exc
        return [results_by_name[name] for name in names], stats


def _run_task_batch(worker: Callable, batch: List[tuple]) -> List[object]:
    """Worker body for :func:`map_tasks`: one future, many tasks."""
    return [worker(*args) for args in batch]


def map_tasks(
    worker: Callable,
    task_args: Sequence[tuple],
    jobs: int,
    pool=None,
    weights: Optional[Sequence[float]] = None,
    batch_size: Union[str, int] = "auto",
    stats: Optional[dict] = None,
) -> List[object]:
    """Generic shared-nothing fan-out: run ``worker(*args)`` for each args
    tuple on the warm pool, returning results in submission order.

    Used by the timing harness to parallelize at *workload* granularity
    (each task compiles and promotes one workload in a pool worker).
    Tasks are grouped into contiguous batches — one future each — sized
    by ``weights`` (e.g. measured per-task seconds; uniform when
    omitted).  ``worker`` must be a module-level callable and all
    arguments and results must be picklable.  Passing a ``stats`` dict
    fills it with ``batches``/``bytes_out``/``bytes_in`` accounting.
    """
    task_args = list(task_args)
    if stats is not None:
        stats.update({"batches": 0, "bytes_out": 0, "bytes_in": 0})
    if jobs <= 1 or len(task_args) <= 1:
        return [worker(*args) for args in task_args]
    from repro.parallel.pool import warm_pool

    if pool is None:
        pool = warm_pool(jobs)
    indices = list(range(len(task_args)))
    weight_map = {
        index: (weights[index] if weights is not None else 1.0)
        for index in indices
    }
    batches = plan_batches(indices, weight_map, jobs, batch_size)
    with pool.lock:
        pool.runs += 1
        futures = []
        for batch in batches:
            payload = [task_args[index] for index in batch]
            if stats is not None:
                stats["bytes_out"] += len(
                    pickle.dumps((worker, payload), protocol=pickle.HIGHEST_PROTOCOL)
                )
            futures.append(pool.submit(_run_task_batch, worker, payload))
        if stats is not None:
            stats["batches"] = len(batches)
        results: Dict[int, object] = {}
        try:
            for batch, future in zip(batches, futures):
                batch_results = future.result()
                if stats is not None:
                    stats["bytes_in"] += len(
                        pickle.dumps(
                            batch_results, protocol=pickle.HIGHEST_PROTOCOL
                        )
                    )
                for index, value in zip(batch, batch_results):
                    results[index] = value
        except Exception:
            pool.rebuild(kill=True)
            raise
    return [results[index] for index in indices]
