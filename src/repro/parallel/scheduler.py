"""The shared-nothing function-level scheduler.

Sastry & Ju's algorithm is embarrassingly parallel at function
granularity: each function's interval tree, memory-SSA webs, and
promotion decisions depend only on that function's IR, the module-level
profile, and an alias model built from the *pre-promotion* module.  The
scheduler exploits that:

* the parent serializes the prepared module once (:class:`ModulePayload`)
  and each worker process deserializes its own pristine copy — workers
  share nothing, so there is no locking and no cross-talk;
* each task is one function name; the worker runs phases 3+4 (memory SSA,
  promotion, cleanup, verification) on its copy and ships the transformed
  IR back as a :class:`FunctionPayload`;
* the parent merges results **in module order** regardless of completion
  order, so statistics, diagnostics, and the final IR are deterministic
  and byte-identical to a serial run.

Failures inside a worker reproduce the serial transaction semantics: the
worker restores its local snapshot, reports the failing stage and error,
and the parent records a rollback without installing anything — exactly
what the serial path's snapshot/restore does.

Pool-level failures (a worker dying, unpicklable user callables) degrade
to the serial path with a diagnostic warning rather than failing the run.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.intervals import IntervalTree
from repro.parallel.cache import AnalysisCache, CacheStats, activate
from repro.parallel.transport import (
    FunctionPayload,
    ModulePayload,
    export_profile,
    import_profile,
)


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` means one worker per
    CPU; anything else must be a positive worker count."""
    if jobs is None or jobs == 0:
        return max(1, os.cpu_count() or 1)
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0, got {jobs}")
    return jobs


class FunctionResult:
    """What one worker task produced for one function (picklable)."""

    __slots__ = (
        "name",
        "status",
        "stage",
        "error_type",
        "reason",
        "duration_ms",
        "stats",
        "payload",
        "cache_stats",
        "spans",
        "metrics",
    )

    PROMOTED = "promoted"
    ROLLED_BACK = "rolled_back"

    def __init__(
        self,
        name: str,
        status: str,
        stage: Optional[str] = None,
        error_type: Optional[str] = None,
        reason: Optional[str] = None,
        duration_ms: float = 0.0,
        stats: Optional[Dict[str, int]] = None,
        payload: Optional[FunctionPayload] = None,
        cache_stats: Optional[CacheStats] = None,
        spans: Optional[List[Dict[str, object]]] = None,
        metrics: Optional[Dict[str, Dict[str, object]]] = None,
    ) -> None:
        self.name = name
        self.status = status
        self.stage = stage
        self.error_type = error_type
        self.reason = reason
        self.duration_ms = duration_ms
        self.stats = stats
        self.payload = payload
        self.cache_stats = cache_stats
        #: Exported worker span records (``Tracer.export``) when the run
        #: was observed; the parent merges them into its own trace with
        #: this worker's pid as the lane.  ``None`` when tracing was off.
        self.spans = spans
        #: The worker-local metrics snapshot (``MetricsRegistry.as_dict``)
        #: to absorb in module order; ``None`` when tracing was off.
        self.metrics = metrics


class SchedulerError(RuntimeError):
    """The pool could not be used; callers should fall back to serial.

    Carries the triggering failure in structured form — exception type,
    first message line, and (when one task was identifiable) the
    function whose result exposed the failure — so the pipeline can
    record a ``fallback_reason`` instead of discarding the cause.
    """

    def __init__(
        self,
        message: str,
        error_type: Optional[str] = None,
        detail: Optional[str] = None,
        function: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.error_type = error_type
        self.detail = detail
        self.function = function

    @classmethod
    def wrap(cls, exc: BaseException, function: Optional[str] = None) -> "SchedulerError":
        detail = (str(exc) or type(exc).__name__).splitlines()[0]
        where = f" (while collecting {function!r})" if function else ""
        return cls(
            f"parallel promotion unavailable ({type(exc).__name__}: {detail})"
            f"{where}; falling back to serial execution",
            error_type=type(exc).__name__,
            detail=detail,
            function=function,
        )

    def as_dict(self) -> Dict[str, Optional[str]]:
        return {
            "error_type": self.error_type,
            "detail": self.detail,
            "function": self.function,
        }


# -- worker side ----------------------------------------------------------

#: Per-worker-process state, set once by the pool initializer.
_WORKER_STATE: Optional[dict] = None

#: Optional worker-side hook called as ``observer(name, stage)`` at every
#: stage transition inside :func:`_promote_one`.  The resilient executor
#: installs one so a function killed by the deadline watchdog can be
#: attributed to the stage it hung in.
_STAGE_OBSERVER: Optional[Callable[[str, str], None]] = None


def _enter_stage(name: str, stage: str) -> str:
    if _STAGE_OBSERVER is not None:
        _STAGE_OBSERVER(name, stage)
    return stage


def _init_worker(
    module_bytes: bytes,
    profile_map: Dict[str, Dict[str, int]],
    options,
    alias_model_factory: Callable,
    verify: bool,
    use_cache: bool,
    observe: bool = False,
) -> None:
    global _WORKER_STATE
    payload = ModulePayload(module_bytes)
    module = payload.restore()
    _WORKER_STATE = {
        "module": module,
        "model": alias_model_factory(module),
        "profile": import_profile(profile_map, module),
        "options": options,
        "verify": verify,
        "use_cache": use_cache,
        "observe": observe,
    }


def _promote_one(name: str) -> FunctionResult:
    """Run phases 3+4 for one function on the worker's module copy."""
    # Imported here: the pipeline imports this module, so a top-level
    # import would be circular.
    from repro.ir.verify import verify_function
    from repro.memory.memssa import build_memory_ssa
    from repro.observability import NULL_OBSERVABILITY, Observability, activate_metrics
    from repro.passes.copyprop import propagate_copies
    from repro.passes.dce import (
        dead_code_elimination,
        dead_memory_elimination,
        remove_dummy_loads,
    )
    from repro.promotion.driver import promote_function
    from repro.robustness.snapshot import snapshot_function

    state = _WORKER_STATE
    assert state is not None, "worker used before initialization"
    module = state["module"]
    function = module.functions[name]
    cache = AnalysisCache() if state["use_cache"] else None
    obs = Observability.recording() if state["observe"] else NULL_OBSERVABILITY

    snap = snapshot_function(function)
    started = time.perf_counter()
    stage = _enter_stage(name, "memssa")
    with activate(cache), activate_metrics(
        obs.metrics if obs.enabled else None
    ), obs.tracer.span("function:" + name, category="promote") as fn_span:
        try:
            # The parent already normalized the CFG in phase 1; recompute
            # the (deterministic) interval tree on this copy.
            with obs.tracer.span("stage:memssa", category="promote"):
                tree = IntervalTree.compute(function)
                mssa = build_memory_ssa(function, state["model"])
            stage = _enter_stage(name, "promote")
            with obs.tracer.span("stage:promote", category="promote"):
                stats = promote_function(
                    function, mssa, state["profile"], tree, state["options"]
                )
            stage = _enter_stage(name, "cleanup")
            with obs.tracer.span("stage:cleanup", category="promote"):
                remove_dummy_loads(function)
                propagate_copies(function)
                dead_code_elimination(function)
                dead_memory_elimination(function)
            stage = _enter_stage(name, "verify")
            with obs.tracer.span("stage:verify", category="promote"):
                if state["verify"]:
                    verify_function(function, check_ssa=True, check_memssa=True)
        except Exception as exc:
            snap.restore()
            fn_span.set("status", "rolled_back").set("stage", stage)
            text = str(exc) or type(exc).__name__
            result = FunctionResult(
                name,
                FunctionResult.ROLLED_BACK,
                stage=stage,
                error_type=type(exc).__name__,
                reason=text.splitlines()[0],
                duration_ms=(time.perf_counter() - started) * 1e3,
                cache_stats=cache.stats if cache else None,
            )
        else:
            fn_span.set("status", "promoted")
            fn_span.set("webs_promoted", stats.webs_promoted)
            result = FunctionResult(
                name,
                FunctionResult.PROMOTED,
                duration_ms=(time.perf_counter() - started) * 1e3,
                stats=stats.as_dict(),
                payload=FunctionPayload.capture(function),
                cache_stats=cache.stats if cache else None,
            )
    if obs.enabled:
        result.spans = obs.tracer.export()
        result.metrics = obs.metrics.as_dict()
    return result


# -- parent side ----------------------------------------------------------


def promote_functions_parallel(
    module,
    names: Sequence[str],
    profile,
    options,
    alias_model_factory: Callable,
    verify: bool,
    jobs: int,
    use_cache: bool = True,
    observe: bool = False,
) -> List[FunctionResult]:
    """Fan phases 3+4 out over a process pool; results in ``names`` order.

    ``observe`` makes each worker record spans and metrics for its task
    and ship them back on the :class:`FunctionResult`.

    Raises :class:`SchedulerError` when the pool cannot be used at all
    (e.g. an unpicklable alias-model factory); the caller falls back to
    the serial path.
    """
    module_bytes = ModulePayload.capture(module).data
    profile_map = export_profile(profile, module)
    init_args = (
        module_bytes,
        profile_map,
        options,
        alias_model_factory,
        verify,
        use_cache,
        observe,
    )
    try:
        with ProcessPoolExecutor(
            max_workers=jobs, initializer=_init_worker, initargs=init_args
        ) as pool:
            futures = {name: pool.submit(_promote_one, name) for name in names}
            results = []
            for name in names:
                try:
                    results.append(futures[name].result())
                except Exception as exc:
                    # Attribute the failure to the task whose result
                    # exposed it; the pipeline records this as the
                    # structured fallback reason.
                    raise SchedulerError.wrap(exc, function=name) from exc
            return results
    except SchedulerError:
        raise
    except Exception as exc:
        raise SchedulerError.wrap(exc) from exc


def map_tasks(
    worker: Callable,
    task_args: Sequence[tuple],
    jobs: int,
) -> List[object]:
    """Generic shared-nothing fan-out: run ``worker(*args)`` for each args
    tuple in a process pool, returning results in submission order.

    Used by the timing harness to parallelize at *workload* granularity
    (each task compiles and promotes one workload in its own process).
    ``worker`` must be a module-level callable and all arguments and
    results must be picklable.
    """
    if jobs <= 1 or len(task_args) <= 1:
        return [worker(*args) for args in task_args]
    with ProcessPoolExecutor(max_workers=jobs) as pool:
        futures = [pool.submit(worker, *args) for args in task_args]
        return [future.result() for future in futures]
