"""Serialization of IR across process boundaries (shared-nothing workers).

Function IR is a pointer-rich object graph that *shares* two kinds of
module-level objects: the owning :class:`~repro.ir.module.Module` and the
global :class:`~repro.memory.resources.MemoryVar` storage objects (the
interpreter and the alias model both depend on those identities — the same
sharing discipline :mod:`repro.robustness.snapshot` documents).  Pickling
a function naively would drag the whole module along and, worse, produce
*private copies* of the globals on the other side.

:class:`FunctionPayload` solves this the same way ``FunctionSnapshot``
does — a memoized ``deepcopy`` — but with the shared objects replaced by
named tokens before pickling and re-bound to the *destination* module's
objects after unpickling.  A payload captured in a worker against the
worker's module copy therefore installs cleanly into the parent's module,
and vice versa.  Installation reuses :class:`FunctionState`, so every
external reference to the destination ``Function`` object stays valid.

:class:`ModulePayload` ships a whole module (workers get one pristine copy
each), and the profile helpers translate block-identity-keyed
:class:`~repro.profile.profiles.ProfileData` to a name-keyed form that
survives the trip.
"""

from __future__ import annotations

import copy
import pickle
from typing import Dict, Optional

from repro.ir.function import Function
from repro.ir.module import Module
from repro.profile.profiles import ProfileData
from repro.robustness.snapshot import FunctionState


class TransportError(RuntimeError):
    """A payload could not be captured or installed."""


class _Token:
    """A named placeholder for a module-level shared object."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"_Token({self.name})"


def _shared_memo(module: Optional[Module]) -> "tuple[dict, _Token, Dict[str, _Token]]":
    """deepcopy memo replacing the module and its globals with tokens."""
    module_token = _Token("<module>")
    global_tokens: Dict[str, _Token] = {}
    memo: dict = {}
    if module is not None:
        memo[id(module)] = module_token
        for name, var in module.globals.items():
            token = _Token(name)
            global_tokens[name] = token
            memo[id(var)] = token
    return memo, module_token, global_tokens


class FunctionPayload:
    """One function's IR, serialized with its shared references tokenized."""

    def __init__(self, name: str, data: bytes) -> None:
        self.name = name
        self.data = data

    @classmethod
    def capture(cls, function: Function) -> "FunctionPayload":
        memo, module_token, global_tokens = _shared_memo(function.module)
        clone = copy.deepcopy(function, memo)
        try:
            data = pickle.dumps(
                (clone, module_token, global_tokens),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        except Exception as exc:  # pragma: no cover - exotic IR only
            raise TransportError(
                f"cannot serialize function {function.name}: {exc}"
            ) from exc
        return cls(function.name, data)

    def install(self, module: Module) -> Function:
        """Re-bind the payload to ``module`` and install it into the
        function of the same name, preserving the object's identity."""
        clone, module_token, global_tokens = pickle.loads(self.data)
        target = module.functions.get(self.name)
        if target is None:
            raise TransportError(f"module has no function {self.name}")
        memo: dict = {id(module_token): module}
        for name, token in global_tokens.items():
            var = module.globals.get(name)
            if var is None:
                raise TransportError(
                    f"function {self.name} references unknown global @{name}"
                )
            memo[id(token)] = var
        rebound = copy.deepcopy(clone, memo)
        FunctionState(rebound).install(target)
        return target


class ModulePayload:
    """A whole module, pickled (self-contained object graph)."""

    def __init__(self, data: bytes) -> None:
        self.data = data

    @classmethod
    def capture(cls, module: Module) -> "ModulePayload":
        try:
            return cls(pickle.dumps(module, protocol=pickle.HIGHEST_PROTOCOL))
        except Exception as exc:  # pragma: no cover - exotic IR only
            raise TransportError(
                f"cannot serialize module {module.name}: {exc}"
            ) from exc

    def restore(self) -> Module:
        return pickle.loads(self.data)


# -- profiles -------------------------------------------------------------


def export_profile(
    profile: Optional[ProfileData], module: Module
) -> Dict[str, Dict[str, int]]:
    """Block-identity-keyed profile -> ``{function: {block: count}}``.

    Blocks that no longer belong to a module function (removed by
    normalization) are dropped; they can carry no placement weight on the
    other side anyway.
    """
    mapping: Dict[str, Dict[str, int]] = {}
    if profile is None:
        return mapping
    for block, count in profile.items():
        function = block.function
        if function is None or module.functions.get(function.name) is not function:
            continue
        mapping.setdefault(function.name, {})[block.name] = count
    return mapping


def import_profile(mapping: Dict[str, Dict[str, int]], module: Module) -> ProfileData:
    """Re-key an exported profile against ``module``'s own blocks."""
    profile = ProfileData()
    for fn_name, blocks in mapping.items():
        function = module.functions.get(fn_name)
        if function is None:
            continue
        by_name = {block.name: block for block in function.blocks}
        for block_name, count in blocks.items():
            block = by_name.get(block_name)
            if block is not None:
                profile.set_freq(block, count)
    return profile
