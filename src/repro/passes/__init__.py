"""Cleanup passes: dead code elimination and copy propagation.

Promotion leaves behind copies ("These copy instructions are eliminated
later", §4.4), possibly unused compensation loads, dead register phis,
and dummy aliased loads; these passes sweep all of that.
"""

from repro.passes.copyprop import propagate_copies
from repro.passes.dce import (
    dead_code_elimination,
    dead_memory_elimination,
    dead_memphi_elimination,
    remove_dummy_loads,
)

__all__ = [
    "dead_code_elimination",
    "dead_memory_elimination",
    "dead_memphi_elimination",
    "propagate_copies",
    "remove_dummy_loads",
]
