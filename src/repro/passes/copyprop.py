"""Copy propagation (SSA form only).

Replaces every use of a copy's target with its (transitively resolved)
source and lets DCE collect the copies.  Sound under SSA because the
source's definition dominates the copy, which dominates every use of the
target.
"""

from __future__ import annotations

from typing import Dict

from repro.ir import instructions as I
from repro.ir.function import Function
from repro.ir.values import VReg, Value


def propagate_copies(function: Function) -> int:
    """Rewrite uses of copy targets; returns the number of copies folded."""
    forward: Dict[VReg, Value] = {}
    for inst in function.instructions():
        if isinstance(inst, I.Copy):
            forward[inst.dst] = inst.src

    if not forward:
        return 0

    def resolve(value: Value) -> Value:
        seen = set()
        while isinstance(value, VReg) and value in forward and id(value) not in seen:
            seen.add(id(value))
            value = forward[value]
        return value

    for inst in function.instructions():
        if isinstance(inst, I.Phi):
            inst.incoming = [(b, resolve(v)) for b, v in inst.incoming]
            inst._sync_operands()
        else:
            for i, op in enumerate(inst.operands):
                inst.operands[i] = resolve(op)

    folded = 0
    for inst in list(function.instructions()):
        if isinstance(inst, I.Copy):
            inst.remove_from_block()
            folded += 1
    return folded
