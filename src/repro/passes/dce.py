"""Dead code elimination.

``dead_code_elimination`` removes pure instructions whose results are
never used — including singleton loads, whose only effect is producing a
value.  Stores are *never* removed here: memory-SSA-aware dead-store
logic lives in the incremental updater's step 4, where it is provably
safe.

``dead_memphi_elimination`` removes memory phis that no non-phi
instruction transitively reads (a mark-and-sweep, so cyclic phi webs in
loops are collected too — the plain "no use" rule of Fig. 11 cannot
collect those).
"""

from __future__ import annotations

from typing import List, Set

from repro.ir import instructions as I
from repro.ir.function import Function
from repro.ir.values import VReg


#: Instruction classes that compute a value and have no other effect.
_PURE = (I.Copy, I.BinOp, I.UnOp, I.Phi, I.Load, I.AddrOf, I.Elem)


def dead_code_elimination(function: Function) -> int:
    """Delete pure instructions with unused targets; returns the count."""
    removed = 0
    while True:
        used: Set[VReg] = set()
        for inst in function.instructions():
            for op in inst.operands:
                if isinstance(op, VReg):
                    used.add(op)
        victims: List[I.Instruction] = []
        for inst in function.instructions():
            if (
                isinstance(inst, _PURE)
                and inst.dst is not None
                and inst.dst not in used
            ):
                victims.append(inst)
        if not victims:
            return removed
        for inst in victims:
            inst.remove_from_block()
            removed += 1


def dead_memphi_elimination(function: Function) -> int:
    """Delete memory phis not transitively read by any non-phi.

    A memory name is live when a non-phi instruction uses it; liveness
    propagates backward through live phis to their operands.  Memory phis
    whose targets end up dead are removed (cycle-aware).
    """
    phis: List[I.MemPhi] = [
        inst for inst in function.instructions() if isinstance(inst, I.MemPhi)
    ]
    if not phis:
        return 0

    live: Set[int] = set()
    worklist: List = []
    for inst in function.instructions():
        if isinstance(inst, I.MemPhi):
            continue
        for name in inst.mem_uses:
            if id(name) not in live:
                live.add(id(name))
                worklist.append(name)
    while worklist:
        name = worklist.pop()
        def_inst = name.def_inst
        if isinstance(def_inst, I.MemPhi):
            for _, operand in def_inst.incoming:
                if id(operand) not in live:
                    live.add(id(operand))
                    worklist.append(operand)

    removed = 0
    for phi in phis:
        if id(phi.dst_name) not in live:
            phi.remove_from_block()
            removed += 1
    return removed


def dead_memory_elimination(function: Function) -> int:
    """Combined dead memory-phi *and* dead-store sweep (cycle-aware).

    A memory name is live when a non-phi instruction reads it; liveness
    propagates backward through live phis.  Memory phis and singleton
    stores whose defined names are dead are deleted together — deleting
    them separately leaks: a skipped web's phis fall only at final
    cleanup, orphaning the stores that fed them (observed as creeping
    re-promotion in the idempotence tests).

    Sound because memory SSA links every observable read — later loads,
    calls, pointer references, and returns (which observe all globals) —
    to the reaching name: a store whose name has no transitive non-phi
    reader cannot be observed.  Stores without memory-SSA annotations
    (plain IR) are never touched.
    """
    live: Set[int] = set()
    worklist = []
    for inst in function.instructions():
        if isinstance(inst, I.MemPhi):
            continue
        for name in inst.mem_uses:
            if id(name) not in live:
                live.add(id(name))
                worklist.append(name)
    while worklist:
        name = worklist.pop()
        def_inst = name.def_inst
        if isinstance(def_inst, I.MemPhi):
            for _, operand in def_inst.incoming:
                if id(operand) not in live:
                    live.add(id(operand))
                    worklist.append(operand)

    removed = 0
    for inst in list(function.instructions()):
        if isinstance(inst, I.MemPhi):
            if id(inst.dst_name) not in live:
                inst.remove_from_block()
                removed += 1
        elif isinstance(inst, I.Store):
            if inst.mem_defs and id(inst.mem_defs[0]) not in live:
                inst.remove_from_block()
                removed += 1
    return removed


def remove_dummy_loads(function: Function) -> int:
    """Delete every dummy aliased load ("the algorithm deletes them after
    promotion", §4.4)."""
    removed = 0
    for block in function.blocks:
        before = len(block.instructions)
        block.instructions = [
            inst
            for inst in block.instructions
            if not isinstance(inst, I.DummyAliasedLoad)
        ]
        removed += before - len(block.instructions)
    return removed
