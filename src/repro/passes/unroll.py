"""Loop unrolling via the paper's incremental SSA update.

Section 4.4: "The incremental update algorithm is quite general and it
can be used in other algorithms such as loop unrolling where multiple
definitions are generated for a resource, and for incrementally
converting resources to SSA form."  This pass demonstrates exactly that
use: it duplicates the body of an innermost proper loop (factor-2
unrolling that needs no trip-count analysis — the cloned header keeps
its exit test), clones every memory definition in the body under fresh
SSA names, and then calls
:func:`repro.ssa.incremental.update_ssa_for_cloned_resources` once per
variable to re-establish memory SSA: the update re-places phis on the
modified CFG's iterated dominance frontier (including brand-new join
points at the loop exits, which gain a second predecessor), renames
every use — including the uses *inside* the cloned blocks, which still
reference original names — and sweeps any definition the unroll made
dead.

The pass runs on post-lowering, pre-mem2reg IR, where every virtual
register is block-local by construction (loop state lives in frame
variables); cloning therefore only needs per-block register renaming.
Loops violating that assumption, improper loops, and non-innermost
loops are skipped.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.analysis.intervals import Interval, normalize_for_promotion
from repro.ir import instructions as I
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.values import VReg, Value
from repro.memory.aliasing import AliasModel
from repro.memory.memssa import MemorySSA, build_memory_ssa
from repro.memory.resources import MemName, MemoryVar
from repro.ssa.incremental import names_of_var, update_ssa_for_cloned_resources


def unroll_module(module: Module, max_loop_blocks: int = 12) -> int:
    """Unroll (by 2) every eligible innermost loop of every function;
    returns the number of loops unrolled.  Leaves functions in valid
    memory SSA form."""
    model = AliasModel.conservative(module)
    total = 0
    for function in module.functions.values():
        total += unroll_function(function, model, max_loop_blocks)
    return total


def unroll_function(
    function: Function, alias_model: AliasModel, max_loop_blocks: int = 12
) -> int:
    tree = normalize_for_promotion(function)
    mssa = build_memory_ssa(function, alias_model)
    unrolled = 0
    for interval in tree.bottom_up():
        if interval.is_root or interval.children or not interval.is_proper:
            continue
        if len(interval.blocks) > max_loop_blocks:
            continue
        if _unroll_loop(function, mssa, interval):
            unrolled += 1
    return unrolled


def _unroll_loop(function: Function, mssa: MemorySSA, loop: Interval) -> bool:
    header = loop.header
    if not _registers_are_block_local(loop):
        return False
    latches = [p for p in header.preds if loop.contains(p)]
    if not latches:
        return False

    # ---- clone every loop block -----------------------------------------
    block_map: Dict[int, BasicBlock] = {}
    for block in loop.blocks:
        block_map[id(block)] = function.new_block(f"u{block.name}")

    #: Original memory name -> its clone (for names defined in the loop).
    name_map: Dict[int, MemName] = {}
    cloned_by_var: Dict[int, Tuple[MemoryVar, List[MemName]]] = {}

    def clone_name(name: MemName, inst: I.Instruction) -> MemName:
        fresh = function.new_mem_name(name.var, inst)
        name_map[id(name)] = fresh
        var_entry = cloned_by_var.setdefault(id(name.var), (name.var, []))
        var_entry[1].append(fresh)
        return fresh

    # Pass 1: clone instructions (registers renamed per block; internal
    # branch targets mapped, except the back edge, which returns to the
    # ORIGINAL header so each traversal of the clone is one more
    # iteration).
    def target_map(block: BasicBlock) -> BasicBlock:
        if block is header:
            return header
        return block_map.get(id(block), block)

    cloned_phis: List[Tuple[I.MemPhi, I.MemPhi, BasicBlock]] = []
    for block in loop.blocks:
        clone_block = block_map[id(block)]
        reg_map: Dict[VReg, VReg] = {}

        def map_value(value: Value) -> Value:
            if isinstance(value, VReg) and value in reg_map:
                return reg_map[value]
            return value

        for inst in block.instructions:
            if isinstance(inst, I.MemPhi):
                target = function.new_mem_name(inst.var)
                clone = I.MemPhi(inst.var, target, [])
                name_map[id(inst.dst_name)] = target
                var_entry = cloned_by_var.setdefault(id(inst.var), (inst.var, []))
                var_entry[1].append(target)
                clone_block.insert_at_front(clone)
                cloned_phis.append((inst, clone, block))
                continue
            clone = _clone_instruction(function, inst, map_value, target_map)
            if inst.dst is not None:
                reg_map[inst.dst] = clone.dst
            for name in inst.mem_defs:
                clone.mem_defs.append(clone_name(name, clone))
            clone.mem_uses = list(inst.mem_uses)  # renamed by the update
            if clone.is_terminator:
                clone_block.set_terminator(clone)
            else:
                clone_block.append(clone)

    # Pass 2: fill the cloned memphis' incoming lists.
    for original, clone, block in cloned_phis:
        if block is header:
            # The cloned header is entered only from the original latches;
            # the values arriving there are the original latch operands.
            for latch in latches:
                clone.set_incoming(latch, original.name_for(latch))
        else:
            for pred, name in original.incoming:
                mapped_pred = block_map[id(pred)]
                mapped_name = name_map.get(id(name), name)
                clone.set_incoming(mapped_pred, mapped_name)

    # ---- rewire the back edges ------------------------------------------
    cloned_header = block_map[id(header)]
    for latch in latches:
        latch.retarget(header, cloned_header)
    # The original header's phis now receive the cloned latch values.
    for phi in list(header.all_phis()):
        if isinstance(phi, I.MemPhi):
            for latch in latches:
                name = phi.name_for(latch)
                phi.remove_incoming(latch)
                cloned_latch = block_map[id(latch)]
                phi.set_incoming(cloned_latch, name_map.get(id(name), name))

    # ---- one batched SSA update per variable ------------------------------
    for var, clones in sorted(
        cloned_by_var.values(), key=lambda pair: pair[0].name
    ):
        seed = [mssa.entry_names[var]] if var in mssa.entry_names else []
        clone_ids = {id(n) for n in clones}
        old = [n for n in names_of_var(function, var, seed) if id(n) not in clone_ids]
        update_ssa_for_cloned_resources(function, old, clones)
    return True


def _registers_are_block_local(loop: Interval) -> bool:
    """True when every register defined in the loop is only used inside
    its defining block (the post-lowering invariant unrolling relies on)."""
    def_block: Dict[VReg, BasicBlock] = {}
    for block in loop.blocks:
        for inst in block.instructions:
            if inst.dst is not None:
                def_block[inst.dst] = block
    for block in loop.blocks:
        for inst in block.instructions:
            if isinstance(inst, I.Phi):
                return False  # register phis mean mem2reg already ran
            for op in inst.operands:
                if isinstance(op, VReg) and op in def_block:
                    if def_block[op] is not block:
                        return False
    return True


def _clone_instruction(function: Function, inst: I.Instruction, map_value, target_map):
    """Structural clone with register operands mapped and a fresh dst."""
    fresh_dst = function.new_reg("u") if inst.dst is not None else None
    if isinstance(inst, I.Copy):
        return I.Copy(fresh_dst, map_value(inst.src))
    if isinstance(inst, I.BinOp):
        return I.BinOp(fresh_dst, inst.op, map_value(inst.lhs), map_value(inst.rhs))
    if isinstance(inst, I.UnOp):
        return I.UnOp(fresh_dst, inst.op, map_value(inst.src))
    if isinstance(inst, I.Load):
        return I.Load(fresh_dst, inst.var)
    if isinstance(inst, I.Store):
        return I.Store(inst.var, map_value(inst.value))
    if isinstance(inst, I.AddrOf):
        return I.AddrOf(fresh_dst, inst.var)
    if isinstance(inst, I.Elem):
        return I.Elem(fresh_dst, inst.array, map_value(inst.index))
    if isinstance(inst, I.PtrLoad):
        return I.PtrLoad(fresh_dst, map_value(inst.ptr))
    if isinstance(inst, I.PtrStore):
        return I.PtrStore(map_value(inst.ptr), map_value(inst.value))
    if isinstance(inst, I.ArrayLoad):
        return I.ArrayLoad(fresh_dst, inst.array, map_value(inst.index))
    if isinstance(inst, I.ArrayStore):
        return I.ArrayStore(inst.array, map_value(inst.index), map_value(inst.value))
    if isinstance(inst, I.Call):
        return I.Call(fresh_dst, inst.callee, [map_value(a) for a in inst.operands])
    if isinstance(inst, I.Print):
        return I.Print([map_value(v) for v in inst.operands])
    if isinstance(inst, I.Jump):
        return I.Jump(target_map(inst.target))
    if isinstance(inst, I.CondBr):
        return I.CondBr(
            map_value(inst.cond), target_map(inst.if_true), target_map(inst.if_false)
        )
    if isinstance(inst, I.Ret):
        return I.Ret(map_value(inst.value) if inst.value is not None else None)
    raise NotImplementedError(f"cannot clone {type(inst).__name__}")
