"""Execution, profiling, and dynamic-cost measurement.

The interpreter is this reproduction's stand-in for the paper's hardware
runs: it executes IR deterministically, collects basic-block execution
frequencies (the profile that drives promotion), counts executed memory
operations (Table 2's "dynamic cost"), and serves as the semantics oracle
for differential testing of every transformation.
"""

from repro.profile.estimator import estimate_profile
from repro.profile.interp import (
    ExecutionResult,
    Interpreter,
    InterpreterError,
    InterpreterLimitError,
    run_module,
)
from repro.profile.profiles import ProfileData

__all__ = [
    "ExecutionResult",
    "Interpreter",
    "InterpreterError",
    "InterpreterLimitError",
    "ProfileData",
    "estimate_profile",
    "run_module",
]
