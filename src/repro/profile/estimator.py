"""Static profile estimation (the no-profile fallback / ablation arm).

When no measured profile is available, estimate block frequencies from
loop structure: frequency multiplies by ``loop_multiplier`` per nesting
level, and conditional branch probability is split evenly.  This is a
deliberately simple Ball/Larus-flavoured heuristic — the benchmarks use
it to quantify how much the paper's *profile-driven* placement actually
buys over structural guessing (one of the ablations DESIGN.md lists).
"""

from __future__ import annotations

from repro.analysis.cfgutils import reverse_postorder
from repro.analysis.intervals import IntervalTree
from repro.ir.function import Function
from repro.ir.module import Module
from repro.profile.profiles import ProfileData


def estimate_profile(module: Module, loop_multiplier: int = 10) -> ProfileData:
    """Estimate frequencies for every reachable block of every function."""
    profile = ProfileData()
    for function in module.functions.values():
        _estimate_function(function, profile, loop_multiplier)
    return profile


def _estimate_function(
    function: Function, profile: ProfileData, loop_multiplier: int
) -> None:
    tree = IntervalTree.compute(function)
    for block in reverse_postorder(function):
        depth = tree.loop_depth(block)
        base = loop_multiplier ** depth
        # Halve for each conditional branch on the path from the innermost
        # header (cheap approximation: one halving if the block is a
        # conditional target that is not a loop header).
        interval = tree.innermost(block)
        is_header = any(
            block is e for e in ([] if interval.is_root else interval.entries)
        )
        if not is_header and len(block.preds) == 1 and len(block.preds[0].succs) > 1:
            base = max(1, base // 2)
        profile.set_freq(block, base)
