"""A deterministic IR interpreter.

Semantics:

* integers are unbounded Python ints; ``div``/``rem`` truncate toward
  zero and yield 0 for a zero divisor (total semantics keep random
  programs well-defined for property-based testing);
* shift amounts are masked to 0..63;
* comparison results are 0/1; branch conditions treat nonzero as true;
* ``undef`` reads as 0 (the front end zero-initializes locals anyway);
* pointers are (cells, index) views onto one-cell scalar boxes or array
  cell lists; arithmetic on pointers is not representable in the IR;
* phis in a block are evaluated simultaneously from the edge just taken.

The interpreter works on any IR the verifier accepts — pre-SSA, SSA,
memory-SSA-annotated, or post-phi-elimination — because memory
annotations carry no runtime meaning.  It counts executed singleton
loads/stores and per-block frequencies, which is everything Tables 1 and
2 need.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.ir import instructions as I
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.values import Const, Undef, Value, VReg


class InterpreterError(RuntimeError):
    """Raised on runtime errors: unknown callee, step/recursion budget
    exhaustion, out-of-bounds array access."""


class InterpreterLimitError(InterpreterError):
    """A step or recursion budget was exhausted.

    A distinct subclass so drivers can treat budget exhaustion as a
    recoverable condition (fall back to the static profile estimator)
    while genuine runtime errors still propagate."""

    def __init__(self, message: str, steps: int = 0, depth: int = 0) -> None:
        super().__init__(message)
        self.steps = steps
        self.depth = depth


class Pointer:
    """A runtime pointer: a view onto a cell list."""

    __slots__ = ("cells", "index")

    def __init__(self, cells: List[int], index: int = 0) -> None:
        self.cells = cells
        self.index = index

    def read(self) -> int:
        return self.cells[self.index]

    def write(self, value: int) -> None:
        self.cells[self.index] = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Pointer({self.cells!r}[{self.index}])"


class ExecutionResult:
    """Everything one program run produced and cost."""

    def __init__(self) -> None:
        #: Printed tuples, in order — the observable behaviour.
        self.output: List[Tuple[int, ...]] = []
        self.return_value: int = 0
        #: Executions per basic block (the profile), keyed by block object.
        self.block_counts: Dict[BasicBlock, int] = {}
        #: Dynamic counts of executed operations.
        self.loads = 0          # singleton loads
        self.stores = 0         # singleton stores
        self.ptr_loads = 0
        self.ptr_stores = 0
        self.array_loads = 0
        self.array_stores = 0
        self.calls = 0
        self.copies = 0
        self.steps = 0

    @property
    def memory_ops(self) -> int:
        """Singleton memory operations — the paper's reported metric."""
        return self.loads + self.stores

    def globals_snapshot(self) -> Dict[str, int]:
        return dict(self._globals_final)

    _globals_final: Dict[str, int] = {}


class Interpreter:
    def __init__(
        self,
        module: Module,
        max_steps: int = 10_000_000,
        max_depth: int = 200,
        externals: Optional[Dict[str, Callable[..., int]]] = None,
    ) -> None:
        self.module = module
        self.max_steps = max_steps
        self.max_depth = max_depth
        self.externals = externals or {}

    def run(self, entry: str = "main", args: Sequence[int] = ()) -> ExecutionResult:
        result = ExecutionResult()
        globals_store: Dict[int, List[int]] = {}
        for var in self.module.globals.values():
            globals_store[id(var)] = var.initial_cells()

        function = self.module.functions.get(entry)
        if function is None:
            raise InterpreterError(f"no entry function {entry!r}")
        result.return_value = self._call(function, list(args), globals_store, result, 0)
        result._globals_final = {
            var.name: globals_store[id(var)][0]
            for var in self.module.globals.values()
            if var.is_scalar
        }
        return result

    # -- execution -------------------------------------------------------

    def _call(
        self,
        function: Function,
        args: List[int],
        globals_store: Dict[int, List[int]],
        result: ExecutionResult,
        depth: int,
    ) -> int:
        if depth > self.max_depth:
            raise InterpreterLimitError(
                f"recursion deeper than {self.max_depth}", depth=depth
            )

        frame_store: Dict[int, List[int]] = {}
        for var in function.frame_vars.values():
            frame_store[id(var)] = var.initial_cells()

        def cells_of(var) -> List[int]:
            if id(var) in frame_store:
                return frame_store[id(var)]
            if id(var) in globals_store:
                return globals_store[id(var)]
            raise InterpreterError(f"variable @{var.name} has no storage")

        env: Dict[VReg, object] = {}
        for i, param in enumerate(function.params):
            env[param] = args[i] if i < len(args) else 0

        def value(v: Value) -> object:
            if isinstance(v, Const):
                return v.value
            if isinstance(v, Undef):
                return 0
            if isinstance(v, VReg):
                if v not in env:
                    raise InterpreterError(f"read of unassigned register {v}")
                return env[v]
            raise InterpreterError(f"cannot evaluate {v!r}")

        def as_int(v: Value) -> int:
            raw = value(v)
            if not isinstance(raw, int):
                raise InterpreterError(f"expected integer, got {raw!r}")
            return raw

        def as_ptr(v: Value) -> Pointer:
            raw = value(v)
            if not isinstance(raw, Pointer):
                raise InterpreterError(f"expected pointer, got {raw!r}")
            return raw

        block = function.entry
        prev_block: Optional[BasicBlock] = None
        while True:
            result.block_counts[block] = result.block_counts.get(block, 0) + 1

            # Phis first, evaluated in parallel against the incoming edge.
            phi_updates: List[Tuple[VReg, object]] = []
            index = 0
            for inst in block.instructions:
                if isinstance(inst, I.Phi):
                    assert prev_block is not None, "phi in entry block"
                    phi_updates.append((inst.dst, value(inst.value_for(prev_block))))
                elif not isinstance(inst, I.MemPhi):
                    break
                index += 1
            for reg, val in phi_updates:
                env[reg] = val

            jumped = False
            for inst in block.instructions[index:]:
                result.steps += 1
                if result.steps > self.max_steps:
                    raise InterpreterLimitError(
                        f"exceeded {self.max_steps} steps", steps=result.steps
                    )

                if isinstance(inst, I.Copy):
                    env[inst.dst] = value(inst.src)
                    result.copies += 1
                elif isinstance(inst, I.BinOp):
                    env[inst.dst] = _binop(inst.op, as_int(inst.lhs), as_int(inst.rhs))
                elif isinstance(inst, I.UnOp):
                    env[inst.dst] = _unop(inst.op, as_int(inst.src))
                elif isinstance(inst, I.Load):
                    env[inst.dst] = cells_of(inst.var)[0]
                    result.loads += 1
                elif isinstance(inst, I.Store):
                    # Pointer-typed locals may hold Pointer values until
                    # mem2reg promotes them to registers.
                    cells_of(inst.var)[0] = value(inst.value)
                    result.stores += 1
                elif isinstance(inst, I.AddrOf):
                    env[inst.dst] = Pointer(cells_of(inst.var))
                elif isinstance(inst, I.Elem):
                    idx = as_int(inst.index)
                    cells = cells_of(inst.array)
                    _bounds_check(inst.array, idx, cells)
                    env[inst.dst] = Pointer(cells, idx)
                elif isinstance(inst, I.PtrLoad):
                    env[inst.dst] = as_ptr(inst.ptr).read()
                    result.ptr_loads += 1
                elif isinstance(inst, I.PtrStore):
                    as_ptr(inst.ptr).write(as_int(inst.value))
                    result.ptr_stores += 1
                elif isinstance(inst, I.ArrayLoad):
                    idx = as_int(inst.index)
                    cells = cells_of(inst.array)
                    _bounds_check(inst.array, idx, cells)
                    env[inst.dst] = cells[idx]
                    result.array_loads += 1
                elif isinstance(inst, I.ArrayStore):
                    idx = as_int(inst.index)
                    cells = cells_of(inst.array)
                    _bounds_check(inst.array, idx, cells)
                    cells[idx] = as_int(inst.value)
                    result.array_stores += 1
                elif isinstance(inst, I.Call):
                    result.calls += 1
                    ret = self._dispatch_call(
                        inst, [value(a) for a in inst.operands],
                        globals_store, result, depth,
                    )
                    if inst.dst is not None:
                        env[inst.dst] = ret
                elif isinstance(inst, I.DummyAliasedLoad):
                    pass  # no runtime effect by construction
                elif isinstance(inst, I.Print):
                    result.output.append(tuple(as_int(v) for v in inst.operands))
                elif isinstance(inst, I.Jump):
                    prev_block, block = block, inst.target
                    jumped = True
                elif isinstance(inst, I.CondBr):
                    taken = inst.if_true if as_int(inst.cond) != 0 else inst.if_false
                    prev_block, block = block, taken
                    jumped = True
                elif isinstance(inst, I.Ret):
                    return as_int(inst.value) if inst.value is not None else 0
                else:
                    raise InterpreterError(f"cannot execute {type(inst).__name__}")
                if jumped:
                    break
            if not jumped:
                raise InterpreterError(f"block {block.name} fell through")

    def _dispatch_call(self, inst, args, globals_store, result, depth):
        callee = self.module.functions.get(inst.callee)
        if callee is not None:
            return self._call(callee, args, globals_store, result, depth + 1)
        if inst.callee in self.externals:
            value = self.externals[inst.callee](*args)
            return int(value) if value is not None else 0
        raise InterpreterError(f"unknown callee @{inst.callee}")


def run_module(
    module: Module, entry: str = "main", args: Sequence[int] = (), **kwargs
) -> ExecutionResult:
    """Convenience wrapper: run ``module`` from ``entry``."""
    return Interpreter(module, **kwargs).run(entry, args)


def _bounds_check(array, idx: int, cells: List[int]) -> None:
    if not 0 <= idx < len(cells):
        raise InterpreterError(
            f"index {idx} out of bounds for @{array.name}[{len(cells)}]"
        )


def _binop(op: str, a: int, b: int) -> int:
    if op == "add":
        return a + b
    if op == "sub":
        return a - b
    if op == "mul":
        return a * b
    if op == "div":
        if b == 0:
            return 0
        q = abs(a) // abs(b)
        return q if (a >= 0) == (b >= 0) else -q
    if op == "rem":
        if b == 0:
            return 0
        return a - b * _binop("div", a, b)
    if op == "and":
        return a & b
    if op == "or":
        return a | b
    if op == "xor":
        return a ^ b
    if op == "shl":
        return a << (b & 63)
    if op == "shr":
        return a >> (b & 63)
    if op == "lt":
        return int(a < b)
    if op == "le":
        return int(a <= b)
    if op == "gt":
        return int(a > b)
    if op == "ge":
        return int(a >= b)
    if op == "eq":
        return int(a == b)
    if op == "ne":
        return int(a != b)
    raise InterpreterError(f"unknown binary op {op}")


def _unop(op: str, a: int) -> int:
    if op == "neg":
        return -a
    if op == "not":
        return int(a == 0)
    if op == "bnot":
        return ~a
    raise InterpreterError(f"unknown unary op {op}")
