"""A deterministic IR interpreter.

Semantics:

* integers are unbounded Python ints; ``div``/``rem`` truncate toward
  zero and yield 0 for a zero divisor (total semantics keep random
  programs well-defined for property-based testing);
* shift amounts are masked to 0..63;
* comparison results are 0/1; branch conditions treat nonzero as true;
* ``undef`` reads as 0 (the front end zero-initializes locals anyway);
* pointers are (cells, index) views onto one-cell scalar boxes or array
  cell lists; arithmetic on pointers is not representable in the IR;
* phis in a block are evaluated simultaneously from the edge just taken.

The interpreter works on any IR the verifier accepts — pre-SSA, SSA,
memory-SSA-annotated, or post-phi-elimination — because memory
annotations carry no runtime meaning.  It counts executed singleton
loads/stores and per-block frequencies, which is everything Tables 1 and
2 need.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.ir import instructions as I
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.values import Const, Undef, Value, VReg


class InterpreterError(RuntimeError):
    """Raised on runtime errors: unknown callee, step/recursion budget
    exhaustion, out-of-bounds array access."""


class InterpreterLimitError(InterpreterError):
    """A step or recursion budget was exhausted.

    A distinct subclass so drivers can treat budget exhaustion as a
    recoverable condition (fall back to the static profile estimator)
    while genuine runtime errors still propagate."""

    def __init__(self, message: str, steps: int = 0, depth: int = 0) -> None:
        super().__init__(message)
        self.steps = steps
        self.depth = depth


class Pointer:
    """A runtime pointer: a view onto a cell list."""

    __slots__ = ("cells", "index")

    def __init__(self, cells: List[int], index: int = 0) -> None:
        self.cells = cells
        self.index = index

    def read(self) -> int:
        return self.cells[self.index]

    def write(self, value: int) -> None:
        self.cells[self.index] = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Pointer({self.cells!r}[{self.index}])"


class ExecutionResult:
    """Everything one program run produced and cost."""

    def __init__(self) -> None:
        #: Printed tuples, in order — the observable behaviour.
        self.output: List[Tuple[int, ...]] = []
        self.return_value: int = 0
        #: Executions per basic block (the profile), keyed by block object.
        self.block_counts: Dict[BasicBlock, int] = {}
        #: Dynamic counts of executed operations.
        self.loads = 0          # singleton loads
        self.stores = 0         # singleton stores
        self.ptr_loads = 0
        self.ptr_stores = 0
        self.array_loads = 0
        self.array_stores = 0
        self.calls = 0
        self.copies = 0
        self.steps = 0

    @property
    def memory_ops(self) -> int:
        """Singleton memory operations — the paper's reported metric."""
        return self.loads + self.stores

    def globals_snapshot(self) -> Dict[str, int]:
        return dict(self._globals_final)

    _globals_final: Dict[str, int] = {}


class Interpreter:
    """``compiled=True`` (the default) lazily translates each executed
    basic block into a list of closures once per run and drives those,
    skipping the per-instruction ``isinstance`` dispatch of the classic
    loop.  Both engines implement identical semantics — same step
    accounting, same errors in the same order, same profiles — and the
    test suite holds them to that; ``compiled=False`` keeps the classic
    loop as the executable specification (and the timing harness's
    baseline arm)."""

    def __init__(
        self,
        module: Module,
        max_steps: int = 10_000_000,
        max_depth: int = 200,
        externals: Optional[Dict[str, Callable[..., int]]] = None,
        compiled: bool = True,
    ) -> None:
        self.module = module
        self.max_steps = max_steps
        self.max_depth = max_depth
        self.externals = externals or {}
        self.compiled = compiled

    def run(self, entry: str = "main", args: Sequence[int] = ()) -> ExecutionResult:
        result = ExecutionResult()
        globals_store: Dict[int, List[int]] = {}
        for var in self.module.globals.values():
            globals_store[id(var)] = var.initial_cells()

        function = self.module.functions.get(entry)
        if function is None:
            raise InterpreterError(f"no entry function {entry!r}")
        if self.compiled:
            engine = _CompiledRun(self, result, globals_store)
            result.return_value = engine.call(function, list(args), 0)
        else:
            result.return_value = self._call(
                function, list(args), globals_store, result, 0
            )
        result._globals_final = {
            var.name: globals_store[id(var)][0]
            for var in self.module.globals.values()
            if var.is_scalar
        }
        return result

    # -- execution -------------------------------------------------------

    def _call(
        self,
        function: Function,
        args: List[int],
        globals_store: Dict[int, List[int]],
        result: ExecutionResult,
        depth: int,
    ) -> int:
        if depth > self.max_depth:
            raise InterpreterLimitError(
                f"recursion deeper than {self.max_depth}", depth=depth
            )

        frame_store: Dict[int, List[int]] = {}
        for var in function.frame_vars.values():
            frame_store[id(var)] = var.initial_cells()

        def cells_of(var) -> List[int]:
            if id(var) in frame_store:
                return frame_store[id(var)]
            if id(var) in globals_store:
                return globals_store[id(var)]
            raise InterpreterError(f"variable @{var.name} has no storage")

        env: Dict[VReg, object] = {}
        for i, param in enumerate(function.params):
            env[param] = args[i] if i < len(args) else 0

        def value(v: Value) -> object:
            if isinstance(v, Const):
                return v.value
            if isinstance(v, Undef):
                return 0
            if isinstance(v, VReg):
                if v not in env:
                    raise InterpreterError(f"read of unassigned register {v}")
                return env[v]
            raise InterpreterError(f"cannot evaluate {v!r}")

        def as_int(v: Value) -> int:
            raw = value(v)
            if not isinstance(raw, int):
                raise InterpreterError(f"expected integer, got {raw!r}")
            return raw

        def as_ptr(v: Value) -> Pointer:
            raw = value(v)
            if not isinstance(raw, Pointer):
                raise InterpreterError(f"expected pointer, got {raw!r}")
            return raw

        block = function.entry
        prev_block: Optional[BasicBlock] = None
        while True:
            result.block_counts[block] = result.block_counts.get(block, 0) + 1

            # Phis first, evaluated in parallel against the incoming edge.
            phi_updates: List[Tuple[VReg, object]] = []
            index = 0
            for inst in block.instructions:
                if isinstance(inst, I.Phi):
                    assert prev_block is not None, "phi in entry block"
                    phi_updates.append((inst.dst, value(inst.value_for(prev_block))))
                elif not isinstance(inst, I.MemPhi):
                    break
                index += 1
            for reg, val in phi_updates:
                env[reg] = val

            jumped = False
            for inst in block.instructions[index:]:
                result.steps += 1
                if result.steps > self.max_steps:
                    raise InterpreterLimitError(
                        f"exceeded {self.max_steps} steps", steps=result.steps
                    )

                if isinstance(inst, I.Copy):
                    env[inst.dst] = value(inst.src)
                    result.copies += 1
                elif isinstance(inst, I.BinOp):
                    env[inst.dst] = _binop(inst.op, as_int(inst.lhs), as_int(inst.rhs))
                elif isinstance(inst, I.UnOp):
                    env[inst.dst] = _unop(inst.op, as_int(inst.src))
                elif isinstance(inst, I.Load):
                    env[inst.dst] = cells_of(inst.var)[0]
                    result.loads += 1
                elif isinstance(inst, I.Store):
                    # Pointer-typed locals may hold Pointer values until
                    # mem2reg promotes them to registers.
                    cells_of(inst.var)[0] = value(inst.value)
                    result.stores += 1
                elif isinstance(inst, I.AddrOf):
                    env[inst.dst] = Pointer(cells_of(inst.var))
                elif isinstance(inst, I.Elem):
                    idx = as_int(inst.index)
                    cells = cells_of(inst.array)
                    _bounds_check(inst.array, idx, cells)
                    env[inst.dst] = Pointer(cells, idx)
                elif isinstance(inst, I.PtrLoad):
                    env[inst.dst] = as_ptr(inst.ptr).read()
                    result.ptr_loads += 1
                elif isinstance(inst, I.PtrStore):
                    as_ptr(inst.ptr).write(as_int(inst.value))
                    result.ptr_stores += 1
                elif isinstance(inst, I.ArrayLoad):
                    idx = as_int(inst.index)
                    cells = cells_of(inst.array)
                    _bounds_check(inst.array, idx, cells)
                    env[inst.dst] = cells[idx]
                    result.array_loads += 1
                elif isinstance(inst, I.ArrayStore):
                    idx = as_int(inst.index)
                    cells = cells_of(inst.array)
                    _bounds_check(inst.array, idx, cells)
                    cells[idx] = as_int(inst.value)
                    result.array_stores += 1
                elif isinstance(inst, I.Call):
                    result.calls += 1
                    ret = self._dispatch_call(
                        inst,
                        [value(a) for a in inst.operands],
                        globals_store,
                        result,
                        depth,
                    )
                    if inst.dst is not None:
                        env[inst.dst] = ret
                elif isinstance(inst, I.DummyAliasedLoad):
                    pass  # no runtime effect by construction
                elif isinstance(inst, I.Print):
                    result.output.append(tuple(as_int(v) for v in inst.operands))
                elif isinstance(inst, I.Jump):
                    prev_block, block = block, inst.target
                    jumped = True
                elif isinstance(inst, I.CondBr):
                    taken = inst.if_true if as_int(inst.cond) != 0 else inst.if_false
                    prev_block, block = block, taken
                    jumped = True
                elif isinstance(inst, I.Ret):
                    return as_int(inst.value) if inst.value is not None else 0
                else:
                    raise InterpreterError(f"cannot execute {type(inst).__name__}")
                if jumped:
                    break
            if not jumped:
                raise InterpreterError(f"block {block.name} fell through")

    def _dispatch_call(self, inst, args, globals_store, result, depth):
        callee = self.module.functions.get(inst.callee)
        if callee is not None:
            return self._call(callee, args, globals_store, result, depth + 1)
        if inst.callee in self.externals:
            value = self.externals[inst.callee](*args)
            return int(value) if value is not None else 0
        raise InterpreterError(f"unknown callee @{inst.callee}")


def run_module(
    module: Module, entry: str = "main", args: Sequence[int] = (), **kwargs
) -> ExecutionResult:
    """Convenience wrapper: run ``module`` from ``entry``."""
    return Interpreter(module, **kwargs).run(entry, args)


def _bounds_check(array, idx: int, cells: List[int]) -> None:
    if not 0 <= idx < len(cells):
        raise InterpreterError(
            f"index {idx} out of bounds for @{array.name}[{len(cells)}]"
        )


def _binop(op: str, a: int, b: int) -> int:
    if op == "add":
        return a + b
    if op == "sub":
        return a - b
    if op == "mul":
        return a * b
    if op == "div":
        if b == 0:
            return 0
        q = abs(a) // abs(b)
        return q if (a >= 0) == (b >= 0) else -q
    if op == "rem":
        if b == 0:
            return 0
        return a - b * _binop("div", a, b)
    if op == "and":
        return a & b
    if op == "or":
        return a | b
    if op == "xor":
        return a ^ b
    if op == "shl":
        return a << (b & 63)
    if op == "shr":
        return a >> (b & 63)
    if op == "lt":
        return int(a < b)
    if op == "le":
        return int(a <= b)
    if op == "gt":
        return int(a > b)
    if op == "ge":
        return int(a >= b)
    if op == "eq":
        return int(a == b)
    if op == "ne":
        return int(a != b)
    raise InterpreterError(f"unknown binary op {op}")


def _unop(op: str, a: int) -> int:
    if op == "neg":
        return -a
    if op == "not":
        return int(a == 0)
    if op == "bnot":
        return ~a
    raise InterpreterError(f"unknown unary op {op}")


# ---------------------------------------------------------------------------
# Compiled execution engine
# ---------------------------------------------------------------------------
#
# Each executed basic block is translated once per run into a tuple
# ``(phis, phi_edges, ops)``: the leading phi instructions, a per-edge
# cache of precompiled phi moves, and one closure per remaining
# instruction.  A closure takes ``(env, cells, depth)`` — the only
# per-call-frame state — and returns ``None`` to fall through, the next
# block to jump, or the ``_RETURN`` sentinel.  Operand access, operator
# selection, and type checks are resolved at compile time, so executing
# an instruction costs one closure call instead of an isinstance chain.
#
# Exactness over speed wherever they conflict: step accounting, error
# types, messages, and their relative ordering all match the classic
# loop, and the IR is re-read lazily (a block is compiled only when
# first executed, so errors like an unknown instruction still surface at
# execution time, not before).

_RETURN = object()


def _value(env: Dict[VReg, object], v: Value) -> object:
    """Runtime value read for phi operands (mirrors ``value()`` above)."""
    if isinstance(v, Const):
        return v.value
    if isinstance(v, Undef):
        return 0
    if isinstance(v, VReg):
        if v not in env:
            raise InterpreterError(f"read of unassigned register {v}")
        return env[v]
    raise InterpreterError(f"cannot evaluate {v!r}")


def _getter(v: Value):
    """Compile ``value(v)`` into a closure of ``env``."""
    if isinstance(v, Const):
        c = v.value
        return lambda env: c
    if isinstance(v, Undef):
        return lambda env: 0
    if isinstance(v, VReg):

        def get(env, r=v):
            try:
                return env[r]
            except KeyError:
                raise InterpreterError(f"read of unassigned register {r}") from None

        return get

    def bad(env, v=v):
        raise InterpreterError(f"cannot evaluate {v!r}")

    return bad


def _int_getter(v: Value):
    """Compile ``as_int(v)`` into a closure of ``env``."""
    if isinstance(v, Const):
        c = v.value
        if isinstance(c, int):
            return lambda env: c

        def badc(env, c=c):
            raise InterpreterError(f"expected integer, got {c!r}")

        return badc
    if isinstance(v, Undef):
        return lambda env: 0
    if isinstance(v, VReg):

        def get(env, r=v):
            try:
                raw = env[r]
            except KeyError:
                raise InterpreterError(f"read of unassigned register {r}") from None
            if isinstance(raw, int):
                return raw
            raise InterpreterError(f"expected integer, got {raw!r}")

        return get

    def bad(env, v=v):
        raise InterpreterError(f"cannot evaluate {v!r}")

    return bad


def _ptr_getter(v: Value):
    """Compile ``as_ptr(v)`` into a closure of ``env``."""
    if isinstance(v, (Const, Undef)):
        raw = 0 if isinstance(v, Undef) else v.value

        def badc(env, raw=raw):
            raise InterpreterError(f"expected pointer, got {raw!r}")

        return badc
    if isinstance(v, VReg):

        def get(env, r=v):
            try:
                raw = env[r]
            except KeyError:
                raise InterpreterError(f"read of unassigned register {r}") from None
            if isinstance(raw, Pointer):
                return raw
            raise InterpreterError(f"expected pointer, got {raw!r}")

        return get

    def bad(env, v=v):
        raise InterpreterError(f"cannot evaluate {v!r}")

    return bad


def _div(a: int, b: int) -> int:
    if b == 0:
        return 0
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _rem(a: int, b: int) -> int:
    if b == 0:
        return 0
    return a - b * _div(a, b)


_BIN_FNS: Dict[str, Callable[[int, int], int]] = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": _div,
    "rem": _rem,
    "and": lambda a, b: a & b,
    "or": lambda a, b: a | b,
    "xor": lambda a, b: a ^ b,
    "shl": lambda a, b: a << (b & 63),
    "shr": lambda a, b: a >> (b & 63),
    "lt": lambda a, b: int(a < b),
    "le": lambda a, b: int(a <= b),
    "gt": lambda a, b: int(a > b),
    "ge": lambda a, b: int(a >= b),
    "eq": lambda a, b: int(a == b),
    "ne": lambda a, b: int(a != b),
}

_UN_FNS: Dict[str, Callable[[int], int]] = {
    "neg": lambda a: -a,
    "not": lambda a: int(a == 0),
    "bnot": lambda a: ~a,
}


class _CompiledRun:
    """One compiled execution: the per-run code map plus the driver."""

    __slots__ = ("interp", "result", "globals_store", "codemap", "retval")

    def __init__(
        self,
        interp: Interpreter,
        result: ExecutionResult,
        globals_store: Dict[int, List[int]],
    ) -> None:
        self.interp = interp
        self.result = result
        self.globals_store = globals_store
        #: id(block) -> (phis, phi_edges, ops); valid for this run only.
        self.codemap: Dict[int, tuple] = {}
        self.retval: int = 0

    def call(self, function: Function, args: List[int], depth: int) -> int:
        interp = self.interp
        if depth > interp.max_depth:
            raise InterpreterLimitError(
                f"recursion deeper than {interp.max_depth}", depth=depth
            )

        frame_store: Dict[int, List[int]] = {}
        for var in function.frame_vars.values():
            frame_store[id(var)] = var.initial_cells()
        globals_store = self.globals_store

        def cells_of(var) -> List[int]:
            cells = frame_store.get(id(var))
            if cells is not None:
                return cells
            cells = globals_store.get(id(var))
            if cells is not None:
                return cells
            raise InterpreterError(f"variable @{var.name} has no storage")

        env: Dict[VReg, object] = {}
        for i, param in enumerate(function.params):
            env[param] = args[i] if i < len(args) else 0

        result = self.result
        codemap = self.codemap
        max_steps = interp.max_steps
        block_counts = result.block_counts
        block = function.entry
        prev_block: Optional[BasicBlock] = None
        while True:
            code = codemap.get(id(block))
            if code is None:
                code = codemap[id(block)] = self._compile_block(block)
            phis, phi_edges, ops = code
            block_counts[block] = block_counts.get(block, 0) + 1

            if phis:
                assert prev_block is not None, "phi in entry block"
                moves = phi_edges.get(id(prev_block))
                if moves is None:
                    # First arrival via this edge; value_for raises
                    # KeyError for a missing edge, exactly like the
                    # classic loop's per-visit lookup.
                    moves = phi_edges[id(prev_block)] = [
                        (phi.dst, _getter(phi.value_for(prev_block))) for phi in phis
                    ]
                if len(moves) == 1:
                    dst, get = moves[0]
                    env[dst] = get(env)
                else:
                    updates = [(dst, get(env)) for dst, get in moves]
                    for reg, val in updates:
                        env[reg] = val

            for op in ops:
                result.steps += 1
                if result.steps > max_steps:
                    raise InterpreterLimitError(
                        f"exceeded {max_steps} steps", steps=result.steps
                    )
                nxt = op(env, cells_of, depth)
                if nxt is not None:
                    if nxt is _RETURN:
                        return self.retval
                    prev_block, block = block, nxt
                    break
            else:
                raise InterpreterError(f"block {block.name} fell through")

    # -- translation -----------------------------------------------------

    def _compile_block(self, block: BasicBlock) -> tuple:
        instructions = block.instructions
        index = 0
        phis: List[I.Phi] = []
        for inst in instructions:
            if isinstance(inst, I.Phi):
                phis.append(inst)
            elif not isinstance(inst, I.MemPhi):
                break
            index += 1
        ops = tuple(self._compile_inst(inst) for inst in instructions[index:])
        return phis, {}, ops

    def _compile_inst(self, inst: I.Instruction):
        result = self.result

        if isinstance(inst, I.Copy):
            get = _getter(inst.src)

            def op(env, cells, depth, d=inst.dst, get=get):
                env[d] = get(env)
                result.copies += 1

            return op

        if isinstance(inst, I.BinOp):
            fn = _BIN_FNS.get(inst.op)
            if fn is None:

                def badop(env, cells, depth, o=inst.op):
                    raise InterpreterError(f"unknown binary op {o}")

                return badop
            ga = _int_getter(inst.lhs)
            gb = _int_getter(inst.rhs)

            def op(env, cells, depth, d=inst.dst, fn=fn, ga=ga, gb=gb):
                env[d] = fn(ga(env), gb(env))

            return op

        if isinstance(inst, I.UnOp):
            ufn = _UN_FNS.get(inst.op)
            if ufn is None:

                def badop(env, cells, depth, o=inst.op):
                    raise InterpreterError(f"unknown unary op {o}")

                return badop
            ga = _int_getter(inst.src)

            def op(env, cells, depth, d=inst.dst, fn=ufn, ga=ga):
                env[d] = fn(ga(env))

            return op

        if isinstance(inst, I.Load):

            def op(env, cells, depth, d=inst.dst, var=inst.var):
                env[d] = cells(var)[0]
                result.loads += 1

            return op

        if isinstance(inst, I.Store):
            get = _getter(inst.value)

            def op(env, cells, depth, var=inst.var, get=get):
                cells(var)[0] = get(env)
                result.stores += 1

            return op

        if isinstance(inst, I.AddrOf):

            def op(env, cells, depth, d=inst.dst, var=inst.var):
                env[d] = Pointer(cells(var))

            return op

        if isinstance(inst, I.Elem):
            gi = _int_getter(inst.index)

            def op(env, cells, depth, d=inst.dst, array=inst.array, gi=gi):
                idx = gi(env)
                c = cells(array)
                _bounds_check(array, idx, c)
                env[d] = Pointer(c, idx)

            return op

        if isinstance(inst, I.PtrLoad):
            gp = _ptr_getter(inst.ptr)

            def op(env, cells, depth, d=inst.dst, gp=gp):
                env[d] = gp(env).read()
                result.ptr_loads += 1

            return op

        if isinstance(inst, I.PtrStore):
            gp = _ptr_getter(inst.ptr)
            gi = _int_getter(inst.value)

            def op(env, cells, depth, gp=gp, gi=gi):
                gp(env).write(gi(env))
                result.ptr_stores += 1

            return op

        if isinstance(inst, I.ArrayLoad):
            gi = _int_getter(inst.index)

            def op(env, cells, depth, d=inst.dst, array=inst.array, gi=gi):
                idx = gi(env)
                c = cells(array)
                _bounds_check(array, idx, c)
                env[d] = c[idx]
                result.array_loads += 1

            return op

        if isinstance(inst, I.ArrayStore):
            gi = _int_getter(inst.index)
            gv = _int_getter(inst.value)

            def op(env, cells, depth, array=inst.array, gi=gi, gv=gv):
                idx = gi(env)
                c = cells(array)
                _bounds_check(array, idx, c)
                c[idx] = gv(env)
                result.array_stores += 1

            return op

        if isinstance(inst, I.Call):
            getters = [_getter(a) for a in inst.operands]
            functions = self.interp.module.functions
            externals = self.interp.externals
            call = self.call

            def op(
                env,
                cells,
                depth,
                d=inst.dst,
                name=inst.callee,
                getters=getters,
                functions=functions,
                externals=externals,
                call=call,
            ):
                result.calls += 1
                args = [g(env) for g in getters]
                callee = functions.get(name)
                if callee is not None:
                    ret = call(callee, args, depth + 1)
                elif name in externals:
                    value = externals[name](*args)
                    ret = int(value) if value is not None else 0
                else:
                    raise InterpreterError(f"unknown callee @{name}")
                if d is not None:
                    env[d] = ret

            return op

        if isinstance(inst, I.DummyAliasedLoad):

            def op(env, cells, depth):
                pass

            return op

        if isinstance(inst, I.Print):
            igetters = [_int_getter(v) for v in inst.operands]

            def op(env, cells, depth, igetters=igetters):
                result.output.append(tuple(g(env) for g in igetters))

            return op

        if isinstance(inst, I.Jump):

            def op(env, cells, depth, t=inst.target):
                return t

            return op

        if isinstance(inst, I.CondBr):
            gc = _int_getter(inst.cond)

            def op(env, cells, depth, gc=gc, t=inst.if_true, f=inst.if_false):
                return t if gc(env) != 0 else f

            return op

        if isinstance(inst, I.Ret):
            if inst.value is not None:
                gi = _int_getter(inst.value)

                def op(env, cells, depth, self=self, gi=gi):
                    self.retval = gi(env)
                    return _RETURN

                return op

            def op(env, cells, depth, self=self):
                self.retval = 0
                return _RETURN

            return op

        def unknown(env, cells, depth, kind=type(inst).__name__):
            raise InterpreterError(f"cannot execute {kind}")

        return unknown
