"""Block-frequency profiles.

The paper's algorithm is profile-driven: the profit of promoting a web is
a sum of basic-block execution frequencies (Section 4.3).  A
:class:`ProfileData` maps blocks to frequencies; it can be collected from
an interpreter run (exact), synthesized by the static estimator, or built
by hand in tests.

Frequencies are keyed by block identity.  Blocks created *after*
collection (e.g. by CFG normalization) default to frequency 0 unless
recorded, so always normalize before profiling.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.ir.basicblock import BasicBlock
from repro.ir.instructions import Instruction
from repro.ir.module import Module


class ProfileData:
    def __init__(self, counts: Optional[Dict[BasicBlock, int]] = None) -> None:
        self._counts: Dict[BasicBlock, int] = dict(counts or {})

    @classmethod
    def from_execution(cls, result) -> "ProfileData":
        """Build from an :class:`repro.profile.interp.ExecutionResult`."""
        return cls(result.block_counts)

    def freq(self, block: BasicBlock) -> int:
        return self._counts.get(block, 0)

    def freq_of(self, inst: Instruction) -> int:
        assert inst.block is not None
        return self.freq(inst.block)

    def set_freq(self, block: BasicBlock, count: int) -> None:
        self._counts[block] = count

    def scale(self, factor: float) -> "ProfileData":
        return ProfileData({b: int(c * factor) for b, c in self._counts.items()})

    def total(self, blocks: Iterable[BasicBlock]) -> int:
        return sum(self.freq(b) for b in blocks)

    def items(self) -> Iterable[Tuple[BasicBlock, int]]:
        """(block, count) pairs, in recording order."""
        return self._counts.items()

    def covered(self, module: Module) -> int:
        """How many blocks of ``module`` have a recorded frequency."""
        n = 0
        for function in module.functions.values():
            for block in function.blocks:
                if block in self._counts:
                    n += 1
        return n

    def __len__(self) -> int:
        return len(self._counts)
