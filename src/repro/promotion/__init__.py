"""The paper's register promotion algorithm.

Modules map one-to-one onto the paper's Section 4:

* :mod:`repro.promotion.webs` — memory SSA web construction (Fig. 3) and
  the per-web reference sets (§4.2);
* :mod:`repro.promotion.profitability` — loads-added / stores-added and
  the profile-weighted profit (§4.3);
* :mod:`repro.promotion.webpromote` — ``promoteInWeb`` (Figs. 4-6):
  vrMap, leaf loads, load-to-copy replacement, store materialization and
  sinking, tail stores, dummy aliased loads;
* :mod:`repro.promotion.driver` — the bottom-up interval driver (Fig. 2);
* :mod:`repro.promotion.pipeline` — the end-to-end pass (normalize →
  mem2reg → profile → memory SSA → promote → cleanup) with metrics.
"""

from repro.promotion.driver import (
    PromotionError,
    PromotionOptions,
    promote_function,
)
from repro.promotion.pipeline import PipelineResult, PromotionPipeline
from repro.promotion.webs import Web, construct_ssa_webs

__all__ = [
    "PipelineResult",
    "PromotionError",
    "PromotionOptions",
    "PromotionPipeline",
    "Web",
    "construct_ssa_webs",
    "promote_function",
]
