"""The interval-tree promotion driver (Fig. 2).

``promote_function`` walks the interval tree bottom-up; in each interval
it builds the memory SSA webs and considers each web independently for
promotion ("promotion in an interval results in the insertion of loads
and stores in the parent interval, and these loads and stores are
considered for elimination when the parent interval is processed").  The
whole function body is the final scope (the root region), so top-level
code is promoted too, with stores sinking to the returns.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.analysis.dominance import DominatorTree
from repro.analysis.intervals import Interval, IntervalTree
from repro.ir import instructions as I
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.memory.memssa import MemorySSA
from repro.observability import decisions as decision_journal
from repro.profile.profiles import ProfileData
from repro.promotion.profitability import plan_no_defs_web, plan_web
from repro.parallel import cache as analysis_cache
from repro.promotion.webpromote import WebPromotion
from repro.promotion.webs import Web, construct_ssa_webs


class PromotionError(RuntimeError):
    """An unexpected failure inside :func:`promote_function`, annotated
    with the function, interval, and web it occurred in so the
    transactional pipeline's rollback diagnostics can attribute it
    without parsing a traceback.  The original exception is chained as
    ``__cause__``."""

    def __init__(
        self,
        message: str,
        function: Optional[str] = None,
        interval: Optional[str] = None,
        var: Optional[str] = None,
    ) -> None:
        super().__init__(message)
        self.function = function
        self.interval = interval
        self.var = var


class PromotionOptions:
    """Tunables (each is an ablation arm in the benchmarks)."""

    def __init__(
        self,
        promote_root: bool = True,
        remove_stores: bool = True,
        per_web: bool = True,
        require_profit: bool = True,
        pressure_limit: Optional[int] = None,
        count_tail_stores: bool = True,
    ) -> None:
        #: Promote in the whole-function root region as well as loops.
        self.promote_root = promote_root
        #: Allow the store-removal half (else values are kept in memory
        #: and a register simultaneously; only loads are removed).
        self.remove_stores = remove_stores
        #: Web granularity: when False, all webs of a variable in an
        #: interval are merged first (whole-variable promotion — the
        #: coarse alternative §4.2 argues against).
        self.per_web = per_web
        #: When False, promote regardless of the profile-weighted profit
        #: (the profile-blind ablation).
        self.require_profit = require_profit
        #: Register-pressure-aware gating (an extension addressing the
        #: paper's Table 3 observation that promotion "requires more
        #: registers to color the graph"): stop promoting in a function
        #: once its interference graph needs this many colors.
        self.pressure_limit = pressure_limit
        #: Refinement over the paper (on by default): charge
        #: interval-tail stores to the store profit.  The paper's formula
        #: omits them, which makes the ``>= 0`` tie rule non-idempotent
        #: and lets a web whose only "removed" store is re-materialized
        #: at the tails net-add a compensating load (see
        #: repro.promotion.profitability.plan_web).  Disable for the
        #: strict-paper ablation arm.
        self.count_tail_stores = count_tail_stores


class FunctionPromotionStats:
    """Aggregated transformation counts for one function."""

    FIELDS = (
        "webs_seen",
        "webs_promoted",
        "webs_skipped",
        "loads_replaced",
        "loads_inserted",
        "stores_inserted",
        "tail_stores_inserted",
        "stores_deleted",
        "dummies_inserted",
        "reg_phis_created",
    )

    def __init__(self) -> None:
        for field in self.FIELDS:
            setattr(self, field, 0)

    def absorb(self, counts: Dict[str, int]) -> None:
        for key, value in counts.items():
            setattr(self, key, getattr(self, key) + value)

    def as_dict(self) -> Dict[str, int]:
        return {field: getattr(self, field) for field in self.FIELDS}

    def __repr__(self) -> str:  # pragma: no cover
        parts = ", ".join(f"{k}={v}" for k, v in self.as_dict().items())
        return f"FunctionPromotionStats({parts})"


def promote_function(
    function: Function,
    mssa: MemorySSA,
    profile: ProfileData,
    interval_tree: IntervalTree,
    options: Optional[PromotionOptions] = None,
) -> FunctionPromotionStats:
    """Run register promotion over one function (already in memory SSA,
    with a normalized CFG).  The CFG is never modified — only
    instructions are inserted and deleted — so the interval tree and
    dominator tree stay valid throughout."""
    options = options or PromotionOptions()
    domtree = analysis_cache.dominator_tree(function)
    stats = FunctionPromotionStats()
    # The ambient decision journal (a null object when disabled) sees one
    # call per web, never per access — the disabled path stays cheap.
    journal = decision_journal.ambient().function(function)

    for interval in interval_tree.bottom_up():
        if interval.is_root and not options.promote_root:
            continue
        webs = construct_ssa_webs(function, interval)
        if not options.per_web:
            webs = _merge_webs_per_variable(function, interval, webs)
        for web in webs:
            pressure = _measure_pressure(function, options)
            if pressure is not None and pressure >= options.pressure_limit:
                stats.webs_seen += 1
                stats.webs_skipped += 1
                journal.web_blocked_pressure(
                    web, interval, pressure, options.pressure_limit
                )
                _insert_dummy(
                    function, web, _preheader_block(interval), stats,
                    interval, journal,
                )
                continue
            try:
                _promote_in_web(
                    function, mssa, web, interval, profile, domtree, options,
                    stats, journal,
                )
            except PromotionError:
                raise
            except Exception as exc:
                where = "<root>" if interval.is_root else interval.header.name
                raise PromotionError(
                    f"promotion of @{web.var.name} in interval {where} of "
                    f"{function.name} failed: {exc}",
                    function=function.name,
                    interval=where,
                    var=web.var.name,
                ) from exc
    journal.finish()
    return stats


def _measure_pressure(
    function: Function, options: PromotionOptions
) -> Optional[int]:
    """Pressure-aware gating: the current chromatic requirement, or None
    when no limit is configured (the measurement is not free)."""
    if options.pressure_limit is None:
        return None
    from repro.regalloc.coloring import colors_needed
    from repro.regalloc.interference import build_interference_graph

    return colors_needed(build_interference_graph(function))


def _promote_in_web(
    function: Function,
    mssa: MemorySSA,
    web: Web,
    interval: Interval,
    profile: ProfileData,
    domtree: DominatorTree,
    options: PromotionOptions,
    stats: FunctionPromotionStats,
    journal=decision_journal.NULL_FUNCTION_DECISIONS,
) -> None:
    """Fig. 4's ``promoteInWeb``."""
    stats.webs_seen += 1
    preheader = _preheader_block(interval)
    entry_name = mssa.entry_names.get(web.var) or _entry_name_for(mssa, web)

    if not web.has_defs:
        # The entry load's cost is paid where it is inserted: the
        # preheader for a loop, the entry block for the root region.
        cost_block = preheader if not interval.is_root else function.entry
        plan = plan_no_defs_web(web, profile, cost_block)
        promoted = (plan.worthwhile or not options.require_profit) and bool(
            web.load_refs
        )
        if promoted:
            journal.web_promoted_no_defs(web, interval, plan)
            _promote_no_defs_web(function, web, interval, stats, journal)
        else:
            journal.web_skipped(web, interval, plan)
        need_dummy = (
            web.aliased_load_refs
            if promoted
            else (web.load_refs or web.aliased_load_refs)
        )
        if need_dummy:
            _insert_dummy(function, web, preheader, stats, interval, journal)
        if promoted:
            stats.webs_promoted += 1
        else:
            stats.webs_skipped += 1
        return

    plan = plan_web(web, profile, domtree, count_tail_stores=options.count_tail_stores)
    if not options.remove_stores:
        plan.remove_stores = False
    if not options.require_profit:
        plan.remove_stores = bool(web.store_refs) and options.remove_stores
    worthwhile = plan.worthwhile or (
        not options.require_profit
        and (plan.replaceable_loads or (plan.remove_stores and web.store_refs))
    )
    if not worthwhile:
        stats.webs_skipped += 1
        journal.web_skipped(web, interval, plan)
        if web.load_refs or web.store_refs or web.aliased_load_refs:
            _insert_dummy(function, web, preheader, stats, interval, journal)
        return
    journal.web_promoted(web, interval, plan)

    promo = WebPromotion(
        function, plan, domtree, entry_name, journal=journal, interval=interval
    )
    promo.init_vr_map()
    promo.insert_loads_at_phi_leaves()
    promo.replace_loads_by_copies()
    if plan.remove_stores:
        promo.insert_stores_for_aliased_loads()
        promo.insert_stores_at_interval_tails()
        # The update's old set is exactly this web's names (plus the
        # live-on-entry name): single-threaded memory guarantees a clone
        # can only supersede uses of names from its own web, and keeping
        # sibling webs out of the old set keeps their references alive
        # for their own promotion later in this interval.
        promo.run_ssa_update(list(web.names))
    if web.aliased_load_refs or (web.store_refs and not plan.remove_stores):
        promo.insert_dummy_aliased_load(preheader)
    stats.webs_promoted += 1
    stats.absorb(promo.stats)


def _promote_no_defs_web(
    function: Function,
    web: Web,
    interval: Interval,
    stats: FunctionPromotionStats,
    journal=decision_journal.NULL_FUNCTION_DECISIONS,
) -> None:
    """No definitions in the interval: one load in the preheader replaces
    every load of the web."""
    live_in = web.live_in
    assert live_in is not None, "no-defs web must be fed from outside"
    target = function.new_reg("pr")
    load = I.Load(target, live_in.var)
    load.mem_uses = [live_in]
    block, anchor = _insertion_point(function, interval)
    if anchor is None:
        block.insert_at_front(load)
    else:
        block.insert_before(load, anchor)
    journal.inserted(load, "load", web, interval, "hoisted-entry-load")
    stats.loads_inserted += 1
    for old in web.load_refs:
        assert old.mem_uses[0] is live_in
        copy = I.Copy(old.dst, target)
        old.block.insert_before(copy, old)
        old.remove_from_block()
        stats.loads_replaced += 1


def _insert_dummy(
    function: Function,
    web: Web,
    preheader: Optional[BasicBlock],
    stats: FunctionPromotionStats,
    interval: Optional[Interval] = None,
    journal=decision_journal.NULL_FUNCTION_DECISIONS,
) -> None:
    if preheader is None or web.live_in is None:
        return
    dummy = I.DummyAliasedLoad(web.live_in)
    term = preheader.terminator
    assert term is not None
    preheader.insert_before(dummy, term)
    if interval is not None:
        journal.inserted(dummy, "dummy", web, interval, "dummy-aliased-load")
    stats.dummies_inserted += 1


def _preheader_block(interval: Interval) -> Optional[BasicBlock]:
    """The block whose end summarizes "just before the interval" — None
    for the root region (it has no enclosing interval)."""
    if interval.is_root:
        return None
    assert interval.preheader is not None, (
        f"interval at {interval.header.name} lacks a preheader; run "
        "normalize_for_promotion first"
    )
    return interval.preheader


def _insertion_point(function: Function, interval: Interval):
    """(block, anchor) for the interval's entry load: before the
    preheader's terminator, or the top of the entry block for the root."""
    if interval.is_root:
        entry = function.entry
        idx = entry.first_non_phi_index()
        anchor = entry.instructions[idx] if idx < len(entry.instructions) else None
        return entry, anchor
    pre = interval.preheader
    assert pre is not None
    return pre, pre.terminator


def _entry_name_for(mssa: MemorySSA, web: Web):
    """Fallback entry name when the variable was not tracked at memory
    SSA construction time (hand-annotated tests)."""
    from repro.memory.resources import MemName

    name = MemName(web.var, 0, None)
    mssa.entry_names[web.var] = name
    return name


def _merge_webs_per_variable(
    function: Function, interval: Interval, webs: List[Web]
) -> List[Web]:
    """Whole-variable granularity (the ablation arm): merge all webs of
    one variable in the interval into a single web."""
    by_var: Dict[int, Web] = {}
    order: List[Web] = []
    for web in webs:
        existing = by_var.get(id(web.var))
        if existing is None:
            by_var[id(web.var)] = web
            order.append(web)
            continue
        existing.names += web.names
        existing.load_refs += web.load_refs
        existing.store_refs += web.store_refs
        existing.aliased_load_refs += web.aliased_load_refs
        existing.aliased_store_refs += web.aliased_store_refs
        existing.phis += web.phis
        existing.defs_in_interval += web.defs_in_interval
        if existing.live_in is None:
            existing.live_in = web.live_in
    return order
