"""The end-to-end register promotion pipeline.

Order of operations per function:

1. remove unreachable blocks, run classic SSA construction (mem2reg) for
   unexposed locals, and normalize the CFG for promotion (split critical
   edges, dedicated preheaders and exit tails);
2. profile: execute the program once with the interpreter (or fall back
   to the static estimator), collecting block frequencies and the
   "before" dynamic costs;
3. build memory SSA and run interval-scoped web promotion;
4. clean up: delete dummy loads, propagate copies, sweep dead code and
   dead memory phis; verify SSA and memory SSA;
5. re-execute to collect the "after" dynamic costs and check that the
   observable behaviour (printed output, return value, final global
   values) is unchanged.

Every per-function transformation (phases 1, 3, and 4) is a
*transaction*: the function's IR is snapshotted first, and any exception
or verification failure restores the snapshot, records a structured
:class:`~repro.robustness.diagnostics.FunctionOutcome`, and lets the rest
of the module proceed.  When phase 5 detects a behaviour divergence, the
pipeline delta-debugs over the transformed functions (re-running from
snapshots) to isolate a minimal culprit set and rolls only those back, so
the module the caller gets is always behaviour-preserving.  The result's
``diagnostics`` names every rolled-back function with its reason.

The result object carries everything Tables 1 and 2 need.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.intervals import IntervalTree, normalize_for_promotion
from repro.ir.module import Module
from repro.ir.verify import verify_function, verify_module
from repro.memory.aliasing import AliasModel
from repro.memory.memssa import build_memory_ssa
from repro.observability import (
    NULL_OBSERVABILITY,
    DecisionJournal,
    Observability,
    OpCounts,
    activate_decisions,
    activate_metrics,
)
from repro.observability.export import SCHEMA_VERSION
from repro.parallel.batching import TransportStats
from repro.parallel.cache import AnalysisCache, CacheStats, activate
from repro.parallel.scheduler import (
    FunctionResult,
    SchedulerError,
    promote_functions_parallel,
    resolve_jobs,
)
from repro.parallel.transport import TransportError
from repro.passes.copyprop import propagate_copies
from repro.passes.dce import (
    dead_code_elimination,
    dead_memory_elimination,
    remove_dummy_loads,
)
from repro.profile.estimator import estimate_profile
from repro.profile.interp import (
    ExecutionResult,
    Interpreter,
    InterpreterError,
    InterpreterLimitError,
)
from repro.profile.profiles import ProfileData
from repro.promotion.driver import (
    FunctionPromotionStats,
    PromotionOptions,
    promote_function,
)
from repro.robustness.bisect import isolate_culprits
from repro.robustness.diagnostics import BisectionReport, PipelineDiagnostics
from repro.robustness.executor import (
    ResilienceOptions,
    ResilientExecutor,
    ResilientExecutorError,
    ResilientOutcome,
)
from repro.robustness.snapshot import (
    FunctionSnapshot,
    FunctionState,
    capture_state,
    snapshot_function,
)
from repro.ssa.construct import construct_ssa


class StaticCounts(OpCounts):
    """Static (textual) operation counts — Table 1's metric.

    A thin view over :class:`repro.observability.OpCounts`, the one
    shared counting helper — the bench tables and the exported run
    metrics read the same walk and can never disagree.
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover
        return f"StaticCounts(loads={self.loads}, stores={self.stores})"


class DynamicCounts(OpCounts):
    """Executed operation counts — Table 2's metric (same shared helper)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover
        return f"DynamicCounts(loads={self.loads}, stores={self.stores})"


def improvement(before: int, after: int) -> float:
    """Percentage improvement as the paper reports it (negative when the
    count increased)."""
    if before == 0:
        return 0.0
    return 100.0 * (before - after) / before


class PipelineResult:
    def __init__(self, module: Module) -> None:
        self.module = module
        self.static_before = StaticCounts()
        self.static_after = StaticCounts()
        self.dynamic_before = DynamicCounts()
        self.dynamic_after = DynamicCounts()
        self.stats: Dict[str, FunctionPromotionStats] = {}
        self.output_matches = True
        self.profile: Optional[ProfileData] = None
        #: Per-function outcomes, warnings, and the bisection report.
        self.diagnostics = PipelineDiagnostics()
        #: Worker count phases 3+4 actually ran with (1 = serial).
        self.jobs_used = 1
        #: Analysis-cache hit/miss counters, aggregated over the parent
        #: run and (in parallel mode, in module order) every worker.
        #: ``None`` when caching was disabled.
        self.cache_stats: Optional[CacheStats] = None
        #: What the parallel dispatch shipped vs reused
        #: (:class:`~repro.parallel.batching.TransportStats`); ``None``
        #: for serial runs.  Kept off the diagnostics on purpose —
        #: transport volume is machine-local and must stay out of the
        #: byte-identical output fingerprint, like cache counters.
        self.transport_stats: Optional[TransportStats] = None
        #: The tracer + metrics bundle the run recorded into
        #: (:data:`~repro.observability.NULL_OBSERVABILITY` when
        #: tracing was off) — exporters read the trace from here.
        self.observability: Observability = NULL_OBSERVABILITY
        #: The promotion decision journal the run recorded into, or
        #: ``None`` when journaling was off — ``--decisions-out`` and the
        #: diagnostics summary read from here.
        self.decisions: Optional[DecisionJournal] = None

    def totals(self) -> FunctionPromotionStats:
        total = FunctionPromotionStats()
        for stats in self.stats.values():
            total.absorb(stats.as_dict())
        return total

    def report(self) -> str:
        lines = [
            f"static  loads {self.static_before.loads:>8} -> {self.static_after.loads:<8}"
            f" ({improvement(self.static_before.loads, self.static_after.loads):+.1f}%)",
            f"static  stores {self.static_before.stores:>7} -> {self.static_after.stores:<8}"
            f" ({improvement(self.static_before.stores, self.static_after.stores):+.1f}%)",
            f"dynamic loads {self.dynamic_before.loads:>8} -> {self.dynamic_after.loads:<8}"
            f" ({improvement(self.dynamic_before.loads, self.dynamic_after.loads):+.1f}%)",
            f"dynamic stores {self.dynamic_before.stores:>7} -> {self.dynamic_after.stores:<8}"
            f" ({improvement(self.dynamic_before.stores, self.dynamic_after.stores):+.1f}%)",
            f"behaviour preserved: {self.output_matches}",
        ]
        if self.diagnostics.outcomes:
            lines.append(f"functions: {self.diagnostics.summary()}")
        for warning in self.diagnostics.warnings:
            lines.append(f"warning: {warning}")
        return "\n".join(lines)


def _behaviour_matches(before: ExecutionResult, after: ExecutionResult) -> bool:
    return (
        after.output == before.output
        and after.return_value == before.return_value
        and after.globals_snapshot() == before.globals_snapshot()
    )


class PromotionPipeline:
    """The user-facing transactional pass manager around
    :func:`promote_function`.

    With ``transactional=True`` (the default) every function is
    snapshotted before it is transformed; failures roll the function
    back instead of aborting the run, and a phase-5 behaviour divergence
    triggers bisection over the transformed functions.  With
    ``transactional=False`` the pipeline behaves like a classic
    all-or-nothing pass manager (no snapshot overhead, exceptions
    propagate, divergence is only recorded in ``output_matches``).

    ``jobs`` > 1 fans phases 3+4 out over that many shared-nothing worker
    processes (``jobs=0`` means one per CPU); results merge in module
    order, so every table, statistic, and diagnostic is identical to a
    serial run.  Parallel mode requires ``transactional=True`` — workers
    report failures as rollbacks, and phase-5 bisection needs the
    snapshots.  ``use_cache`` memoizes dominator trees, IDFs, and
    liveness across phases (per run, per worker).

    ``resilience`` (a :class:`~repro.robustness.ResilienceOptions`)
    additionally arms per-function deadlines, bounded retry with seeded
    backoff, broken-pool recovery, poison-function quarantine, and
    optional chaos injection around the worker pool; it requires
    ``jobs != 1``.  A quarantined function keeps its pre-promotion IR —
    behaviour-preserving by construction — and the run is reported as
    *degraded* (``diagnostics.degraded``, CLI exit code 3) rather than
    failed.
    """

    def __init__(
        self,
        options: Optional[PromotionOptions] = None,
        alias_model: Optional[Callable[[Module], AliasModel]] = None,
        entry: str = "main",
        args: Sequence[int] = (),
        use_interpreter_profile: bool = True,
        run_mem2reg: bool = True,
        verify: bool = True,
        max_steps: int = 50_000_000,
        transactional: bool = True,
        jobs: int = 1,
        use_cache: bool = True,
        compiled_interpreter: bool = True,
        resilience: Optional[ResilienceOptions] = None,
        observability: Optional[Observability] = None,
        decisions: Optional[DecisionJournal] = None,
        analysis_cache: Optional[AnalysisCache] = None,
        batch_size="auto",
        keep_pool: bool = True,
    ) -> None:
        self.options = options or PromotionOptions()
        self.alias_model_factory = alias_model or AliasModel.conservative
        self.entry = entry
        self.args = list(args)
        self.use_interpreter_profile = use_interpreter_profile
        self.run_mem2reg = run_mem2reg
        self.verify = verify
        self.max_steps = max_steps
        self.transactional = transactional
        if jobs != 1 and not transactional:
            raise ValueError(
                "parallel promotion (jobs != 1) requires transactional=True: "
                "workers report failures as per-function rollbacks"
            )
        self.jobs = jobs
        self.use_cache = use_cache
        #: False pins phases 2 and 5 to the interpreter's classic
        #: dispatch loop — the timing harness's baseline arm.
        self.compiled_interpreter = compiled_interpreter
        #: When set, phases 3+4 run under the resilient executor:
        #: per-function deadlines, retry with backoff, quarantine, and
        #: (optionally) chaos injection.  Requires parallel execution —
        #: deadlines and chaos act on worker processes, and a crashed or
        #: hung in-process attempt could not be recovered.
        if resilience is not None and jobs == 1:
            raise ValueError(
                "resilience options require parallel execution (jobs != 1): "
                "deadlines, crash recovery, and chaos act on worker processes"
            )
        self.resilience = resilience
        #: The tracer + metrics bundle; :data:`NULL_OBSERVABILITY` (the
        #: default) makes every instrumentation point a no-op.
        self.observability = observability or NULL_OBSERVABILITY
        #: The promotion decision journal; ``None`` (the default) keeps
        #: the driver's decision sites on the null path.
        self.decisions = decisions
        #: A caller-owned cache to use instead of a fresh per-run one —
        #: how a long-lived service keeps analyses warm across requests.
        #: Entries are fingerprint-validated on every lookup, so reuse
        #: can only change speed, never results.  Implies ``use_cache``.
        self.analysis_cache = analysis_cache
        #: Functions per worker batch: ``"auto"`` sizes batches from the
        #: warm pool's cost model; an integer forces fixed-count batches
        #: (1 reproduces the old one-task-per-function dispatch).
        if batch_size != "auto" and (
            not isinstance(batch_size, int) or batch_size < 1
        ):
            raise ValueError(
                f"batch_size must be 'auto' or a positive int, got {batch_size!r}"
            )
        self.batch_size = batch_size
        #: False shuts this run's warm worker pool down afterwards
        #: instead of leaving it resident for the next run.
        self.keep_pool = keep_pool

    def run(self, module: Module) -> PipelineResult:
        result = PipelineResult(module)
        result.observability = self.observability
        obs = self.observability
        if self.analysis_cache is not None:
            cache = self.analysis_cache
        else:
            cache = AnalysisCache() if self.use_cache else None
        if cache is not None:
            result.cache_stats = CacheStats()
        # A shared (cross-run) cache carries cumulative counters; report
        # only this run's delta.
        stats_before = cache.stats.copy() if cache is not None else None
        result.decisions = self.decisions
        with activate(cache), activate_metrics(
            obs.metrics if obs.enabled else None
        ), activate_decisions(self.decisions), obs.tracer.span(
            "pipeline", module=module.name, jobs=self.jobs
        ):
            self._run_phases(module, result)
        if cache is not None:
            result.cache_stats.absorb(cache.stats.since(stats_before))
        if obs.enabled:
            self._finalize_observability(result)
        if self.decisions is not None:
            result.diagnostics.decisions = self.decisions.summary()
        if not self.keep_pool and self.jobs != 1:
            from repro.parallel.pool import shutdown_pool

            shutdown_pool(resolve_jobs(self.jobs))
        return result

    def config_stamp(self) -> Dict[str, object]:
        """The pipeline configuration as stamped into every exported
        trace/metrics artifact and the diagnostics ``observability``
        section, so artifacts are self-describing."""
        resilience = self.resilience
        stamp: Dict[str, object] = {
            "entry": self.entry,
            "jobs": self.jobs,
            "use_cache": self.use_cache,
            "compiled_interpreter": self.compiled_interpreter,
            "transactional": self.transactional,
            "max_steps": self.max_steps,
            "batch_size": self.batch_size,
            "keep_pool": self.keep_pool,
            "resilience": None if resilience is None else resilience.as_dict(),
        }
        return stamp

    def _mark_decision(self, name: str, status: str) -> None:
        """Re-stamp a function's decision document after the pipeline
        overrode the promotion attempt (rollback, quarantine)."""
        if self.decisions is not None:
            self.decisions.mark(name, status)

    def _finalize_observability(self, result: PipelineResult) -> None:
        """Publish run aggregates into the metrics registry and the
        diagnostics ``observability`` section.

        The load/store gauges and ``promotion.*`` counters are set from
        the :class:`PipelineResult` itself — the exported metrics read
        the same :class:`OpCounts` the report prints, so they can never
        disagree.  Only called when tracing is enabled; when disabled the
        diagnostics section stays ``None`` so timing-harness fingerprints
        are identical with and without this layer.
        """
        metrics = self.observability.metrics
        for prefix, counts in (
            ("pipeline.static_before", result.static_before),
            ("pipeline.static_after", result.static_after),
            ("pipeline.dynamic_before", result.dynamic_before),
            ("pipeline.dynamic_after", result.dynamic_after),
        ):
            metrics.set(prefix + ".loads", counts.loads, unit="ops")
            metrics.set(prefix + ".stores", counts.stores, unit="ops")
        metrics.set("pipeline.jobs_used", result.jobs_used, unit="workers")
        metrics.set(
            "pipeline.output_matches", int(result.output_matches), unit="bool"
        )
        for field, value in result.totals().as_dict().items():
            metrics.inc("promotion." + field, value)
        if result.cache_stats is not None:
            for kind, hits in result.cache_stats.hits.items():
                metrics.inc(f"cache.{kind}.hits", hits)
            for kind, misses in result.cache_stats.misses.items():
                metrics.inc(f"cache.{kind}.misses", misses)
        diags = result.diagnostics
        diags.observability = {
            "version": SCHEMA_VERSION,
            "profile_source": diags.profile_source,
            "config": self.config_stamp(),
            "spans": len(self.observability.tracer.records),
            "metrics": metrics.as_dict(),
        }

    def _run_phases(self, module: Module, result: PipelineResult) -> None:
        diags = result.diagnostics
        tracer = self.observability.tracer

        # Phase 1: prepare every function (transaction: skip on failure).
        trees: Dict[str, IntervalTree] = {}
        prepared: List[str] = []
        with tracer.span("phase:prepare", category="phase"):
            for function in list(module.functions.values()):
                if not self.transactional:
                    with tracer.span("prepare:" + function.name, category="prepare"):
                        if self.run_mem2reg:
                            construct_ssa(function)
                        trees[function.name] = normalize_for_promotion(function)
                    prepared.append(function.name)
                    continue
                started = time.perf_counter()
                pre = snapshot_function(function)
                with tracer.span(
                    "prepare:" + function.name, category="prepare"
                ) as prep_span:
                    try:
                        if self.run_mem2reg:
                            construct_ssa(function)
                        trees[function.name] = normalize_for_promotion(function)
                        if self.verify:
                            verify_function(function, check_ssa=True)
                    except Exception as exc:
                        pre.restore()
                        trees.pop(function.name, None)
                        prep_span.set("status", "skipped")
                        prep_span.set("error_type", type(exc).__name__)
                        diags.record_skip(
                            function.name,
                            stage="prepare",
                            error=exc,
                            duration_ms=(time.perf_counter() - started) * 1e3,
                        )
                    else:
                        prepared.append(function.name)
            if self.verify and not self.transactional:
                verify_module(module, check_ssa=True)

        result.static_before = StaticCounts.of_module(module)

        # Phase 2: profile (step-limit exhaustion falls back to the
        # static estimate instead of aborting the run).
        before_run: Optional[ExecutionResult] = None
        with tracer.span("phase:profile", category="phase") as profile_span:
            if self.use_interpreter_profile and self.entry in module.functions:
                try:
                    before_run = Interpreter(
                        module,
                        max_steps=self.max_steps,
                        compiled=self.compiled_interpreter,
                    ).run(self.entry, self.args)
                except InterpreterLimitError as exc:
                    diags.warn(
                        f"profiling run hit the interpreter limit ({exc}); "
                        "falling back to the static profile estimate"
                    )
                    result.profile = estimate_profile(module)
                    diags.profile_source = "estimator-fallback"
                else:
                    result.profile = ProfileData.from_execution(before_run)
                    result.dynamic_before = DynamicCounts.of_execution(before_run)
                    diags.profile_source = "interpreter"
            else:
                result.profile = estimate_profile(module)
                diags.profile_source = "estimator"
            profile_span.set("profile_source", diags.profile_source)

        # Phases 3+4: memory SSA, promotion, and cleanup — one
        # transaction per function, verified before committing.
        snapshots: Dict[str, FunctionSnapshot] = {}
        committed: Dict[str, FunctionState] = {}
        jobs = 1 if self.jobs == 1 else resolve_jobs(self.jobs)
        with tracer.span("phase:promote", category="phase") as promote_span:
            ran_parallel = False
            if jobs > 1 and len(prepared) > 1:
                ran_parallel = self._phase34_parallel(
                    module, result, prepared, snapshots, committed, jobs
                )
            if not ran_parallel:
                self._phase34_serial(
                    module, result, trees, prepared, snapshots, committed
                )
            promote_span.set("jobs_used", result.jobs_used)
            promote_span.set("functions", len(prepared))

        result.static_after = StaticCounts.of_module(module)

        # Phase 5: re-execute, compare behaviour, and bisect divergence.
        if before_run is not None:
            with tracer.span("phase:re-execute", category="phase") as rerun_span:
                self._check_behaviour(
                    module, result, before_run, snapshots, committed
                )
                rerun_span.set("output_matches", result.output_matches)

    # -- phases 3+4 ------------------------------------------------------

    def _phase34_serial(
        self,
        module: Module,
        result: PipelineResult,
        trees: Dict[str, IntervalTree],
        prepared: List[str],
        snapshots: Dict[str, FunctionSnapshot],
        committed: Dict[str, FunctionState],
    ) -> None:
        diags = result.diagnostics
        tracer = self.observability.tracer
        model = self.alias_model_factory(module)
        for name in prepared:
            function = module.functions[name]
            snap = snapshot_function(function) if self.transactional else None
            started = time.perf_counter()
            stage = "memssa"
            # Span names mirror the worker path (scheduler._promote_one)
            # exactly, so serial and parallel runs produce the same tree.
            with tracer.span("function:" + name, category="promote") as fn_span:
                try:
                    with tracer.span("stage:memssa", category="promote"):
                        mssa = build_memory_ssa(function, model)
                    stage = "promote"
                    with tracer.span("stage:promote", category="promote"):
                        stats = promote_function(
                            function, mssa, result.profile, trees[name], self.options
                        )
                    stage = "cleanup"
                    with tracer.span("stage:cleanup", category="promote"):
                        remove_dummy_loads(function)
                        propagate_copies(function)
                        dead_code_elimination(function)
                        dead_memory_elimination(function)
                    stage = "verify"
                    with tracer.span("stage:verify", category="promote"):
                        if self.verify:
                            verify_function(
                                function, check_ssa=True, check_memssa=True
                            )
                except Exception as exc:
                    if snap is None:
                        raise
                    snap.restore()
                    fn_span.set("status", "rolled_back").set("stage", stage)
                    result.stats[name] = FunctionPromotionStats()
                    self._mark_decision(name, "rolled_back")
                    diags.record_rollback(
                        name,
                        stage=stage,
                        error=exc,
                        duration_ms=(time.perf_counter() - started) * 1e3,
                    )
                else:
                    fn_span.set("status", "promoted")
                    fn_span.set("webs_promoted", stats.webs_promoted)
                    result.stats[name] = stats
                    if snap is not None:
                        snapshots[name] = snap
                        committed[name] = capture_state(function)
                    diags.record_promoted(
                        name,
                        duration_ms=(time.perf_counter() - started) * 1e3,
                        webs_promoted=stats.webs_promoted,
                    )

    def _phase34_parallel(
        self,
        module: Module,
        result: PipelineResult,
        prepared: List[str],
        snapshots: Dict[str, FunctionSnapshot],
        committed: Dict[str, FunctionState],
        jobs: int,
    ) -> bool:
        """Phases 3+4 over a worker pool; False means fall back to serial
        (nothing was modified)."""
        if self.resilience is not None:
            return self._phase34_resilient(
                module, result, prepared, snapshots, committed, jobs
            )
        diags = result.diagnostics
        obs = self.observability
        try:
            outcomes, transport = promote_functions_parallel(
                module,
                prepared,
                result.profile,
                self.options,
                self.alias_model_factory,
                self.verify,
                jobs,
                use_cache=self.use_cache,
                observe=obs.enabled,
                batch_size=self.batch_size,
                extras=self._worker_extras(),
            )
        except SchedulerError as exc:
            diags.warn(str(exc))
            diags.fallback_reason = exc.as_dict()
            obs.tracer.add_record(
                "event:serial-fallback",
                category="event",
                error_type=exc.error_type,
                detail=exc.detail,
                function=exc.function,
            )
            obs.metrics.inc("pipeline.serial_fallbacks")
            return False
        result.jobs_used = jobs
        result.transport_stats = transport
        if obs.enabled:
            metrics = obs.metrics
            metrics.inc("parallel.batches", transport.batches)
            metrics.inc("parallel.functions_shipped", transport.functions_shipped)
            metrics.inc("parallel.functions_reused", transport.functions_reused)
            metrics.inc("parallel.installs_full", transport.installs_full)
            metrics.inc("parallel.installs_delta", transport.installs_delta)
            metrics.inc("parallel.transport_bytes_out", transport.bytes_out)
            metrics.inc("parallel.transport_bytes_in", transport.bytes_in)
        for name, outcome in zip(prepared, outcomes):
            function = module.functions[name]
            # Graft the worker's spans (its pid is the trace lane) and
            # absorb its metrics and decision documents — in module
            # order, so the aggregate is identical to a serial run.
            obs.tracer.merge(outcome.spans)
            obs.metrics.absorb(outcome.metrics)
            if self.decisions is not None:
                self.decisions.absorb(outcome.decisions)
            if outcome.cache_stats is not None and result.cache_stats is not None:
                result.cache_stats.absorb(outcome.cache_stats)
            if outcome.status != FunctionResult.PROMOTED:
                # The worker already restored its copy; this module's
                # function was never touched — record the rollback with
                # the stage and error the worker observed.
                result.stats[name] = FunctionPromotionStats()
                self._mark_decision(name, "rolled_back")
                diags.record_rollback(
                    name,
                    stage=outcome.stage,
                    reason=outcome.reason,
                    error_type=outcome.error_type,
                    duration_ms=outcome.duration_ms,
                )
                continue
            snap = snapshot_function(function)
            try:
                outcome.payload.install(module)
            except TransportError as exc:
                snap.restore()
                result.stats[name] = FunctionPromotionStats()
                self._mark_decision(name, "rolled_back")
                diags.record_rollback(
                    name,
                    stage="install",
                    error=exc,
                    duration_ms=outcome.duration_ms,
                )
                continue
            stats = FunctionPromotionStats()
            stats.absorb(outcome.stats)
            result.stats[name] = stats
            snapshots[name] = snap
            committed[name] = capture_state(function)
            diags.record_promoted(
                name,
                duration_ms=outcome.duration_ms,
                webs_promoted=stats.webs_promoted,
            )
        return True

    def _worker_extras(self) -> Optional[Dict[str, object]]:
        """Observability state to carry into worker processes: whether to
        journal decisions, and the distributed trace id for their root
        spans.  ``None`` when there is nothing to carry — the warm pool
        can then reuse fully generic workers."""
        extras: Dict[str, object] = {}
        if self.decisions is not None:
            extras["decisions"] = True
        trace_id = self.observability.tracer.trace_id
        if trace_id:
            extras["trace"] = trace_id
        return extras or None

    def _phase34_resilient(
        self,
        module: Module,
        result: PipelineResult,
        prepared: List[str],
        snapshots: Dict[str, FunctionSnapshot],
        committed: Dict[str, FunctionState],
        jobs: int,
    ) -> bool:
        """Phases 3+4 under the resilient executor: deadlines, retry with
        backoff, crash recovery, and quarantine.  False means fall back
        to serial (nothing was modified)."""
        diags = result.diagnostics
        obs = self.observability
        executor = ResilientExecutor(
            module,
            prepared,
            result.profile,
            self.options,
            self.alias_model_factory,
            self.verify,
            jobs,
            self.use_cache,
            self.resilience,
            observe=obs.enabled,
            extras=self._worker_extras(),
        )
        try:
            outcomes, report = executor.run()
        except ResilientExecutorError as exc:
            diags.warn(str(exc))
            diags.fallback_reason = {
                "error_type": type(exc).__name__,
                "detail": str(exc).splitlines()[0],
                "function": None,
            }
            obs.tracer.add_record(
                "event:serial-fallback",
                category="event",
                error_type=type(exc).__name__,
                detail=str(exc).splitlines()[0],
            )
            obs.metrics.inc("pipeline.serial_fallbacks")
            return False
        result.jobs_used = jobs
        diags.resilience = report.as_dict()
        diags.resilience["options"] = self.resilience.as_dict()
        for outcome in outcomes:
            name = outcome.name
            function = module.functions[name]
            diags.attempt_histories[name] = outcome.history.as_dict()
            # One synthetic span per attempt (reconstructed from the
            # retry history — earlier attempts left no live spans), then
            # the final attempt's real worker spans.
            for rec in outcome.history.records:
                obs.tracer.add_record(
                    "attempt:" + name,
                    category="attempt",
                    duration_ms=rec.duration_ms,
                    attempt=rec.attempt,
                    outcome=rec.outcome,
                    error_type=rec.error_type,
                    reason=rec.reason,
                    backoff_s=rec.backoff_s,
                )
                obs.metrics.inc("resilience.attempts")
                if rec.outcome not in ("promoted", "rolled_back"):
                    obs.metrics.inc("resilience." + rec.outcome.replace("-", "_"))
            obs.tracer.merge(outcome.spans)
            obs.metrics.absorb(outcome.metrics)
            if self.decisions is not None:
                self.decisions.absorb(outcome.decisions)
            if outcome.cache_stats is not None and result.cache_stats is not None:
                result.cache_stats.absorb(outcome.cache_stats)
            if outcome.status == ResilientOutcome.QUARANTINED:
                # The worker copies never shipped a payload, so this
                # module's function still holds its pre-promotion IR —
                # degraded but sound by construction.
                result.stats[name] = FunctionPromotionStats()
                obs.metrics.inc("resilience.quarantines")
                self._mark_decision(name, "quarantined")
                diags.record_quarantine(
                    name,
                    reason=outcome.reason,
                    error_type=outcome.error_type,
                    stage=outcome.stage,
                    duration_ms=outcome.duration_ms,
                    attempts=outcome.history.attempts,
                )
                continue
            if outcome.status != ResilientOutcome.PROMOTED:
                result.stats[name] = FunctionPromotionStats()
                self._mark_decision(name, "rolled_back")
                record = diags.record_rollback(
                    name,
                    stage=outcome.stage,
                    reason=outcome.reason,
                    error_type=outcome.error_type,
                    duration_ms=outcome.duration_ms,
                )
                record.attempts = outcome.history.attempts
                continue
            snap = snapshot_function(function)
            try:
                outcome.payload.install(module)
            except TransportError as exc:
                snap.restore()
                result.stats[name] = FunctionPromotionStats()
                self._mark_decision(name, "rolled_back")
                diags.record_rollback(
                    name,
                    stage="install",
                    error=exc,
                    duration_ms=outcome.duration_ms,
                )
                continue
            stats = FunctionPromotionStats()
            stats.absorb(outcome.stats)
            result.stats[name] = stats
            snapshots[name] = snap
            committed[name] = capture_state(function)
            record = diags.record_promoted(
                name,
                duration_ms=outcome.duration_ms,
                webs_promoted=stats.webs_promoted,
            )
            record.attempts = outcome.history.attempts
        return True

    # -- phase 5 ---------------------------------------------------------

    def _execute(self, module: Module):
        """One re-execution attempt: (run, error) with exactly one set."""
        try:
            run = Interpreter(
                module,
                max_steps=self.max_steps,
                compiled=self.compiled_interpreter,
            ).run(self.entry, self.args)
        except InterpreterError as exc:
            return None, exc
        return run, None

    def _check_behaviour(
        self,
        module: Module,
        result: PipelineResult,
        before_run: ExecutionResult,
        snapshots: Dict[str, FunctionSnapshot],
        committed: Dict[str, FunctionState],
    ) -> None:
        diags = result.diagnostics
        after_run, error = self._execute(module)
        if after_run is not None and _behaviour_matches(before_run, after_run):
            result.dynamic_after = DynamicCounts.of_execution(after_run)
            result.output_matches = True
            return

        reason = (
            f"re-execution raised {type(error).__name__}: {error}"
            if error is not None
            else "re-execution diverged from the baseline behaviour"
        )
        if not committed:
            diags.warn(f"{reason}; no transformed function to roll back")
            result.output_matches = False
            if after_run is not None:
                result.dynamic_after = DynamicCounts.of_execution(after_run)
            return

        # Delta-debug: find the minimal culprit set among the transformed
        # functions, toggling each between its promoted and pre-promotion
        # IR and re-running from the snapshots.
        diags.warn(
            f"{reason}; bisecting over {len(committed)} transformed function(s)"
        )
        candidates = list(committed)

        def diverges(kept: List[str]) -> bool:
            kept_set = set(kept)
            for name in candidates:
                if name in kept_set:
                    committed[name].install(module.functions[name])
                else:
                    snapshots[name].restore()
            run, _ = self._execute(module)
            return run is None or not _behaviour_matches(before_run, run)

        culprits, tests_run, resolved = isolate_culprits(candidates, diverges)
        diags.bisection = BisectionReport(candidates, culprits, tests_run, resolved)

        culprit_set = set(culprits)
        for name in candidates:
            if name in culprit_set:
                snapshots[name].restore()
            else:
                committed[name].install(module.functions[name])
        for name in culprits:
            result.stats[name] = FunctionPromotionStats()
            self._mark_decision(name, "rolled_back")
            diags.record_rollback(
                name,
                stage="re-execution",
                reason="behaviour divergence isolated by bisection",
            )

        final_run, final_error = self._execute(module)
        result.output_matches = final_run is not None and _behaviour_matches(
            before_run, final_run
        )
        if final_run is not None:
            result.dynamic_after = DynamicCounts.of_execution(final_run)
        result.static_after = StaticCounts.of_module(module)
        if not result.output_matches:
            diags.warn(
                "behaviour divergence persists after rolling back every "
                "transformed function; promotion is not the cause"
            )
