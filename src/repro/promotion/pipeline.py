"""The end-to-end register promotion pipeline.

Order of operations per function:

1. remove unreachable blocks, run classic SSA construction (mem2reg) for
   unexposed locals, and normalize the CFG for promotion (split critical
   edges, dedicated preheaders and exit tails);
2. profile: execute the program once with the interpreter (or fall back
   to the static estimator), collecting block frequencies and the
   "before" dynamic costs;
3. build memory SSA and run interval-scoped web promotion;
4. clean up: delete dummy loads, propagate copies, sweep dead code and
   dead memory phis; verify SSA and memory SSA;
5. re-execute to collect the "after" dynamic costs and check that the
   observable behaviour (printed output, return value, final global
   values) is unchanged.

The result object carries everything Tables 1 and 2 need.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence

from repro.analysis.intervals import IntervalTree, normalize_for_promotion
from repro.ir import instructions as I
from repro.ir.function import Function
from repro.ir.module import Module
from repro.ir.verify import verify_module
from repro.memory.aliasing import AliasModel
from repro.memory.memssa import build_memory_ssa
from repro.passes.copyprop import propagate_copies
from repro.passes.dce import (
    dead_code_elimination,
    dead_memory_elimination,
    remove_dummy_loads,
)
from repro.profile.estimator import estimate_profile
from repro.profile.interp import ExecutionResult, Interpreter
from repro.profile.profiles import ProfileData
from repro.promotion.driver import (
    FunctionPromotionStats,
    PromotionOptions,
    promote_function,
)
from repro.ssa.construct import construct_ssa


class StaticCounts:
    """Static (textual) operation counts — Table 1's metric."""

    def __init__(self, loads: int = 0, stores: int = 0) -> None:
        self.loads = loads
        self.stores = stores

    @property
    def total(self) -> int:
        return self.loads + self.stores

    @classmethod
    def of_module(cls, module: Module) -> "StaticCounts":
        counts = cls()
        for function in module.functions.values():
            for inst in function.instructions():
                if isinstance(inst, I.Load):
                    counts.loads += 1
                elif isinstance(inst, I.Store):
                    counts.stores += 1
        return counts

    def __repr__(self) -> str:  # pragma: no cover
        return f"StaticCounts(loads={self.loads}, stores={self.stores})"


class DynamicCounts:
    """Executed operation counts — Table 2's metric."""

    def __init__(self, loads: int = 0, stores: int = 0) -> None:
        self.loads = loads
        self.stores = stores

    @property
    def total(self) -> int:
        return self.loads + self.stores

    @classmethod
    def of_execution(cls, result: ExecutionResult) -> "DynamicCounts":
        return cls(result.loads, result.stores)

    def __repr__(self) -> str:  # pragma: no cover
        return f"DynamicCounts(loads={self.loads}, stores={self.stores})"


def improvement(before: int, after: int) -> float:
    """Percentage improvement as the paper reports it (negative when the
    count increased)."""
    if before == 0:
        return 0.0
    return 100.0 * (before - after) / before


class PipelineResult:
    def __init__(self, module: Module) -> None:
        self.module = module
        self.static_before = StaticCounts()
        self.static_after = StaticCounts()
        self.dynamic_before = DynamicCounts()
        self.dynamic_after = DynamicCounts()
        self.stats: Dict[str, FunctionPromotionStats] = {}
        self.output_matches = True
        self.profile: Optional[ProfileData] = None

    def totals(self) -> FunctionPromotionStats:
        total = FunctionPromotionStats()
        for stats in self.stats.values():
            total.absorb(stats.as_dict())
        return total

    def report(self) -> str:
        lines = [
            f"static  loads {self.static_before.loads:>8} -> {self.static_after.loads:<8}"
            f" ({improvement(self.static_before.loads, self.static_after.loads):+.1f}%)",
            f"static  stores {self.static_before.stores:>7} -> {self.static_after.stores:<8}"
            f" ({improvement(self.static_before.stores, self.static_after.stores):+.1f}%)",
            f"dynamic loads {self.dynamic_before.loads:>8} -> {self.dynamic_after.loads:<8}"
            f" ({improvement(self.dynamic_before.loads, self.dynamic_after.loads):+.1f}%)",
            f"dynamic stores {self.dynamic_before.stores:>7} -> {self.dynamic_after.stores:<8}"
            f" ({improvement(self.dynamic_before.stores, self.dynamic_after.stores):+.1f}%)",
            f"behaviour preserved: {self.output_matches}",
        ]
        return "\n".join(lines)


class PromotionPipeline:
    """The user-facing pass manager around :func:`promote_function`."""

    def __init__(
        self,
        options: Optional[PromotionOptions] = None,
        alias_model: Optional[Callable[[Module], AliasModel]] = None,
        entry: str = "main",
        args: Sequence[int] = (),
        use_interpreter_profile: bool = True,
        run_mem2reg: bool = True,
        verify: bool = True,
        max_steps: int = 50_000_000,
    ) -> None:
        self.options = options or PromotionOptions()
        self.alias_model_factory = alias_model or AliasModel.conservative
        self.entry = entry
        self.args = list(args)
        self.use_interpreter_profile = use_interpreter_profile
        self.run_mem2reg = run_mem2reg
        self.verify = verify
        self.max_steps = max_steps

    def run(self, module: Module) -> PipelineResult:
        result = PipelineResult(module)

        # Phase 1: prepare every function.
        trees: Dict[str, IntervalTree] = {}
        for function in module.functions.values():
            if self.run_mem2reg:
                construct_ssa(function)
            trees[function.name] = normalize_for_promotion(function)
        if self.verify:
            verify_module(module, check_ssa=True)

        result.static_before = StaticCounts.of_module(module)

        # Phase 2: profile.
        before_run: Optional[ExecutionResult] = None
        if self.use_interpreter_profile and self.entry in module.functions:
            before_run = Interpreter(module, max_steps=self.max_steps).run(
                self.entry, self.args
            )
            result.profile = ProfileData.from_execution(before_run)
            result.dynamic_before = DynamicCounts.of_execution(before_run)
        else:
            result.profile = estimate_profile(module)

        # Phase 3: memory SSA + promotion.
        model = self.alias_model_factory(module)
        for function in module.functions.values():
            mssa = build_memory_ssa(function, model)
            result.stats[function.name] = promote_function(
                function, mssa, result.profile, trees[function.name], self.options
            )

        # Phase 4: cleanup.
        for function in module.functions.values():
            remove_dummy_loads(function)
            propagate_copies(function)
            dead_code_elimination(function)
            dead_memory_elimination(function)
        if self.verify:
            verify_module(module, check_ssa=True, check_memssa=True)

        result.static_after = StaticCounts.of_module(module)

        # Phase 5: re-execute and compare behaviour.
        if before_run is not None:
            after_run = Interpreter(module, max_steps=self.max_steps).run(
                self.entry, self.args
            )
            result.dynamic_after = DynamicCounts.of_execution(after_run)
            result.output_matches = (
                after_run.output == before_run.output
                and after_run.return_value == before_run.return_value
                and after_run.globals_snapshot() == before_run.globals_snapshot()
            )
        return result
