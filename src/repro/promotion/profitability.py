"""Profitability analysis (§4.3).

``loads_added`` and ``stores_added`` are derived from the phi structure
of the web:

* a load of leaf ``x`` is placed at the end of block ``L`` for every phi
  operand ``x:L`` whose ``x`` is not defined by a store of the web — this
  is the reload after an aliased store, or the initial load on entry;
* a store of ``x`` is placed (a) at the end of ``L`` for every phi
  operand ``x:L`` where ``x`` is a store of the web and an aliased load
  *depends on* the phi (transitively through phis), and (b) immediately
  before every aliased load that uses a store of the web directly;
  dominated duplicates are pruned.

The profit is the profile-weighted difference between what promotion
deletes (loads defined by a phi or store of the web; all stores of the
web) and what it inserts.  Store removal is assessed separately: "Based
on the cost of removing stores, we can decide not to remove stores", in
which case the variable lives in memory and a register simultaneously.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.analysis.dominance import DominatorTree
from repro.ir import instructions as I
from repro.ir.basicblock import BasicBlock
from repro.memory.resources import MemName
from repro.profile.profiles import ProfileData
from repro.promotion.webs import Web

#: A planned insertion: (name, instruction to insert before).
Placement = Tuple[MemName, I.Instruction]


class WebPlan:
    """Everything decided about one web before transformation."""

    def __init__(self, web: Web) -> None:
        self.web = web
        self.loads_added: List[Placement] = []
        self.stores_added: List[Placement] = []
        #: Loads whose resource is defined by a phi or store of the web —
        #: the ones promotion replaces with copies.
        self.replaceable_loads: List[I.Load] = []
        self.profit_loads = 0
        self.profit_stores = 0
        self.remove_stores = False

    @property
    def profit(self) -> int:
        return self.profit_loads + (self.profit_stores if self.remove_stores else 0)

    @property
    def worthwhile(self) -> bool:
        """Promote only when something is actually removed and the
        profile-weighted profit is non-negative."""
        if not self.replaceable_loads and not (
            self.remove_stores and self.web.store_refs
        ):
            return False
        return self.profit >= 0

    def rationale(self) -> dict:
        """The §4.3 numbers behind this plan, as the decision journal
        records them: the two profit halves, the compensation volume,
        and the store-removal verdict they imply."""
        return {
            "profit_loads": self.profit_loads,
            "profit_stores": self.profit_stores,
            "profit": self.profit,
            "loads_added": len(self.loads_added),
            "stores_added": len(self.stores_added),
            "replaceable_loads": len(self.replaceable_loads),
            "remove_stores": self.remove_stores,
            "worthwhile": self.worthwhile,
        }


def plan_web(
    web: Web,
    profile: ProfileData,
    domtree: DominatorTree,
    count_tail_stores: bool = False,
) -> WebPlan:
    """Compute the paper's loads-added / stores-added sets and profit.

    ``count_tail_stores`` enables a refinement over the paper (and the
    pipeline's default): the stores inserted at the interval tails are
    charged to the store profit as well.  The paper's formula omits
    them, which (a) makes the ``>= 0`` tie rule non-idempotent — a
    zero-profit web re-promoted later accretes tail stores each time
    (measured in ``tests/e2e/test_idempotence.py``) — and (b) approves
    webs whose claimed store removal is illusory because the store is
    re-materialized at the tails, net-adding the compensating entry
    load (hypothesis seed 261 in
    ``tests/property/test_promotion_semantics.py``).
    """
    plan = WebPlan(web)
    defined_by_store = {id(s.mem_defs[0]) for s in web.store_refs}
    defined_by_phi = {id(p.dst_name) for p in web.phis}

    # loads_added: phi-operand leaves not defined by a store of the web.
    seen_loads: Set[Tuple[int, int]] = set()
    for phi in web.phis:
        for pred, name in phi.incoming:
            if id(name) in defined_by_store or id(name) in defined_by_phi:
                continue
            anchor = pred.terminator
            assert anchor is not None
            key = (id(name), id(anchor))
            if key not in seen_loads:
                seen_loads.add(key)
                plan.loads_added.append((name, anchor))

    # stores_added, part (a): walk each aliased load's used name backward
    # through the web's phis collecting contributing store operands.
    store_sites: List[Placement] = []
    seen_sites: Set[Tuple[int, int]] = set()

    def add_site(name: MemName, anchor: I.Instruction) -> None:
        key = (id(name), id(anchor))
        if key not in seen_sites:
            seen_sites.add(key)
            store_sites.append((name, anchor))

    def collect_from_phi(phi: I.MemPhi, visited: Set[int]) -> None:
        if id(phi) in visited:
            return
        visited.add(id(phi))
        for pred, name in phi.incoming:
            if id(name) in defined_by_store:
                anchor = pred.terminator
                assert anchor is not None
                add_site(name, anchor)
            elif id(name) in defined_by_phi:
                collect_from_phi(name.def_inst, visited)  # type: ignore[arg-type]

    for inst, name in web.aliased_load_refs:
        if id(name) in defined_by_store:
            # Part (b): the aliased load uses a store of the web directly.
            add_site(name, inst)
        elif id(name) in defined_by_phi:
            collect_from_phi(name.def_inst, set())  # type: ignore[arg-type]
        # Names defined outside the interval or by an aliased store need
        # no flush: memory already holds them.

    plan.stores_added = _prune_dominated(store_sites, domtree)

    # Replaceable loads: resource defined by a store or phi of the web.
    for load in web.load_refs:
        name = load.mem_uses[0]
        if id(name) in defined_by_store or id(name) in defined_by_phi:
            plan.replaceable_loads.append(load)

    # Profit (§4.3), split into the load part and the store part.
    plan.profit_loads = sum(profile.freq_of(ld) for ld in plan.replaceable_loads) - sum(
        profile.freq_of(anchor) for _, anchor in plan.loads_added
    )
    plan.profit_stores = sum(profile.freq_of(st) for st in web.store_refs) - sum(
        profile.freq_of(anchor) for _, anchor in plan.stores_added
    )
    if count_tail_stores:
        plan.profit_stores -= _tail_store_cost(
            web, profile, domtree, defined_by_store, defined_by_phi
        )
    plan.remove_stores = bool(web.store_refs) and plan.profit_stores >= 0
    return plan


def _tail_store_cost(
    web: Web,
    profile: ProfileData,
    domtree: DominatorTree,
    defined_by_store: Set[int],
    defined_by_phi: Set[int],
) -> int:
    """Profile weight of the stores ``insert_stores_at_interval_tails``
    would place (the refinement's extra charge)."""
    from repro.promotion.webpromote import reaching_web_name

    cost = 0
    for src, tail in web.interval.exit_edges():
        live_out = reaching_web_name(web, domtree, src)
        if live_out is None:
            continue
        if id(live_out) in defined_by_store or id(live_out) in defined_by_phi:
            cost += profile.freq(tail)
    return cost


def plan_no_defs_web(
    web: Web, profile: ProfileData, preheader: Optional[BasicBlock]
) -> WebPlan:
    """The degenerate plan for a web with no definitions in the interval:
    one load in the preheader replaces every load of the web."""
    plan = WebPlan(web)
    plan.replaceable_loads = list(web.load_refs)
    preheader_cost = profile.freq(preheader) if preheader is not None else 1
    plan.profit_loads = (
        sum(profile.freq_of(ld) for ld in web.load_refs) - preheader_cost
    )
    return plan


def _prune_dominated(sites: List[Placement], domtree: DominatorTree) -> List[Placement]:
    """Drop (x, j) when some (x, i) with ``i`` dominating ``j`` exists."""
    result: List[Placement] = []
    for name, anchor in sites:
        block = anchor.block
        assert block is not None
        dominated = False
        for other_name, other_anchor in sites:
            if other_anchor is anchor or other_name is not name:
                continue
            other_block = other_anchor.block
            assert other_block is not None
            if other_block is block:
                # Same block: the earlier instruction dominates the later.
                body = block.instructions
                if body.index(other_anchor) < body.index(anchor):
                    dominated = True
                    break
            elif domtree.strictly_dominates(other_block, block):
                dominated = True
                break
        if not dominated:
            result.append((name, anchor))
    return result
