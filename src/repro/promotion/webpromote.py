"""Web promotion — the transformation half of §4.4 (Figures 4-6).

``promote_in_web`` executes a :class:`WebPlan`:

* ``init_vr_map`` places a copy ``t = v`` after every store ``st [x], v``
  of the web and maps ``x -> t`` (Fig. 4's ``initVRMap``);
* ``insert_loads_at_phi_leaves`` realizes the planned leaf loads;
* ``replace_loads_by_copies`` (Fig. 5) turns every load of a
  store/phi-defined name into a copy of its materialized value;
* ``materialize_store_value`` (Fig. 6) mirrors the memory phi structure
  with register phis, using a placeholder-first strategy so cyclic phi
  webs terminate;
* when stores are removed, ``insert_stores_for_aliased_loads`` and
  ``insert_stores_at_interval_tails`` place the compensating stores,
  after which one batched incremental SSA update
  (:func:`repro.ssa.incremental.update_ssa_for_cloned_resources`) renames
  downstream uses and deletes the dead original stores and phis —
  the paper's ``deleteStores`` falls out of the update's step 4;
* finally a dummy aliased load summarizing the web's memory expectation
  is placed in the interval preheader for the enclosing interval.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.analysis.dominance import DominatorTree
from repro.ir import instructions as I
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.values import VReg
from repro.memory.resources import MemName
from repro.ssa.incremental import update_ssa_for_cloned_resources
from repro.observability import decisions as decision_journal
from repro.promotion.profitability import WebPlan


class WebPromotion:
    """Mutable state for promoting one web."""

    def __init__(
        self,
        function: Function,
        plan: WebPlan,
        domtree: DominatorTree,
        entry_name: MemName,
        journal=decision_journal.NULL_FUNCTION_DECISIONS,
        interval=None,
    ) -> None:
        self.function = function
        self.plan = plan
        self.web = plan.web
        self.domtree = domtree
        self.entry_name = entry_name
        #: Decision journal for compensating insertions (null when off).
        self.journal = journal
        self.interval = interval if interval is not None else plan.web.interval
        #: vrMap: memory name -> virtual register holding its value.
        self.vr_map: Dict[int, VReg] = {}
        #: (leaf name id, block id) -> register of the inserted leaf load.
        self.leaf_loads: Dict[Tuple[int, int], VReg] = {}
        #: Names of the cloned store definitions, for the SSA update.
        self.cloned: List[MemName] = []
        self.stats: Dict[str, int] = {
            "loads_replaced": 0,
            "loads_inserted": 0,
            "stores_inserted": 0,
            "tail_stores_inserted": 0,
            "stores_deleted": 0,
            "dummies_inserted": 0,
            "reg_phis_created": 0,
        }

    # -- Fig. 4 steps ------------------------------------------------------

    def init_vr_map(self) -> None:
        """Copy each stored value into a register mapped to the store's
        name: ``st [x], v`` gains ``t = copy v`` right after it."""
        for store in self.web.store_refs:
            t = self.function.new_reg("vr")
            copy = I.Copy(t, store.value)
            store.block.insert_after(copy, store)
            self.vr_map[id(store.mem_defs[0])] = t

    def insert_loads_at_phi_leaves(self) -> None:
        """Insert ``t = ld [x]`` before each planned anchor."""
        for name, anchor in self.plan.loads_added:
            block = anchor.block
            assert block is not None
            t = self.function.new_reg("rl")
            load = I.Load(t, name.var)
            load.mem_uses = [name]
            block.insert_before(load, anchor)
            self.leaf_loads[(id(name), id(block))] = t
            self.vr_map.setdefault(id(name), t)
            self.journal.inserted(
                load, "load", self.web, self.interval, "phi-leaf-load"
            )
            self.stats["loads_inserted"] += 1

    def replace_loads_by_copies(self) -> None:
        """Fig. 5: every load of a store/phi-defined name becomes a copy."""
        for load in self.plan.replaceable_loads:
            value = self.materialize_store_value(load.mem_uses[0])
            block = load.block
            assert block is not None
            copy = I.Copy(load.dst, value)
            block.insert_before(copy, load)
            load.remove_from_block()
            self.stats["loads_replaced"] += 1

    def materialize_store_value(self, name: MemName) -> VReg:
        """Fig. 6: the register holding ``name``'s value.

        Assumes every needed leaf load and store copy is already in
        place.  For a phi-defined name a register phi mirroring the
        memory phi is created; the placeholder is registered in vrMap
        *before* operands are materialized so that cyclic phi webs (loop
        headers and latches referencing each other) terminate.
        """
        if id(name) in self.vr_map:
            return self.vr_map[id(name)]
        phi_inst = name.def_inst
        if not isinstance(phi_inst, I.MemPhi):
            raise AssertionError(
                f"materialize of {name}: not in vrMap and not phi-defined"
            )
        block = phi_inst.block
        assert block is not None
        target = self.function.new_reg("vp")
        reg_phi = I.Phi(target, [])
        block.insert_at_front(reg_phi)
        self.vr_map[id(name)] = target
        self.stats["reg_phis_created"] += 1

        defined_by_store = {id(s.mem_defs[0]) for s in self.web.store_refs}
        defined_by_phi = {id(p.dst_name) for p in self.web.phis}
        for pred, operand in phi_inst.incoming:
            if id(operand) in defined_by_phi or id(operand) in defined_by_store:
                value: VReg = self.materialize_store_value(operand)
            else:
                leaf = self.leaf_loads.get((id(operand), id(pred)))
                if leaf is None:
                    # The leaf load may sit in a different block that
                    # dominates this pred (shared by several phis); fall
                    # back to any register already holding the name.
                    fallback = self.vr_map.get(id(operand))
                    if fallback is None:
                        raise AssertionError(
                            f"no materialized value for leaf {operand} from "
                            f"{pred.name}"
                        )
                    value = fallback
                else:
                    value = leaf
            reg_phi.set_incoming(pred, value)
        return target

    def insert_stores_for_aliased_loads(self) -> None:
        """Place ``st [x], vrMap[x]`` before each planned anchor."""
        for name, anchor in self.plan.stores_added:
            block = anchor.block
            assert block is not None
            store = I.Store(name.var, self.vr_map[id(name)])
            new_name = self.function.new_mem_name(name.var, store)
            store.mem_defs = [new_name]
            block.insert_before(store, anchor)
            self.cloned.append(new_name)
            self.journal.inserted(
                store, "store", self.web, self.interval, "aliased-load-flush-store"
            )
            self.stats["stores_inserted"] += 1

    def insert_stores_at_interval_tails(self) -> None:
        """Store the live-out value in the tail of each exit edge whose
        reaching definition is a store or phi of the web."""
        defined_by_store = {id(s.mem_defs[0]) for s in self.web.store_refs}
        defined_by_phi = {id(p.dst_name) for p in self.web.phis}
        for src, tail in self.web.interval.exit_edges():
            live_out = self._reaching_web_name(src)
            if live_out is None:
                continue
            if (
                id(live_out) not in defined_by_store
                and id(live_out) not in defined_by_phi
            ):
                continue  # live-in or aliased-store-defined: memory is current
            value = self.materialize_store_value(live_out)
            store = I.Store(live_out.var, value)
            new_name = self.function.new_mem_name(live_out.var, store)
            store.mem_defs = [new_name]
            tail.insert_at_front(store)
            self.cloned.append(new_name)
            self.journal.inserted(
                store, "store", self.web, self.interval, "interval-tail-store"
            )
            self.stats["tail_stores_inserted"] += 1

    def run_ssa_update(self, all_names: List[MemName]) -> None:
        """Batched incremental update for the cloned stores; its dead-code
        step performs the paper's ``deleteStores``."""
        if not self.cloned:
            return
        old = list(all_names)
        if not any(n is self.entry_name for n in old):
            old.append(self.entry_name)
        stats = update_ssa_for_cloned_resources(
            self.function, old, self.cloned, domtree=self.domtree
        )
        self.stats["stores_deleted"] += stats.defs_deleted - stats.phis_deleted

    def insert_dummy_aliased_load(self, preheader: Optional[BasicBlock]) -> None:
        """Summarize this web's entry expectation for the parent interval."""
        if preheader is None or self.web.live_in is None:
            return
        dummy = I.DummyAliasedLoad(self.web.live_in)
        term = preheader.terminator
        if term is not None:
            preheader.insert_before(dummy, term)
        else:  # pragma: no cover - preheaders always end in a jump
            preheader.append(dummy)
        self.journal.inserted(
            dummy, "dummy", self.web, self.interval, "dummy-aliased-load"
        )
        self.stats["dummies_inserted"] += 1

    # -- helpers ------------------------------------------------------------

    def _reaching_web_name(self, exit_src: BasicBlock) -> Optional[MemName]:
        return reaching_web_name(self.web, self.domtree, exit_src)


def reaching_web_name(
    web, domtree: DominatorTree, exit_src: BasicBlock
) -> Optional[MemName]:
    """The web name live at the end of ``exit_src``, or None.

    The dominator walk must consider *every* definition of the variable —
    not just this web's names — because a definition from another web (a
    call's may-def, or a store inserted while promoting a sibling web)
    supersedes this web's value on the way to the exit.  Only if the
    variable's reaching definition belongs to this web is it the web's
    live-out resource.
    """
    in_web = {id(n) for n in web.names}
    var = web.var
    block: Optional[BasicBlock] = exit_src
    while block is not None:
        best = None
        best_pos = -1
        for pos, inst in enumerate(block.instructions):
            for name in inst.mem_defs:
                if name.var is var and pos > best_pos:
                    best, best_pos = name, pos
        if best is not None:
            return best if id(best) in in_web else None
        block = domtree.idom.get(block)
    # No definition of the variable dominates the exit: the reaching
    # value is the interval's live-in, current in memory already.
    return None
