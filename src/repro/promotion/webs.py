"""Memory SSA webs — the unit of promotion within an interval (§4.2).

A web is an equivalence class of SSA names of one variable, connected by
the memory phi instructions *in the current interval* (Fig. 3's
union-find construction).  A variable whose SSA names are separated by
calls or pointer stores splits into several webs, "each of which is
considered individually for promotion — thus the call to bar() need not
be considered when promoting x1".

Alongside the class itself we compute the paper's per-web sets:
``loadReferences``, ``storeReferences``, ``aliasedLoadReferences``,
``aliasedStoreReferences``, the names defined in the interval, the
live-in resource, and the interval phis.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.analysis.intervals import Interval
from repro.ir import instructions as I
from repro.ir.function import Function
from repro.memory.resources import MemName, MemoryVar
from repro.ssa.unionfind import UnionFind


class Web:
    """One memory SSA web and its reference sets within an interval."""

    def __init__(self, var: MemoryVar, interval: Interval) -> None:
        self.var = var
        self.interval = interval
        #: webResources — every name in the equivalence class.
        self.names: List[MemName] = []
        #: Singleton loads in the interval reading a web name.
        self.load_refs: List[I.Load] = []
        #: Singleton stores in the interval defining a web name.
        self.store_refs: List[I.Store] = []
        #: (instruction, name) pairs: aliased uses of web names (calls,
        #: pointer references, dummy loads, returns).
        self.aliased_load_refs: List[Tuple[I.Instruction, MemName]] = []
        #: (instruction, name) pairs: aliased definitions of web names.
        self.aliased_store_refs: List[Tuple[I.Instruction, MemName]] = []
        #: Memory phis of this web located in the interval.
        self.phis: List[I.MemPhi] = []
        #: Names defined by an instruction inside the interval (stores,
        #: aliased stores, and phis).
        self.defs_in_interval: List[MemName] = []
        #: The unique name defined in an ancestor scope but used here
        #: (None when every name is defined inside the interval).
        self.live_in: Optional[MemName] = None

    @property
    def has_defs(self) -> bool:
        return bool(self.defs_in_interval)

    def contains(self, name: MemName) -> bool:
        return any(n is name for n in self.names)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Web({self.var.name}, {len(self.names)} names, "
            f"{len(self.load_refs)}ld/{len(self.store_refs)}st, "
            f"{len(self.aliased_load_refs)}ald/{len(self.aliased_store_refs)}ast)"
        )


def construct_ssa_webs(function: Function, interval: Interval) -> List[Web]:
    """Build the webs of every promotable variable in ``interval``.

    Implements Figure 3: every name referenced in the interval starts as
    a singleton; each memory phi in the interval unions its target with
    its operands.  The transitive closure partitions the names into webs.
    Webs are returned sorted by variable name then by first name version,
    for determinism.
    """
    uf: UnionFind[MemName] = UnionFind()

    def track(name: MemName) -> bool:
        return name.var.promotable

    for block in interval.blocks:
        for inst in block.instructions:
            if isinstance(inst, I.MemPhi):
                if not track(inst.dst_name):
                    continue
                uf.add(inst.dst_name)
                for _, operand in inst.incoming:
                    uf.union(inst.dst_name, operand)
            else:
                for name in inst.mem_uses:
                    if track(name):
                        uf.add(name)
                for name in inst.mem_defs:
                    if track(name):
                        uf.add(name)

    webs: List[Web] = []
    for group in uf.groups():
        web = Web(group[0].var, interval)
        web.names = group
        _collect_references(function, web)
        webs.append(web)
    webs.sort(key=lambda w: (w.var.name, min(n.version for n in w.names)))
    return webs


def _collect_references(function: Function, web: Web) -> None:
    """Scan the interval once, filling the web's reference sets."""
    in_web = {id(n) for n in web.names}
    interval = web.interval

    for block in interval.blocks:
        for inst in block.instructions:
            if isinstance(inst, I.MemPhi):
                if id(inst.dst_name) in in_web:
                    web.phis.append(inst)
                    web.defs_in_interval.append(inst.dst_name)
                continue
            if isinstance(inst, I.Load):
                if inst.mem_uses and id(inst.mem_uses[0]) in in_web:
                    web.load_refs.append(inst)
                continue
            if isinstance(inst, I.Store):
                if inst.mem_defs and id(inst.mem_defs[0]) in in_web:
                    web.store_refs.append(inst)
                    web.defs_in_interval.append(inst.mem_defs[0])
                continue
            if inst.is_aliased_mem_op:
                for name in inst.mem_uses:
                    if id(name) in in_web:
                        web.aliased_load_refs.append((inst, name))
                for name in inst.mem_defs:
                    if id(name) in in_web:
                        web.aliased_store_refs.append((inst, name))
                        web.defs_in_interval.append(name)

    defined_inside = {id(n) for n in web.defs_in_interval}
    outside = [n for n in web.names if id(n) not in defined_inside]
    # Single-threaded memory: at most one live-in resource per web for a
    # proper interval.  Improper intervals can expose several
    # outside-defined names (one per entry path); the first in version
    # order is the representative used for dummy loads.
    outside.sort(key=lambda n: n.version)
    web.live_in = outside[0] if outside else None
