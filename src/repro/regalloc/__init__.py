"""Register-allocation substrate for the register-pressure study.

Table 3 measures "the number of colors needed to color the register
interference graph" of selected routines before and after promotion.
This package provides exactly that: liveness-based interference graph
construction and Chaitin-Briggs-style coloring.
"""

from repro.regalloc.coloring import ColoringResult, color_graph, colors_needed
from repro.regalloc.interference import InterferenceGraph, build_interference_graph

__all__ = [
    "ColoringResult",
    "InterferenceGraph",
    "build_interference_graph",
    "color_graph",
    "colors_needed",
]
