"""Graph coloring in the Chaitin-Briggs style.

``colors_needed`` answers Table 3's question: the smallest k for which
Briggs-style optimistic simplification colors the interference graph
without a (potential) spill.  This is a heuristic chromatic number — the
same quantity a production allocator's "colors needed" report gives —
computed by binary search over k.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from repro.ir.values import VReg
from repro.regalloc.interference import InterferenceGraph


class ColoringResult:
    def __init__(self, k: int) -> None:
        self.k = k
        self.assignment: Dict[VReg, int] = {}
        self.spilled: List[VReg] = []

    @property
    def colorable(self) -> bool:
        return not self.spilled

    @property
    def colors_used(self) -> int:
        return len(set(self.assignment.values())) if self.assignment else 0


def color_graph(graph: InterferenceGraph, k: int) -> ColoringResult:
    """Briggs optimistic coloring with k colors.

    Simplify nodes of degree < k first; when stuck, optimistically push a
    maximum-degree node (it may still color).  Nodes that fail to color
    during select are reported as spilled.
    """
    result = ColoringResult(k)
    degrees = {node: graph.degree(node) for node in graph.nodes}
    removed: Set[VReg] = set()
    stack: List[VReg] = []

    remaining = list(graph.nodes)
    while remaining:
        candidate: Optional[VReg] = None
        for node in remaining:
            if degrees[node] < k:
                candidate = node
                break
        if candidate is None:
            # Optimistic spill candidate: highest current degree.
            candidate = max(remaining, key=lambda n: degrees[n])
        stack.append(candidate)
        removed.add(candidate)
        remaining.remove(candidate)
        for neighbor in graph.neighbors(candidate):
            if neighbor not in removed:
                degrees[neighbor] -= 1

    while stack:
        node = stack.pop()
        taken = {
            result.assignment[n]
            for n in graph.neighbors(node)
            if n in result.assignment
        }
        color = next((c for c in range(k) if c not in taken), None)
        if color is None:
            result.spilled.append(node)
        else:
            result.assignment[node] = color
    return result


def colors_needed(graph: InterferenceGraph) -> int:
    """Smallest k that colors the graph without spills (Table 3's
    metric).  Binary search between 1 and max degree + 1."""
    if len(graph) == 0:
        return 0
    lo, hi = 1, max(graph.degree(n) for n in graph.nodes) + 1
    while lo < hi:
        mid = (lo + hi) // 2
        if color_graph(graph, mid).colorable:
            hi = mid
        else:
            lo = mid + 1
    return lo
