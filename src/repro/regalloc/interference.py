"""Register interference graphs.

Two virtual registers interfere when one is live at a definition point of
the other (the classic Chaitin construction, walking each block backward
from its live-out set).  Phis are handled SSA-style: incoming values are
live out of the corresponding predecessors, and all phi targets of a
block are defined in parallel at its top.  The builder also works on
post-phi-elimination code, where copies make interference explicit.
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.ir import instructions as I
from repro.ir.function import Function
from repro.ir.values import VReg
from repro.parallel import cache as analysis_cache


class InterferenceGraph:
    def __init__(self) -> None:
        self.nodes: List[VReg] = []
        self._adj: Dict[VReg, Set[VReg]] = {}

    def add_node(self, reg: VReg) -> None:
        if reg not in self._adj:
            self._adj[reg] = set()
            self.nodes.append(reg)

    def add_edge(self, a: VReg, b: VReg) -> None:
        if a is b:
            return
        self.add_node(a)
        self.add_node(b)
        self._adj[a].add(b)
        self._adj[b].add(a)

    def neighbors(self, reg: VReg) -> Set[VReg]:
        return self._adj.get(reg, set())

    def degree(self, reg: VReg) -> int:
        return len(self._adj.get(reg, ()))

    def interferes(self, a: VReg, b: VReg) -> bool:
        return b in self._adj.get(a, ())

    @property
    def edge_count(self) -> int:
        return sum(len(s) for s in self._adj.values()) // 2

    def __len__(self) -> int:
        return len(self.nodes)


def build_interference_graph(function: Function) -> InterferenceGraph:
    graph = InterferenceGraph()
    liveness = analysis_cache.liveness(function)

    for param in function.params:
        graph.add_node(param)
    for inst in function.instructions():
        if inst.dst is not None:
            graph.add_node(inst.dst)

    for block in function.blocks:
        live: Set[VReg] = set(liveness.live_out[block])
        body = [i for i in block.instructions if not isinstance(i, I.Phi)]
        for inst in reversed(body):
            if inst.dst is not None:
                # A copy's source does not interfere with its target
                # (classic coalescing-friendly refinement).
                exempt = (
                    inst.src
                    if isinstance(inst, I.Copy) and isinstance(inst.src, VReg)
                    else None
                )
                for other in live:
                    if other is not inst.dst and other is not exempt:
                        graph.add_edge(inst.dst, other)
                live.discard(inst.dst)
            for op in inst.operands:
                if isinstance(op, VReg):
                    live.add(op)
        # Phi targets are defined in parallel at the block top: they
        # interfere with each other and with everything live there.
        phis = list(block.phis())
        targets = [p.dst for p in phis]
        for i, a in enumerate(targets):
            for b in targets[i + 1:]:
                graph.add_edge(a, b)
            for other in live:
                if other is not a:
                    graph.add_edge(a, other)
    return graph
