"""Transactional-pipeline machinery: snapshots, rollback, divergence
bisection, structured diagnostics, and fault injection.

The promotion pipeline must degrade gracefully on a production-scale
module: promote what it can, roll back what it cannot, and explain why.
This package supplies the pieces:

``snapshot``
    Deep-clone snapshots of one function's IR that can be restored into
    the original :class:`~repro.ir.function.Function` object, so every
    promotion is a transaction.

``diagnostics``
    Structured per-function outcomes (promoted / rolled_back / skipped),
    timings, warnings, and a bisection report — serializable to JSON and
    surfaced on :class:`~repro.promotion.pipeline.PipelineResult`.

``bisect``
    Delta-debugging over the set of transformed functions: when the
    post-promotion re-execution diverges, isolate a minimal culprit set
    and roll only those back.

``faults``
    A :class:`FaultInjector` that deliberately corrupts IR (one method
    per corruption class), an :class:`UnsoundAliasModel` wrapper, and
    :class:`ChaosConfig` — seeded worker-level chaos (crash, hang,
    transient exception) for exercising the resilient executor
    end-to-end.

``executor`` / ``retry`` / ``quarantine``
    The resilient promotion executor: per-function wall-clock deadlines
    with a worker-heartbeat watchdog, bounded retry with seeded
    exponential backoff (:class:`RetryPolicy`), broken-pool rebuild and
    resubmission, and a poison-function :class:`Quarantine` that
    degrades repeat offenders to their original unpromoted IR instead
    of failing the module.  Enabled via
    ``PromotionPipeline(resilience=ResilienceOptions(...))``.
"""

from repro.robustness.bisect import isolate_culprits
from repro.robustness.diagnostics import (
    BisectionReport,
    FunctionOutcome,
    PipelineDiagnostics,
)
from repro.robustness.executor import (
    ExecutorReport,
    ResilienceOptions,
    ResilientExecutor,
    ResilientExecutorError,
    ResilientOutcome,
)
from repro.robustness.faults import (
    ChaosConfig,
    FaultInjector,
    TransientFaultError,
    UnsoundAliasModel,
)
from repro.robustness.quarantine import Quarantine, QuarantineEntry
from repro.robustness.retry import (
    AttemptHistory,
    AttemptRecord,
    RetryPolicy,
    TRANSIENT_ERROR_TYPES,
)
from repro.robustness.snapshot import (
    FunctionSnapshot,
    FunctionState,
    capture_state,
    snapshot_function,
)

__all__ = [
    "AttemptHistory",
    "AttemptRecord",
    "BisectionReport",
    "ChaosConfig",
    "ExecutorReport",
    "FaultInjector",
    "FunctionOutcome",
    "FunctionSnapshot",
    "FunctionState",
    "PipelineDiagnostics",
    "Quarantine",
    "QuarantineEntry",
    "ResilienceOptions",
    "ResilientExecutor",
    "ResilientExecutorError",
    "ResilientOutcome",
    "RetryPolicy",
    "TRANSIENT_ERROR_TYPES",
    "TransientFaultError",
    "UnsoundAliasModel",
    "capture_state",
    "isolate_culprits",
    "snapshot_function",
]
