"""Transactional-pipeline machinery: snapshots, rollback, divergence
bisection, structured diagnostics, and fault injection.

The promotion pipeline must degrade gracefully on a production-scale
module: promote what it can, roll back what it cannot, and explain why.
This package supplies the pieces:

``snapshot``
    Deep-clone snapshots of one function's IR that can be restored into
    the original :class:`~repro.ir.function.Function` object, so every
    promotion is a transaction.

``diagnostics``
    Structured per-function outcomes (promoted / rolled_back / skipped),
    timings, warnings, and a bisection report — serializable to JSON and
    surfaced on :class:`~repro.promotion.pipeline.PipelineResult`.

``bisect``
    Delta-debugging over the set of transformed functions: when the
    post-promotion re-execution diverges, isolate a minimal culprit set
    and roll only those back.

``faults``
    A :class:`FaultInjector` that deliberately corrupts IR (one method
    per corruption class) and an :class:`UnsoundAliasModel` wrapper,
    used by tests to prove the verifier catches each corruption and the
    pipeline recovers instead of crashing.
"""

from repro.robustness.bisect import isolate_culprits
from repro.robustness.diagnostics import (
    BisectionReport,
    FunctionOutcome,
    PipelineDiagnostics,
)
from repro.robustness.faults import FaultInjector, UnsoundAliasModel
from repro.robustness.snapshot import (
    FunctionSnapshot,
    FunctionState,
    capture_state,
    snapshot_function,
)

__all__ = [
    "BisectionReport",
    "FaultInjector",
    "FunctionOutcome",
    "FunctionSnapshot",
    "FunctionState",
    "PipelineDiagnostics",
    "UnsoundAliasModel",
    "capture_state",
    "isolate_culprits",
    "snapshot_function",
]
