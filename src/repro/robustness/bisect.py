"""Divergence bisection: isolate the functions whose transformation broke
behaviour.

The pipeline's re-execution oracle compares observable behaviour before
and after promotion.  When it diverges, the culprit is some subset of the
transformed functions; re-running the program is cheap, so delta-debug:
repeatedly binary-search the shortest rollback prefix that restores
behaviour, implicating one function per round.  With ``k`` culprits among
``n`` candidates this costs ``O(k log n)`` re-executions instead of the
``O(n)`` of one-at-a-time rollback.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple


def isolate_culprits(
    candidates: Sequence[str],
    diverges: Callable[[List[str]], bool],
    max_tests: int = 256,
) -> Tuple[List[str], int, bool]:
    """Find a minimal-ish culprit set among ``candidates``.

    ``diverges(kept)`` must install exactly the functions in ``kept`` in
    their transformed form (everything else rolled back), re-execute, and
    report whether behaviour still diverges.  Rolling back every
    candidate is expected to restore behaviour (``diverges([]) ==
    False``); if it does not, every candidate is returned and the
    ``resolved`` flag is False.

    Returns ``(culprits, tests_run, resolved)``.
    """
    candidates = list(candidates)
    tests_run = 0
    culprits: List[str] = []

    def check(kept: List[str]) -> bool:
        nonlocal tests_run
        if tests_run >= max_tests:
            raise _BudgetExhausted
        tests_run += 1
        return diverges(kept)

    try:
        while True:
            kept = [c for c in candidates if c not in culprits]
            if not kept:
                # Every candidate was implicated; a full rollback must be
                # verified explicitly — the binary search only assumes it.
                return culprits, tests_run, not check([])
            if not check(kept):
                return culprits, tests_run, True
            # At least one culprit remains in `kept`.  f(k) := diverges
            # with the first k of `kept` rolled back; f(0) is True (just
            # checked) and f(len) is False (full rollback restores
            # behaviour), so binary-search the smallest k with f(k) False
            # — the k-th element (kept[k-1]) is the one whose rollback
            # flipped the outcome.
            lo, hi = 0, len(kept)
            while hi - lo > 1:
                mid = (lo + hi) // 2
                if check(kept[mid:]):
                    lo = mid
                else:
                    hi = mid
            culprits.append(kept[hi - 1])
    except _BudgetExhausted:
        return culprits, tests_run, False


class _BudgetExhausted(Exception):
    """Internal: the re-execution budget ran out mid-search."""
