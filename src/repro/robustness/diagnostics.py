"""Structured pipeline diagnostics.

Every function the pipeline touches gets a :class:`FunctionOutcome`
(promoted / rolled_back / skipped / quarantined) with the pass stage,
the reason, and the time spent.  :class:`PipelineDiagnostics` aggregates
outcomes, free-form warnings, the divergence-bisection report, and —
when the resilient executor ran — per-function attempt histories, the
structured parallel-fallback reason, and the executor's retry/timeout/
crash/quarantine counters, and serializes the lot to JSON for the
``--diagnostics`` CLI flag and bench logs.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence


class FunctionOutcome:
    """What happened to one function during a pipeline run."""

    PROMOTED = "promoted"
    ROLLED_BACK = "rolled_back"
    SKIPPED = "skipped"
    QUARANTINED = "quarantined"

    def __init__(
        self,
        name: str,
        status: str,
        stage: Optional[str] = None,
        reason: Optional[str] = None,
        error_type: Optional[str] = None,
        duration_ms: float = 0.0,
        webs_promoted: int = 0,
        attempts: int = 0,
    ) -> None:
        self.name = name
        self.status = status
        #: Pipeline stage the outcome was decided in: ``prepare``,
        #: ``memssa``, ``promote``, ``cleanup``, ``verify``,
        #: ``re-execution``, or ``chaos`` (an injected worker fault).
        self.stage = stage
        self.reason = reason
        self.error_type = error_type
        self.duration_ms = duration_ms
        self.webs_promoted = webs_promoted
        #: Executor attempts this outcome consumed (0 when the resilient
        #: executor did not run).
        self.attempts = attempts

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "status": self.status,
            "stage": self.stage,
            "reason": self.reason,
            "error_type": self.error_type,
            "duration_ms": round(self.duration_ms, 3),
            "webs_promoted": self.webs_promoted,
            "attempts": self.attempts,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FunctionOutcome({self.name!r}, {self.status}, stage={self.stage})"


class BisectionReport:
    """How divergence bisection went: candidates, culprits, cost."""

    def __init__(
        self,
        candidates: Sequence[str],
        culprits: Sequence[str],
        tests_run: int,
        resolved: bool,
    ) -> None:
        self.candidates = list(candidates)
        self.culprits = list(culprits)
        self.tests_run = tests_run
        #: False when behaviour still diverged with every candidate
        #: rolled back (the divergence is not promotion's fault).
        self.resolved = resolved

    def as_dict(self) -> Dict[str, object]:
        return {
            "candidates": self.candidates,
            "culprits": self.culprits,
            "tests_run": self.tests_run,
            "resolved": self.resolved,
        }


class PipelineDiagnostics:
    """Aggregated per-run diagnostics, attached to ``PipelineResult``."""

    def __init__(self) -> None:
        self.outcomes: Dict[str, FunctionOutcome] = {}
        self.warnings: List[str] = []
        self.bisection: Optional[BisectionReport] = None
        #: Where block frequencies came from: ``interpreter`` (profiling
        #: run completed), ``estimator`` (interpreter not used or entry
        #: missing), or ``estimator-fallback`` (the profiling run hit the
        #: interpreter step limit and the pipeline fell back).
        self.profile_source: Optional[str] = None
        #: Structured cause of a parallel-to-serial fallback
        #: (``{"error_type", "detail", "function"}``), ``None`` when the
        #: pool ran fine or was never requested.
        self.fallback_reason: Optional[Dict[str, Optional[str]]] = None
        #: Per-function attempt histories from the resilient executor
        #: (name -> ``AttemptHistory.as_dict()``); empty otherwise.
        self.attempt_histories: Dict[str, Dict[str, object]] = {}
        #: The resilient executor's counters (retries, timeouts,
        #: worker_crashes, transient_faults, pool_rebuilds, quarantined)
        #: plus its configuration; ``None`` when it did not run.
        self.resilience: Optional[Dict[str, object]] = None
        #: Versioned observability section (``{"version", "profile_source",
        #: "config", "spans", "metrics"}``) written at the end of an
        #: *observed* run; stays ``None`` when tracing is disabled so a
        #: disabled run's diagnostics are byte-identical to pre-layer ones.
        self.observability: Optional[Dict[str, object]] = None
        #: The decision-journal roll-up (``DecisionJournal.summary()``)
        #: when journaling ran; ``None`` keeps a journal-off run's
        #: diagnostics byte-identical to pre-journal ones.
        self.decisions: Optional[Dict[str, object]] = None

    # -- recording -------------------------------------------------------

    def record(self, outcome: FunctionOutcome) -> FunctionOutcome:
        self.outcomes[outcome.name] = outcome
        return outcome

    def record_promoted(
        self, name: str, duration_ms: float = 0.0, webs_promoted: int = 0
    ) -> FunctionOutcome:
        return self.record(
            FunctionOutcome(
                name,
                FunctionOutcome.PROMOTED,
                duration_ms=duration_ms,
                webs_promoted=webs_promoted,
            )
        )

    def record_rollback(
        self,
        name: str,
        stage: str,
        error: Optional[BaseException] = None,
        reason: Optional[str] = None,
        duration_ms: float = 0.0,
        error_type: Optional[str] = None,
    ) -> FunctionOutcome:
        # ``error_type`` overrides for failures that crossed a process
        # boundary, where only the exception's name survived the trip.
        return self.record(
            FunctionOutcome(
                name,
                FunctionOutcome.ROLLED_BACK,
                stage=stage,
                reason=reason or _first_line(error),
                error_type=error_type
                or (type(error).__name__ if error is not None else None),
                duration_ms=duration_ms,
            )
        )

    def record_skip(
        self,
        name: str,
        stage: str,
        error: Optional[BaseException] = None,
        reason: Optional[str] = None,
        duration_ms: float = 0.0,
    ) -> FunctionOutcome:
        return self.record(
            FunctionOutcome(
                name,
                FunctionOutcome.SKIPPED,
                stage=stage,
                reason=reason or _first_line(error),
                error_type=type(error).__name__ if error is not None else None,
                duration_ms=duration_ms,
            )
        )

    def record_quarantine(
        self,
        name: str,
        reason: Optional[str] = None,
        error_type: Optional[str] = None,
        stage: Optional[str] = None,
        duration_ms: float = 0.0,
        attempts: int = 0,
    ) -> FunctionOutcome:
        return self.record(
            FunctionOutcome(
                name,
                FunctionOutcome.QUARANTINED,
                stage=stage,
                reason=reason,
                error_type=error_type,
                duration_ms=duration_ms,
                attempts=attempts,
            )
        )

    def warn(self, message: str) -> None:
        self.warnings.append(message)

    # -- queries ---------------------------------------------------------

    def _named(self, status: str) -> List[str]:
        return [o.name for o in self.outcomes.values() if o.status == status]

    @property
    def promoted_functions(self) -> List[str]:
        return self._named(FunctionOutcome.PROMOTED)

    @property
    def rolled_back_functions(self) -> List[str]:
        return self._named(FunctionOutcome.ROLLED_BACK)

    @property
    def skipped_functions(self) -> List[str]:
        return self._named(FunctionOutcome.SKIPPED)

    @property
    def quarantined_functions(self) -> List[str]:
        return self._named(FunctionOutcome.QUARANTINED)

    @property
    def clean(self) -> bool:
        """True when nothing was rolled back, skipped, or quarantined
        (``--strict``)."""
        return (
            not self.rolled_back_functions
            and not self.skipped_functions
            and not self.quarantined_functions
        )

    @property
    def degraded(self) -> bool:
        """True when the run completed only by degrading: a function was
        quarantined, the parallel layer fell back to serial, or the
        resilient executor had to retry/rebuild (the CLI's exit code 3)."""
        if self.quarantined_functions or self.fallback_reason is not None:
            return True
        if self.resilience is None:
            return False
        return bool(
            self.resilience.get("retries")
            or self.resilience.get("timeouts")
            or self.resilience.get("worker_crashes")
            or self.resilience.get("transient_faults")
            or self.resilience.get("pool_rebuilds")
            or self.resilience.get("quarantined")
        )

    def summary(self) -> str:
        text = (
            f"{len(self.promoted_functions)} promoted, "
            f"{len(self.rolled_back_functions)} rolled back, "
            f"{len(self.skipped_functions)} skipped"
        )
        if self.quarantined_functions:
            text += f", {len(self.quarantined_functions)} quarantined"
        return text

    # -- serialization ---------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        return {
            "summary": self.summary(),
            "profile_source": self.profile_source,
            "functions": [o.as_dict() for o in self.outcomes.values()],
            "warnings": list(self.warnings),
            "bisection": self.bisection.as_dict() if self.bisection else None,
            "fallback_reason": dict(self.fallback_reason)
            if self.fallback_reason
            else None,
            "attempt_histories": dict(self.attempt_histories),
            "resilience": dict(self.resilience) if self.resilience else None,
            "observability": dict(self.observability) if self.observability else None,
            "decisions": dict(self.decisions) if self.decisions else None,
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.as_dict(), indent=indent)

    def write(self, path: str) -> None:
        from repro.observability.export import atomic_write_text

        atomic_write_text(path, self.to_json() + "\n")


def _first_line(error: Optional[BaseException]) -> Optional[str]:
    if error is None:
        return None
    text = str(error) or type(error).__name__
    return text.splitlines()[0]
