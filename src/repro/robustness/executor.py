"""The resilient promotion executor.

Wraps the shared-nothing scheduler's worker pool with the machinery a
production promotion service needs when workers misbehave:

* **Deadlines.**  Each function attempt gets a wall-clock budget.  A
  worker heartbeat (written to a manager-hosted scoreboard at task
  start, with the current pass stage) lets the parent watchdog tell
  "still queued" from "started and hung"; a hung attempt gets the pool
  torn down — ``Future.result(timeout=)`` alone cannot unstick a worker
  that is asleep inside a task — and only incomplete functions are
  resubmitted to the rebuilt pool.

* **Retry with backoff.**  Transient failures (injected chaos, broken
  pipes, timeouts, worker crashes) are retried up to the attempt budget
  with capped-exponential, seed-jittered delays
  (:class:`~repro.robustness.retry.RetryPolicy`).  Deterministic
  failures — verification errors, promotion bugs — keep the serial
  path's semantics: one attempt, rolled back, never retried.

* **Crash recovery.**  A dead worker breaks the whole
  ``ProcessPoolExecutor``.  The executor rebuilds the warm pool
  (:meth:`repro.parallel.pool.WarmPool.rebuild` — the same recovery
  path the plain scheduler uses), attributes the crash to the task the
  dead process had claimed on the scoreboard (innocent workers are
  terminated with SIGTERM by the pool and are *not* penalized), and
  resubmits everything incomplete.  Rebuilt workers re-synchronize from
  the pool's published epoch board, so recovery does not re-broadcast
  the module.

* **Quarantine.**  A function still failing when its attempts run out
  degrades to the IR it had before promotion — soundness-preserving by
  construction, because promotion is an optimization — and the module
  completes with the poison function named in the diagnostics.

Per-function attempt histories, the quarantine register, and executor
counters (retries, timeouts, crashes, rebuilds) are returned alongside
the outcomes so the pipeline can thread them into
:class:`~repro.robustness.diagnostics.PipelineDiagnostics`.
"""

from __future__ import annotations

import os
import pickle
import signal
import time
from concurrent.futures import FIRST_COMPLETED, wait
from concurrent.futures import CancelledError
from concurrent.futures.process import BrokenProcessPool
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

from repro.robustness.faults import ChaosConfig
from repro.robustness.quarantine import Quarantine, QuarantineEntry
from repro.robustness.retry import AttemptHistory, AttemptRecord, RetryPolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle: parallel -> snapshot
    from repro.parallel import scheduler
    from repro.parallel.cache import CacheStats
    from repro.parallel.transport import FunctionPayload


class ResilientExecutorError(RuntimeError):
    """The pool never made progress; callers should fall back to serial."""


class ResilienceOptions:
    """Knobs for the resilient executor (the CLI's ``--timeout``,
    ``--retries``, and ``--chaos`` map straight onto these)."""

    def __init__(
        self,
        timeout_s: Optional[float] = None,
        retries: int = 2,
        backoff_base_s: float = 0.05,
        backoff_max_s: float = 2.0,
        seed: int = 0,
        chaos: Optional[ChaosConfig] = None,
        poll_interval_s: float = 0.05,
    ) -> None:
        if timeout_s is not None and timeout_s <= 0:
            raise ValueError(f"timeout_s must be > 0, got {timeout_s}")
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.timeout_s = timeout_s
        self.retries = retries
        self.retry_policy = RetryPolicy(
            max_attempts=retries + 1,
            backoff_base_s=backoff_base_s,
            backoff_max_s=backoff_max_s,
            seed=seed,
        )
        self.seed = seed
        self.chaos = chaos
        self.poll_interval_s = poll_interval_s

    @property
    def max_attempts(self) -> int:
        return self.retry_policy.max_attempts

    def as_dict(self) -> Dict[str, object]:
        return {
            "timeout_s": self.timeout_s,
            "retries": self.retries,
            "seed": self.seed,
            "backoff": self.retry_policy.as_dict(),
            "chaos": self.chaos.as_dict() if self.chaos is not None else None,
        }


class ResilientOutcome:
    """What the executor concluded for one function."""

    PROMOTED = "promoted"
    ROLLED_BACK = "rolled_back"
    QUARANTINED = "quarantined"

    def __init__(
        self,
        name: str,
        status: str,
        stage: Optional[str] = None,
        error_type: Optional[str] = None,
        reason: Optional[str] = None,
        duration_ms: float = 0.0,
        stats: Optional[Dict[str, int]] = None,
        payload: Optional[FunctionPayload] = None,
        cache_stats: Optional[CacheStats] = None,
        history: Optional[AttemptHistory] = None,
        quarantine: Optional[QuarantineEntry] = None,
        spans: Optional[List[Dict[str, object]]] = None,
        metrics: Optional[Dict[str, Dict[str, object]]] = None,
        decisions: Optional[Dict[str, object]] = None,
    ) -> None:
        self.name = name
        self.status = status
        self.stage = stage
        self.error_type = error_type
        self.reason = reason
        self.duration_ms = duration_ms
        self.stats = stats
        self.payload = payload
        self.cache_stats = cache_stats
        self.history = history or AttemptHistory(name)
        self.quarantine = quarantine
        #: Worker span records / metrics snapshot / decision document
        #: from the *final* attempt (earlier attempts are reconstructed
        #: from ``history``); ``None`` when the corresponding layer was
        #: off or no attempt ran to completion.
        self.spans = spans
        self.metrics = metrics
        self.decisions = decisions


class ExecutorReport:
    """Aggregate counters for one executor run."""

    def __init__(self) -> None:
        self.retries = 0
        self.timeouts = 0
        self.worker_crashes = 0
        self.transient_faults = 0
        self.pool_rebuilds = 0
        self.quarantined: List[str] = []

    @property
    def degraded(self) -> bool:
        """True when any resilience machinery had to engage."""
        return bool(
            self.retries
            or self.timeouts
            or self.worker_crashes
            or self.transient_faults
            or self.pool_rebuilds
            or self.quarantined
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "retries": self.retries,
            "timeouts": self.timeouts,
            "worker_crashes": self.worker_crashes,
            "transient_faults": self.transient_faults,
            "pool_rebuilds": self.pool_rebuilds,
            "quarantined": list(self.quarantined),
        }


# -- worker side ----------------------------------------------------------

#: Executor-specific worker state (the heartbeat/claim scoreboard the
#: current task registered), alongside the scheduler's ``_WORKER_STATE``.
_EXEC_STATE: Dict[str, object] = {}


def _record_stage(name: str, stage: str) -> None:
    board = _EXEC_STATE.get("board")
    if board is not None:
        try:
            board[f"stage:{name}"] = stage
        except Exception:
            # A dying manager must never take the worker down with it.
            pass


def _resilient_promote_one(
    epoch_board, scoreboard, ir_key: str, meta_key: str, name: str, attempt: int
) -> Tuple[int, "scheduler.FunctionResult"]:
    """One attempt at one function: heartbeat, claim, sync, chaos, promote.

    Runs on a warm-pool worker: the epoch sync is a no-op when the
    worker already holds the published module, and the chaos config
    rides the epoch's meta blob (``extras``), so a rebuilt worker picks
    everything back up from the board on its first task.
    """
    from repro.parallel import scheduler
    from repro.parallel.pool import _sync_worker

    board = scoreboard
    pid = os.getpid()
    if board is not None:
        try:
            board[f"hb:{name}"] = time.time()
            board[f"claim:{pid}"] = name
        except Exception:
            board = None
    _EXEC_STATE["board"] = board
    if board is not None:
        scheduler._STAGE_OBSERVER = _record_stage
    chaos = None
    try:
        _sync_worker(epoch_board, ir_key, meta_key)
        state = scheduler._WORKER_STATE or {}
        chaos = (state.get("extras") or {}).get("chaos")
        if chaos is not None:
            chaos.inject(name, attempt)  # may crash, hang, or raise
        result = scheduler._promote_one(name)
    except Exception as exc:
        text = (str(exc) or type(exc).__name__).splitlines()[0]
        result = scheduler.FunctionResult(
            name,
            scheduler.FunctionResult.ROLLED_BACK,
            stage="chaos" if chaos is not None else "worker",
            error_type=type(exc).__name__,
            reason=text,
        )
    finally:
        if board is not None:
            try:
                board[f"claim:{pid}"] = None
            except Exception:
                pass
    return attempt, result


# -- parent side ----------------------------------------------------------


class _FunctionState:
    """Parent-side retry bookkeeping for one function."""

    __slots__ = ("name", "attempts", "eligible_at", "history")

    def __init__(self, name: str) -> None:
        self.name = name
        self.attempts = 0
        #: Monotonic time before which the next attempt must not start.
        self.eligible_at = 0.0
        self.history = AttemptHistory(name)


class _RebuildPool(Exception):
    """Internal: the current pool must be torn down and rebuilt."""


class ResilientExecutor:
    """Drives phases 3+4 over a worker pool that is allowed to fail.

    The public entry point is :meth:`run`, which returns one
    :class:`ResilientOutcome` per function **in the submitted order**
    (so the pipeline's module-order merge stays deterministic) plus an
    :class:`ExecutorReport`.
    """

    def __init__(
        self,
        module,
        names: Sequence[str],
        profile,
        options,
        alias_model_factory: Callable,
        verify: bool,
        jobs: int,
        use_cache: bool,
        resilience: ResilienceOptions,
        observe: bool = False,
        pool=None,
        extras: Optional[Dict[str, object]] = None,
    ) -> None:
        from repro.parallel.transport import export_profile

        self.names = list(names)
        self.jobs = jobs
        self.resilience = resilience
        self.quarantine = Quarantine(resilience.max_attempts)
        self.report = ExecutorReport()
        self._module = module
        self._pool = pool
        self._profile_map = export_profile(profile, module)
        # Chaos rides the meta extras; caller extras (decision journaling,
        # a distributed trace id) merge alongside it.
        worker_extras: Dict[str, object] = dict(extras or {})
        worker_extras["chaos"] = resilience.chaos
        self._meta = {
            "profile_map": self._profile_map,
            "options": options,
            "alias_model_factory": alias_model_factory,
            "verify": verify,
            "use_cache": use_cache,
            "observe": observe,
            "extras": worker_extras,
        }
        self._ir_key: Optional[str] = None
        self._meta_key: Optional[str] = None

    def run(self) -> Tuple[List[ResilientOutcome], ExecutorReport]:
        from repro.parallel.pool import publish_epoch, warm_pool

        pool = self._pool if self._pool is not None else warm_pool(self.jobs)
        states = {name: _FunctionState(name) for name in self.names}
        outcomes: Dict[str, ResilientOutcome] = {}
        with pool.lock:
            pool.runs += 1
            try:
                meta_blob = pickle.dumps(
                    self._meta, protocol=pickle.HIGHEST_PROTOCOL
                )
                self._ir_key, self._meta_key, _, _ = publish_epoch(
                    pool, self._module, meta_blob
                )
                epoch_board = pool.board()
            except Exception as exc:
                detail = (str(exc) or type(exc).__name__).splitlines()[0]
                raise ResilientExecutorError(
                    "cannot publish the module to the worker pool "
                    f"({type(exc).__name__}: {detail}); falling back to "
                    "serial execution"
                ) from exc
            try:
                # The heartbeat/claim scoreboard lives on the pool's
                # manager, so it shares the pool's lifetime.
                board = pool.shared_dict()
            except Exception:
                board = None  # degrade: no hang watchdog, coarse attribution
            stalled_rounds = 0
            while len(outcomes) < len(self.names):
                progressed = self._round(pool, states, outcomes, epoch_board, board)
                if progressed:
                    stalled_rounds = 0
                    continue
                stalled_rounds += 1
                if stalled_rounds >= 2:
                    raise ResilientExecutorError(
                        "worker pool failed repeatedly without completing "
                        "any function; falling back to serial execution"
                    )
        return [outcomes[name] for name in self.names], self.report

    # -- one pool lifetime -----------------------------------------------

    def _round(
        self,
        pool,
        states: Dict[str, _FunctionState],
        outcomes: Dict[str, ResilientOutcome],
        epoch_board,
        board,
    ) -> bool:
        """Drive the warm pool until every function resolves or the pool
        must be rebuilt (hang or crash).  Returns True when any function
        resolved.  A clean round leaves the pool warm; a rebuild hands
        back fresh workers that resync from the epoch board."""
        resolved_before = len(outcomes)
        submitted: Dict[str, object] = {}
        procs: Dict[int, object] = {}
        rebuild = False
        try:
            while True:
                open_names = [n for n in self.names if n not in outcomes]
                if not open_names:
                    break
                now_mono = time.monotonic()
                for name in open_names:
                    state = states[name]
                    if name in submitted or state.eligible_at > now_mono:
                        continue
                    self._clear_board(board, name)
                    try:
                        future = pool.submit(
                            _resilient_promote_one,
                            epoch_board,
                            board,
                            self._ir_key,
                            self._meta_key,
                            name,
                            state.attempts + 1,
                        )
                    except BrokenProcessPool:
                        raise _RebuildPool()
                    submitted[name] = future
                # The pool's worker processes spawn lazily; keep the
                # freshest pid -> Process view for crash attribution.
                procs.update(pool.processes())
                if not submitted:
                    pause = min(
                        states[n].eligible_at for n in open_names
                    ) - time.monotonic()
                    time.sleep(max(0.0, min(pause, self.resilience.poll_interval_s)))
                    continue
                done, _ = wait(
                    list(submitted.values()),
                    timeout=self.resilience.poll_interval_s,
                    return_when=FIRST_COMPLETED,
                )
                by_future = {future: name for name, future in submitted.items()}
                broken = False
                for future in done:
                    name = by_future[future]
                    del submitted[name]
                    try:
                        _, result = future.result()
                    except BrokenProcessPool:
                        broken = True
                        continue
                    except CancelledError:
                        continue  # resubmitted next iteration
                    except Exception as exc:
                        # Result transport failed (e.g. unpicklable
                        # payload); retryable infrastructure fault.
                        self._register_failure(
                            states[name],
                            outcomes,
                            AttemptRecord.TRANSIENT,
                            error_type=type(exc).__name__,
                            reason=(str(exc) or type(exc).__name__).splitlines()[0],
                        )
                        continue
                    self._absorb(states[name], result, outcomes)
                if broken:
                    self._attribute_crash(states, outcomes, submitted, board, procs)
                    raise _RebuildPool()
                hung = self._find_hung(submitted, outcomes, board)
                if hung:
                    for name in hung:
                        stage = None
                        if board is not None:
                            stage = board.get(f"stage:{name}")
                        self._register_failure(
                            states[name],
                            outcomes,
                            AttemptRecord.TIMEOUT,
                            error_type="TimeoutError",
                            reason=(
                                f"exceeded {self.resilience.timeout_s}s deadline"
                                + (f" in stage {stage}" if stage else "")
                            ),
                        )
                    raise _RebuildPool()
        except _RebuildPool:
            self.report.pool_rebuilds += 1
            rebuild = True
        finally:
            if rebuild:
                # One recovery path for crashes and hangs alike: kill
                # the workers, keep the board; the replacement workers
                # resync lazily on their first task.
                pool.rebuild(kill=True)
        return len(outcomes) > resolved_before

    # -- outcome accounting ----------------------------------------------

    def _absorb(
        self,
        state: _FunctionState,
        result: "scheduler.FunctionResult",
        outcomes: Dict[str, ResilientOutcome],
    ) -> None:
        from repro.parallel import scheduler

        name = state.name
        if result.status == scheduler.FunctionResult.PROMOTED:
            state.attempts += 1
            state.history.add(
                AttemptRecord(
                    state.attempts,
                    AttemptRecord.PROMOTED,
                    duration_ms=result.duration_ms,
                )
            )
            outcomes[name] = ResilientOutcome(
                name,
                ResilientOutcome.PROMOTED,
                duration_ms=result.duration_ms,
                stats=result.stats,
                payload=result.payload,
                cache_stats=result.cache_stats,
                history=state.history,
                spans=result.spans,
                metrics=result.metrics,
                decisions=result.decisions,
            )
            return
        if self.resilience.retry_policy.is_transient(result.error_type):
            self._register_failure(
                state,
                outcomes,
                AttemptRecord.TRANSIENT,
                error_type=result.error_type,
                reason=result.reason,
                stage=result.stage,
                duration_ms=result.duration_ms,
            )
            return
        # Deterministic failure: keep the serial transaction semantics —
        # one attempt, rolled back, never retried.
        state.attempts += 1
        state.history.add(
            AttemptRecord(
                state.attempts,
                AttemptRecord.ROLLED_BACK,
                error_type=result.error_type,
                reason=result.reason,
                duration_ms=result.duration_ms,
            )
        )
        outcomes[name] = ResilientOutcome(
            name,
            ResilientOutcome.ROLLED_BACK,
            stage=result.stage,
            error_type=result.error_type,
            reason=result.reason,
            duration_ms=result.duration_ms,
            cache_stats=result.cache_stats,
            history=state.history,
            spans=result.spans,
            metrics=result.metrics,
            decisions=result.decisions,
        )

    def _register_failure(
        self,
        state: _FunctionState,
        outcomes: Dict[str, ResilientOutcome],
        kind: str,
        error_type: Optional[str],
        reason: Optional[str],
        stage: Optional[str] = None,
        duration_ms: float = 0.0,
    ) -> None:
        """Record one transient-class failed attempt: schedule a backoff
        retry, or quarantine when the budget is exhausted."""
        from repro.observability import flightrecorder

        name = state.name
        state.attempts += 1
        counter = {
            AttemptRecord.TIMEOUT: "timeouts",
            AttemptRecord.WORKER_CRASH: "worker_crashes",
            AttemptRecord.TRANSIENT: "transient_faults",
        }[kind]
        setattr(self.report, counter, getattr(self.report, counter) + 1)
        flightrecorder.ambient().record(
            "executor.attempt_failed",
            function=name,
            attempt=state.attempts,
            outcome=kind,
            error_type=error_type,
            reason=reason,
            stage=stage,
        )
        if self.quarantine.exhausted(state.attempts):
            state.history.add(
                AttemptRecord(
                    state.attempts,
                    kind,
                    error_type=error_type,
                    reason=reason,
                    duration_ms=duration_ms,
                )
            )
            entry = self.quarantine.admit(
                name,
                state.attempts,
                reason=(
                    f"{state.attempts} failed attempt(s), last: "
                    f"{kind} ({error_type}: {reason})"
                ),
                last_error_type=error_type,
                last_outcome=kind,
            )
            self.report.quarantined.append(name)
            recorder = flightrecorder.ambient()
            recorder.record(
                "executor.quarantine",
                function=name,
                attempts=state.attempts,
                reason=entry.reason,
            )
            recorder.dump(f"quarantine-{name}")
            outcomes[name] = ResilientOutcome(
                name,
                ResilientOutcome.QUARANTINED,
                stage=stage,
                error_type=error_type,
                reason=entry.reason,
                duration_ms=duration_ms,
                history=state.history,
                quarantine=entry,
            )
            return
        backoff = self.resilience.retry_policy.backoff_s(name, state.attempts)
        state.history.add(
            AttemptRecord(
                state.attempts,
                kind,
                error_type=error_type,
                reason=reason,
                backoff_s=backoff,
                duration_ms=duration_ms,
            )
        )
        state.eligible_at = time.monotonic() + backoff
        self.report.retries += 1

    # -- failure detection -----------------------------------------------

    def _find_hung(
        self,
        submitted: Dict[str, object],
        outcomes: Dict[str, ResilientOutcome],
        board,
    ) -> List[str]:
        timeout = self.resilience.timeout_s
        if timeout is None or board is None:
            return []
        now = time.time()
        hung = []
        for name, future in submitted.items():
            if name in outcomes or future.done():
                continue
            started = board.get(f"hb:{name}")
            if started is not None and now - started > timeout:
                hung.append(name)
        for name in hung:
            del submitted[name]
        return hung

    def _attribute_crash(
        self,
        states: Dict[str, _FunctionState],
        outcomes: Dict[str, ResilientOutcome],
        submitted: Dict[str, object],
        board,
        procs: Dict[int, object],
    ) -> None:
        """Penalize only the task(s) the dead worker(s) had claimed.

        A broken pool fails every in-flight future, but all workers
        except the dead one were terminated *by the pool* with SIGTERM —
        their tasks are innocent and resubmit without an attempt charge.
        """
        culprits: Dict[str, str] = {}
        for pid, proc in procs.items():
            try:
                proc.join(timeout=1.0)
                code = proc.exitcode
            except Exception:
                code = None
            if code is None or code == 0 or code == -signal.SIGTERM:
                continue
            claimed = None
            if board is not None:
                try:
                    claimed = board.get(f"claim:{pid}")
                except Exception:
                    claimed = None
            if claimed and claimed not in outcomes:
                culprits[claimed] = f"worker pid {pid} died (exit code {code})"
        if not culprits:
            # No attribution possible (no scoreboard, or the death raced
            # the claim): charge every started-but-incomplete function so
            # a persistent crasher still converges on quarantine.
            for name in list(submitted):
                if name in outcomes:
                    continue
                started = None
                if board is not None:
                    try:
                        started = board.get(f"hb:{name}")
                    except Exception:
                        started = None
                if board is None or started is not None:
                    culprits[name] = "worker pool broke while the task was running"
        for name, reason in culprits.items():
            submitted.pop(name, None)
            self._register_failure(
                states[name],
                outcomes,
                AttemptRecord.WORKER_CRASH,
                error_type="BrokenProcessPool",
                reason=reason,
            )
        submitted.clear()

    # -- pool lifecycle ---------------------------------------------------

    def _clear_board(self, board, name: str) -> None:
        if board is None:
            return
        try:
            board.pop(f"hb:{name}", None)
            board.pop(f"stage:{name}", None)
        except Exception:
            pass
