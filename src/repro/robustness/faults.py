"""Fault injection: deliberate IR corruption and unsound alias answers.

Each :class:`FaultInjector` method realizes one corruption class.  The
verifier-visible classes (dangling phi incomings, stale pred edges,
duplicate or missing definitions, dropped terminators, bogus memory-SSA
names) must make :func:`repro.ir.verify.verify_function` raise a
:class:`~repro.ir.verify.VerificationError` naming the offending function
and block — the transactional pipeline then rolls the function back.

The verifier-*silent* classes are semantic: :meth:`drop_compensating_store`
removes a store the partially-promoted code relies on (Fig. 4-6's
compensation code), and :class:`UnsoundAliasModel` returns deliberately
wrong alias answers so promotion caches values across aliased writes.
Those corruptions survive verification by construction and are caught by
the pipeline's re-execution oracle plus divergence bisection instead.

:class:`ChaosConfig` is the third family: *worker-level* chaos for the
resilient executor.  Instead of corrupting IR it kills, stalls, or
trips the worker process itself — crash (``os._exit``), hang (sleep
past the deadline), transient exception — at seeded, per-attempt rates,
so the deadline/retry/quarantine machinery is testable end-to-end.
"""

from __future__ import annotations

import hashlib
import os
import time
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.ir import instructions as I
from repro.ir.function import Function
from repro.ir.values import VReg
from repro.memory.aliasing import AliasModel
from repro.memory.resources import MemName, MemoryVar


class FaultInjectionError(ValueError):
    """The requested mutation found no applicable site in the function."""


class FaultInjector:
    """Applies one deliberate corruption per call.

    Site selection is deterministic (first applicable site in block
    order) so tests stay reproducible.  ``MUTATIONS`` maps each
    verifier-visible mutation to the ``verify_function`` flags needed to
    detect it.
    """

    #: mutation name -> verify_function keyword flags that expose it.
    MUTATIONS: Dict[str, Dict[str, bool]] = {
        "dangling_phi_incoming": {"check_ssa": True},
        "stale_pred_edge": {},
        "drop_terminator": {},
        "duplicate_register_def": {"check_ssa": True},
        "undefined_register_use": {"check_ssa": True},
        "undefined_mem_use": {"check_memssa": True},
        "dangling_memphi_incoming": {"check_memssa": True},
        "drop_compensating_load": {"check_ssa": True},
    }

    def apply(self, mutation: str, function: Function) -> str:
        """Apply ``mutation`` by name; returns a description of the edit."""
        if mutation not in self.MUTATIONS and mutation != "drop_compensating_store":
            raise FaultInjectionError(f"unknown mutation {mutation!r}")
        method: Callable[[Function], str] = getattr(self, mutation)
        return method(function)

    # -- verifier-visible corruption classes -----------------------------

    def dangling_phi_incoming(self, function: Function) -> str:
        """Give a register phi an incoming entry for a non-predecessor."""
        for block in function.blocks:
            for phi in block.phis():
                foreign = _non_pred_block(function, block)
                if foreign is not None:
                    phi.set_incoming(foreign, phi.incoming[0][1])
                    return (
                        f"phi {phi.dst} in {block.name} given incoming from "
                        f"non-pred {foreign.name}"
                    )
                phi.remove_incoming(phi.incoming[0][0])
                return f"phi {phi.dst} in {block.name} lost an incoming entry"
        raise FaultInjectionError("function has no register phi")

    def dangling_memphi_incoming(self, function: Function) -> str:
        """Give a memory phi an incoming entry for a non-predecessor."""
        for block in function.blocks:
            for memphi in block.mem_phis():
                foreign = _non_pred_block(function, block)
                if foreign is not None:
                    memphi.set_incoming(foreign, memphi.incoming[0][1])
                    return (
                        f"memphi {memphi.dst_name} in {block.name} given "
                        f"incoming from non-pred {foreign.name}"
                    )
                memphi.remove_incoming(memphi.incoming[0][0])
                return f"memphi {memphi.dst_name} in {block.name} lost an entry"
        raise FaultInjectionError("function has no memory phi")

    def stale_pred_edge(self, function: Function) -> str:
        """Append a predecessor whose terminator does not branch here."""
        for block in function.blocks[1:]:
            for other in function.blocks:
                term = other.terminator
                if other is block or term is None or block in term.targets:
                    continue
                if other in block.preds:
                    continue
                block.preds.append(other)
                return f"stale pred edge {other.name} -> {block.name}"
        raise FaultInjectionError("no block pair for a stale pred edge")

    def drop_terminator(self, function: Function) -> str:
        """Remove the terminator of a return block."""
        for block in function.blocks:
            term = block.terminator
            if isinstance(term, I.Ret):
                block.instructions.pop()
                term.block = None
                return f"removed terminator of {block.name}"
        raise FaultInjectionError("function has no return block")

    def duplicate_register_def(self, function: Function) -> str:
        """Make two instructions define the same virtual register."""
        first = None
        for inst in function.instructions():
            if inst.dst is None:
                continue
            if first is None:
                first = inst
                continue
            inst.dst = first.dst
            return f"{first.dst} now defined twice (block {inst.block.name})"
        raise FaultInjectionError("function defines fewer than two registers")

    def undefined_register_use(self, function: Function) -> str:
        """Replace an operand with a register that has no definition."""
        ghost = VReg("ghost_fault")
        for block in function.blocks:
            for inst in block.instructions:
                for op in list(inst.operands):
                    if isinstance(op, VReg):
                        inst.replace_operand(op, ghost)
                        return (
                            f"operand {op} in {block.name} replaced with "
                            f"undefined {ghost}"
                        )
        raise FaultInjectionError("function has no register operand")

    def undefined_mem_use(self, function: Function) -> str:
        """Point a memory use at an SSA name no instruction defines —
        the shape a wrong alias answer leaves behind."""
        for block in function.blocks:
            for inst in block.instructions:
                if isinstance(inst, I.MemPhi) or not inst.mem_uses:
                    continue
                old = inst.mem_uses[0]
                ghost = MemName(old.var, 9999, None)
                inst.replace_mem_use(old, ghost)
                return (
                    f"memory use {old} in {block.name} replaced with "
                    f"undefined {ghost}"
                )
        raise FaultInjectionError("function has no memory uses")

    def drop_compensating_load(self, function: Function) -> str:
        """Delete a load whose result is still used — after partial
        promotion these are the preheader/merge loads Fig. 4-6's
        compensation code inserts, so deleting one leaves a register
        use with no definition."""
        used = set()
        for inst in function.instructions():
            for op in inst.operands:
                if isinstance(op, VReg):
                    used.add(op)
        for inst in function.instructions():
            if isinstance(inst, I.Load) and inst.dst in used:
                block = inst.block
                inst.remove_from_block()
                return f"removed load of @{inst.var.name} in {block.name}"
        raise FaultInjectionError("function has no live load")

    # -- verifier-silent (semantic) corruption classes -------------------

    def drop_compensating_store(self, function: Function) -> str:
        """Delete the last singleton store — after partial promotion this
        is compensation code (an interval-tail store or a flush before an
        aliased reference), so the IR stays verifiable but memory no
        longer holds the promoted value.  Caught only by re-execution."""
        target = None
        for inst in function.instructions():
            if isinstance(inst, I.Store):
                target = inst
        if target is None:
            raise FaultInjectionError("function has no singleton store")
        block = target.block
        target.remove_from_block()
        return f"removed store to @{target.var.name} in {block.name}"


class TransientFaultError(RuntimeError):
    """An injected transient fault — the retryable chaos class."""


#: Exit status a chaos-crashed worker dies with.  Distinctive on purpose:
#: the executor's crash attribution separates "the worker chose to die"
#: (this, or any real abort) from "the pool terminated an innocent
#: bystander with SIGTERM".
CHAOS_CRASH_EXIT_CODE = 113


class ChaosConfig:
    """Seeded worker-level fault injection for the resilient executor.

    Each mode fires independently at its configured rate, decided by a
    *pure* draw over ``(seed, function, attempt, mode)`` — no runtime
    randomness, so a chaos run is exactly reproducible from its seed and
    a retried attempt re-rolls (a transient fault on attempt 1 typically
    clears by attempt 2, while a 1.0-rate fault is a poison function
    that ends up quarantined).  When several modes fire for the same
    attempt the first in ``MODES`` order wins.

    ``functions`` optionally restricts injection to the named functions
    (how tests poison exactly one victim).  ``hang_seconds`` is how long
    a hang sleeps — point it past the executor deadline to exercise the
    watchdog, or leave the deadline unset and the hang is just latency.
    """

    MODES = ("crash", "hang", "transient")

    def __init__(
        self,
        crash: float = 0.0,
        hang: float = 0.0,
        transient: float = 0.0,
        seed: int = 0,
        hang_seconds: float = 30.0,
        functions: Optional[Iterable[str]] = None,
    ) -> None:
        for mode, rate in (("crash", crash), ("hang", hang), ("transient", transient)):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"chaos rate {mode}={rate} outside [0, 1]")
        if hang_seconds < 0:
            raise ValueError(f"hang_seconds must be >= 0, got {hang_seconds}")
        self.crash = crash
        self.hang = hang
        self.transient = transient
        self.seed = seed
        self.hang_seconds = hang_seconds
        self.functions: Optional[FrozenSet[str]] = (
            frozenset(functions) if functions is not None else None
        )

    @property
    def enabled(self) -> bool:
        return self.crash > 0 or self.hang > 0 or self.transient > 0

    def rate(self, mode: str) -> float:
        if mode not in self.MODES:
            raise ValueError(f"unknown chaos mode {mode!r}")
        return getattr(self, mode)

    def draw(self, name: str, attempt: int, mode: str) -> float:
        """The deterministic uniform draw in ``[0, 1)`` for one decision."""
        key = f"{self.seed}:{name}:{attempt}:{mode}".encode()
        digest = hashlib.sha256(key).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def plan(self, name: str, attempt: int) -> Optional[str]:
        """Which mode (if any) fires for this function attempt."""
        if self.functions is not None and name not in self.functions:
            return None
        for mode in self.MODES:
            rate = self.rate(mode)
            if rate > 0 and self.draw(name, attempt, mode) < rate:
                return mode
        return None

    def inject(self, name: str, attempt: int) -> Optional[str]:
        """Execute the planned fault in the calling (worker) process:
        crash never returns, hang sleeps then returns ``"hang"``,
        transient raises :class:`TransientFaultError`."""
        mode = self.plan(name, attempt)
        if mode == "crash":
            os._exit(CHAOS_CRASH_EXIT_CODE)
        if mode == "hang":
            time.sleep(self.hang_seconds)
            return "hang"
        if mode == "transient":
            raise TransientFaultError(
                f"injected transient fault in {name} (attempt {attempt})"
            )
        return None

    @classmethod
    def parse(cls, spec: str) -> "ChaosConfig":
        """Parse the CLI form, e.g.
        ``"crash=0.1,hang=0.1,transient=0.2,seed=42,hang_seconds=5"``
        (``only=f|g`` restricts injection to the named functions)."""
        kwargs: Dict[str, object] = {}
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            key, sep, value = item.partition("=")
            if not sep:
                raise ValueError(f"chaos spec item {item!r} is not key=value")
            key = key.strip()
            value = value.strip()
            try:
                if key in ("crash", "hang", "transient", "hang_seconds"):
                    kwargs[key] = float(value)
                elif key == "seed":
                    kwargs[key] = int(value)
                elif key == "only":
                    kwargs["functions"] = [
                        name for name in value.split("|") if name
                    ]
                else:
                    raise ValueError(f"unknown chaos spec key {key!r}")
            except ValueError as exc:
                if "chaos spec" in str(exc):
                    raise
                raise ValueError(
                    f"chaos spec value {key}={value!r} is not a number"
                ) from None
        return cls(**kwargs)  # type: ignore[arg-type]

    def as_dict(self) -> Dict[str, object]:
        return {
            "crash": self.crash,
            "hang": self.hang,
            "transient": self.transient,
            "seed": self.seed,
            "hang_seconds": self.hang_seconds,
            "only": sorted(self.functions) if self.functions is not None else None,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ChaosConfig(crash={self.crash}, hang={self.hang}, "
            f"transient={self.transient}, seed={self.seed})"
        )


class UnsoundAliasModel(AliasModel):
    """An alias model that claims calls and pointer references touch no
    scalar memory at all.

    Maximally unsound: promotion will happily cache a variable in a
    register across a call or pointer store that actually rewrites it,
    and dead-store elimination may delete stores those references need.
    Usable directly as a pipeline factory::

        PromotionPipeline(alias_model=UnsoundAliasModel).run(module)

    The run must still terminate with behaviour-preserving IR — the
    re-execution oracle detects the divergence and bisection rolls the
    affected functions back.
    """

    def points_to(self, function: Function, ptr) -> List[MemoryVar]:
        return []

    def call_effects(
        self, function: Function, callee: str
    ) -> Tuple[List[MemoryVar], List[MemoryVar]]:
        return [], []


def _non_pred_block(function: Function, block):
    for candidate in function.blocks:
        if candidate is not block and candidate not in block.preds:
            return candidate
    return None
