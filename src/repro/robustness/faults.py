"""Fault injection: deliberate IR corruption and unsound alias answers.

Each :class:`FaultInjector` method realizes one corruption class.  The
verifier-visible classes (dangling phi incomings, stale pred edges,
duplicate or missing definitions, dropped terminators, bogus memory-SSA
names) must make :func:`repro.ir.verify.verify_function` raise a
:class:`~repro.ir.verify.VerificationError` naming the offending function
and block — the transactional pipeline then rolls the function back.

The verifier-*silent* classes are semantic: :meth:`drop_compensating_store`
removes a store the partially-promoted code relies on (Fig. 4-6's
compensation code), and :class:`UnsoundAliasModel` returns deliberately
wrong alias answers so promotion caches values across aliased writes.
Those corruptions survive verification by construction and are caught by
the pipeline's re-execution oracle plus divergence bisection instead.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.ir import instructions as I
from repro.ir.function import Function
from repro.ir.values import VReg
from repro.memory.aliasing import AliasModel
from repro.memory.resources import MemName, MemoryVar


class FaultInjectionError(ValueError):
    """The requested mutation found no applicable site in the function."""


class FaultInjector:
    """Applies one deliberate corruption per call.

    Site selection is deterministic (first applicable site in block
    order) so tests stay reproducible.  ``MUTATIONS`` maps each
    verifier-visible mutation to the ``verify_function`` flags needed to
    detect it.
    """

    #: mutation name -> verify_function keyword flags that expose it.
    MUTATIONS: Dict[str, Dict[str, bool]] = {
        "dangling_phi_incoming": {"check_ssa": True},
        "stale_pred_edge": {},
        "drop_terminator": {},
        "duplicate_register_def": {"check_ssa": True},
        "undefined_register_use": {"check_ssa": True},
        "undefined_mem_use": {"check_memssa": True},
        "dangling_memphi_incoming": {"check_memssa": True},
        "drop_compensating_load": {"check_ssa": True},
    }

    def apply(self, mutation: str, function: Function) -> str:
        """Apply ``mutation`` by name; returns a description of the edit."""
        if mutation not in self.MUTATIONS and mutation != "drop_compensating_store":
            raise FaultInjectionError(f"unknown mutation {mutation!r}")
        method: Callable[[Function], str] = getattr(self, mutation)
        return method(function)

    # -- verifier-visible corruption classes -----------------------------

    def dangling_phi_incoming(self, function: Function) -> str:
        """Give a register phi an incoming entry for a non-predecessor."""
        for block in function.blocks:
            for phi in block.phis():
                foreign = _non_pred_block(function, block)
                if foreign is not None:
                    phi.set_incoming(foreign, phi.incoming[0][1])
                    return (
                        f"phi {phi.dst} in {block.name} given incoming from "
                        f"non-pred {foreign.name}"
                    )
                phi.remove_incoming(phi.incoming[0][0])
                return f"phi {phi.dst} in {block.name} lost an incoming entry"
        raise FaultInjectionError("function has no register phi")

    def dangling_memphi_incoming(self, function: Function) -> str:
        """Give a memory phi an incoming entry for a non-predecessor."""
        for block in function.blocks:
            for memphi in block.mem_phis():
                foreign = _non_pred_block(function, block)
                if foreign is not None:
                    memphi.set_incoming(foreign, memphi.incoming[0][1])
                    return (
                        f"memphi {memphi.dst_name} in {block.name} given "
                        f"incoming from non-pred {foreign.name}"
                    )
                memphi.remove_incoming(memphi.incoming[0][0])
                return f"memphi {memphi.dst_name} in {block.name} lost an entry"
        raise FaultInjectionError("function has no memory phi")

    def stale_pred_edge(self, function: Function) -> str:
        """Append a predecessor whose terminator does not branch here."""
        for block in function.blocks[1:]:
            for other in function.blocks:
                term = other.terminator
                if other is block or term is None or block in term.targets:
                    continue
                if other in block.preds:
                    continue
                block.preds.append(other)
                return f"stale pred edge {other.name} -> {block.name}"
        raise FaultInjectionError("no block pair for a stale pred edge")

    def drop_terminator(self, function: Function) -> str:
        """Remove the terminator of a return block."""
        for block in function.blocks:
            term = block.terminator
            if isinstance(term, I.Ret):
                block.instructions.pop()
                term.block = None
                return f"removed terminator of {block.name}"
        raise FaultInjectionError("function has no return block")

    def duplicate_register_def(self, function: Function) -> str:
        """Make two instructions define the same virtual register."""
        first = None
        for inst in function.instructions():
            if inst.dst is None:
                continue
            if first is None:
                first = inst
                continue
            inst.dst = first.dst
            return f"{first.dst} now defined twice (block {inst.block.name})"
        raise FaultInjectionError("function defines fewer than two registers")

    def undefined_register_use(self, function: Function) -> str:
        """Replace an operand with a register that has no definition."""
        ghost = VReg("ghost_fault")
        for block in function.blocks:
            for inst in block.instructions:
                for op in list(inst.operands):
                    if isinstance(op, VReg):
                        inst.replace_operand(op, ghost)
                        return (
                            f"operand {op} in {block.name} replaced with "
                            f"undefined {ghost}"
                        )
        raise FaultInjectionError("function has no register operand")

    def undefined_mem_use(self, function: Function) -> str:
        """Point a memory use at an SSA name no instruction defines —
        the shape a wrong alias answer leaves behind."""
        for block in function.blocks:
            for inst in block.instructions:
                if isinstance(inst, I.MemPhi) or not inst.mem_uses:
                    continue
                old = inst.mem_uses[0]
                ghost = MemName(old.var, 9999, None)
                inst.replace_mem_use(old, ghost)
                return (
                    f"memory use {old} in {block.name} replaced with "
                    f"undefined {ghost}"
                )
        raise FaultInjectionError("function has no memory uses")

    def drop_compensating_load(self, function: Function) -> str:
        """Delete a load whose result is still used — after partial
        promotion these are the preheader/merge loads Fig. 4-6's
        compensation code inserts, so deleting one leaves a register
        use with no definition."""
        used = set()
        for inst in function.instructions():
            for op in inst.operands:
                if isinstance(op, VReg):
                    used.add(op)
        for inst in function.instructions():
            if isinstance(inst, I.Load) and inst.dst in used:
                block = inst.block
                inst.remove_from_block()
                return f"removed load of @{inst.var.name} in {block.name}"
        raise FaultInjectionError("function has no live load")

    # -- verifier-silent (semantic) corruption classes -------------------

    def drop_compensating_store(self, function: Function) -> str:
        """Delete the last singleton store — after partial promotion this
        is compensation code (an interval-tail store or a flush before an
        aliased reference), so the IR stays verifiable but memory no
        longer holds the promoted value.  Caught only by re-execution."""
        target = None
        for inst in function.instructions():
            if isinstance(inst, I.Store):
                target = inst
        if target is None:
            raise FaultInjectionError("function has no singleton store")
        block = target.block
        target.remove_from_block()
        return f"removed store to @{target.var.name} in {block.name}"


class UnsoundAliasModel(AliasModel):
    """An alias model that claims calls and pointer references touch no
    scalar memory at all.

    Maximally unsound: promotion will happily cache a variable in a
    register across a call or pointer store that actually rewrites it,
    and dead-store elimination may delete stores those references need.
    Usable directly as a pipeline factory::

        PromotionPipeline(alias_model=UnsoundAliasModel).run(module)

    The run must still terminate with behaviour-preserving IR — the
    re-execution oracle detects the divergence and bisection rolls the
    affected functions back.
    """

    def points_to(self, function: Function, ptr) -> List[MemoryVar]:
        return []

    def call_effects(
        self, function: Function, callee: str
    ) -> Tuple[List[MemoryVar], List[MemoryVar]]:
        return [], []


def _non_pred_block(function: Function, block):
    for candidate in function.blocks:
        if candidate is not block and candidate not in block.preds:
            return candidate
    return None
