"""The poison-function quarantine.

A function that keeps failing — crashing its worker, hanging past its
deadline, or raising transient faults attempt after attempt — must not
be allowed to stall or fail the module.  After its attempt budget is
exhausted the executor *quarantines* it: the function gracefully
degrades to the IR it had before phases 3+4 (unpromoted, hence
soundness-preserving by construction — promotion is an optimization,
and not running it is always correct), the module build completes, and
the quarantine entry records why so the run is diagnosable and
reproducible.

Quarantine is deliberately distinct from a rollback: a rollback is a
*deterministic* per-function failure observed once (a verification
error, a promotion bug); quarantine is the resilience layer giving up
on a function whose failures looked transient but never stopped.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional


class QuarantineEntry:
    """Why one function was quarantined."""

    __slots__ = ("name", "attempts", "reason", "last_error_type", "last_outcome")

    def __init__(
        self,
        name: str,
        attempts: int,
        reason: str,
        last_error_type: Optional[str] = None,
        last_outcome: Optional[str] = None,
    ) -> None:
        self.name = name
        self.attempts = attempts
        self.reason = reason
        self.last_error_type = last_error_type
        #: The final attempt's outcome class (``transient`` / ``timeout``
        #: / ``worker-crash``) — what kind of failure exhausted the budget.
        self.last_outcome = last_outcome

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "attempts": self.attempts,
            "reason": self.reason,
            "last_error_type": self.last_error_type,
            "last_outcome": self.last_outcome,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QuarantineEntry({self.name!r}, attempts={self.attempts})"


class Quarantine:
    """Registry of poisoned functions for one executor run.

    ``limit`` is the attempt budget: :meth:`exhausted` says whether a
    function that has burned ``attempts`` tries is out of budget and
    must be admitted instead of retried.
    """

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ValueError(f"quarantine limit must be >= 1, got {limit}")
        self.limit = limit
        self._entries: Dict[str, QuarantineEntry] = {}

    def exhausted(self, attempts: int) -> bool:
        return attempts >= self.limit

    def admit(
        self,
        name: str,
        attempts: int,
        reason: str,
        last_error_type: Optional[str] = None,
        last_outcome: Optional[str] = None,
    ) -> QuarantineEntry:
        entry = QuarantineEntry(name, attempts, reason, last_error_type, last_outcome)
        self._entries[name] = entry
        return entry

    def get(self, name: str) -> Optional[QuarantineEntry]:
        return self._entries.get(name)

    @property
    def members(self) -> List[str]:
        return sorted(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[QuarantineEntry]:
        return iter(self._entries.values())

    def as_dict(self) -> Dict[str, object]:
        return {
            "limit": self.limit,
            "functions": [self._entries[name].as_dict() for name in self.members],
        }
