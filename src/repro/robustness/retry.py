"""Bounded retry with exponential backoff and seeded jitter.

Promotion is an optimization: a transient worker fault (an injected
chaos exception, a broken pipe to a dying pool, a timeout) should cost
one backoff-delayed re-attempt, not the function's promotion — and a
*deterministic* failure (a verification error, a promotion bug) should
cost exactly one attempt, because re-running deterministic code can only
reproduce it.  :class:`RetryPolicy` encodes that split, and the backoff
jitter is derived from a seed so a retry schedule is reproducible from
the diagnostics alone.

:class:`AttemptHistory` is the audit trail: one :class:`AttemptRecord`
per try, with the outcome, the error, and the backoff that followed —
threaded into ``PipelineDiagnostics.attempt_histories`` so a chaos run
can be reconstructed offline.
"""

from __future__ import annotations

import hashlib
from typing import Dict, FrozenSet, List, Optional

#: Error *type names* treated as transient (worth retrying).  Names, not
#: classes: worker failures cross a process boundary and only the
#: exception's name survives the trip.
TRANSIENT_ERROR_TYPES: FrozenSet[str] = frozenset(
    {
        "TransientFaultError",  # injected chaos
        "BrokenProcessPool",
        "BrokenPipeError",
        "ConnectionError",
        "ConnectionResetError",
        "EOFError",
        "TimeoutError",
    }
)


def _seeded_fraction(seed: int, name: str, attempt: int) -> float:
    """Deterministic uniform draw in ``[0, 1)`` from (seed, name, attempt)."""
    digest = hashlib.sha256(f"{seed}:{name}:{attempt}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


class RetryPolicy:
    """How many attempts a function gets and how long to wait between them.

    ``max_attempts`` counts *attempts*, not retries: the CLI's
    ``--retries N`` maps to ``max_attempts=N + 1``.  Backoff is capped
    exponential — ``base * 2^(attempt-1)``, at most ``max_delay`` — with
    deterministic half-jitter: the delay is scaled into
    ``[0.5, 1.0) * full`` by a hash of (seed, function, attempt), so
    concurrent retries decorrelate but a given run's schedule is exactly
    reproducible from its seed.
    """

    def __init__(
        self,
        max_attempts: int = 3,
        backoff_base_s: float = 0.05,
        backoff_max_s: float = 2.0,
        seed: int = 0,
        transient_error_types: FrozenSet[str] = TRANSIENT_ERROR_TYPES,
    ) -> None:
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {max_attempts}")
        if backoff_base_s < 0 or backoff_max_s < 0:
            raise ValueError("backoff delays must be >= 0")
        self.max_attempts = max_attempts
        self.backoff_base_s = backoff_base_s
        self.backoff_max_s = backoff_max_s
        self.seed = seed
        self.transient_error_types = frozenset(transient_error_types)

    def is_transient(self, error_type: Optional[str]) -> bool:
        return error_type in self.transient_error_types

    def backoff_s(self, name: str, attempt: int) -> float:
        """Delay before re-attempting ``name`` after failed ``attempt``."""
        if attempt < 1:
            raise ValueError(f"attempt numbers start at 1, got {attempt}")
        full = min(self.backoff_base_s * (2 ** (attempt - 1)), self.backoff_max_s)
        return full * (0.5 + 0.5 * _seeded_fraction(self.seed, name, attempt))

    def schedule(self, name: str) -> List[float]:
        """The full backoff schedule (one delay per non-final attempt)."""
        return [
            self.backoff_s(name, attempt)
            for attempt in range(1, self.max_attempts)
        ]

    def as_dict(self) -> Dict[str, object]:
        return {
            "max_attempts": self.max_attempts,
            "backoff_base_s": self.backoff_base_s,
            "backoff_max_s": self.backoff_max_s,
            "seed": self.seed,
        }


class AttemptRecord:
    """One try at promoting one function."""

    #: Outcome vocabulary.  ``promoted`` and ``rolled_back`` are terminal
    #: (rolled_back = deterministic failure, never retried); the rest are
    #: transient classes that schedule a retry until attempts run out.
    PROMOTED = "promoted"
    ROLLED_BACK = "rolled_back"
    TRANSIENT = "transient"
    TIMEOUT = "timeout"
    WORKER_CRASH = "worker-crash"

    __slots__ = ("attempt", "outcome", "error_type", "reason", "backoff_s", "duration_ms")

    def __init__(
        self,
        attempt: int,
        outcome: str,
        error_type: Optional[str] = None,
        reason: Optional[str] = None,
        backoff_s: float = 0.0,
        duration_ms: float = 0.0,
    ) -> None:
        self.attempt = attempt
        self.outcome = outcome
        self.error_type = error_type
        self.reason = reason
        #: Delay scheduled *after* this attempt (0 when terminal).
        self.backoff_s = backoff_s
        self.duration_ms = duration_ms

    def as_dict(self) -> Dict[str, object]:
        return {
            "attempt": self.attempt,
            "outcome": self.outcome,
            "error_type": self.error_type,
            "reason": self.reason,
            "backoff_s": round(self.backoff_s, 6),
            "duration_ms": round(self.duration_ms, 3),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AttemptRecord({self.attempt}, {self.outcome!r}, {self.error_type!r})"


class AttemptHistory:
    """Every attempt one function got, in order."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.records: List[AttemptRecord] = []

    def add(self, record: AttemptRecord) -> AttemptRecord:
        self.records.append(record)
        return record

    @property
    def attempts(self) -> int:
        return len(self.records)

    @property
    def retries(self) -> int:
        return max(0, len(self.records) - 1)

    @property
    def final_outcome(self) -> Optional[str]:
        return self.records[-1].outcome if self.records else None

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "attempts": self.attempts,
            "records": [record.as_dict() for record in self.records],
        }
