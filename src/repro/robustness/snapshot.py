"""Deep-clone snapshots of function IR for transactional passes.

A :class:`FunctionSnapshot` clones everything a pass may mutate — blocks,
instructions, virtual registers, frame variables, naming counters — while
*sharing* module-level objects: the owning :class:`~repro.ir.module.Module`
and every global :class:`~repro.memory.resources.MemoryVar`.  Sharing is
load-bearing: the interpreter maps storage by variable identity and the
alias model hands out the module's own global objects, so a restored
function must keep referencing them.

Restoring installs the clone's state back into the *original*
``Function`` object (rather than swapping objects in ``module.functions``)
so that every external reference to the function stays valid.
"""

from __future__ import annotations

import copy

from repro.ir.function import Function


class FunctionState:
    """A shallow capture of one function's mutable fields.

    Installing a state hands the captured blocks to the function without
    copying, so a state must only be installed while nothing mutates the
    IR it captured — exactly the discipline divergence bisection follows
    when it toggles a function between its promoted and pre-promotion
    versions.
    """

    __slots__ = (
        "blocks",
        "params",
        "frame_vars",
        "next_reg",
        "next_block",
        "mem_versions",
    )

    def __init__(self, function: Function) -> None:
        self.blocks = function.blocks
        self.params = function.params
        self.frame_vars = function.frame_vars
        self.next_reg = function._next_reg
        self.next_block = function._next_block
        self.mem_versions = function._mem_versions

    def install(self, function: Function) -> None:
        function.blocks = self.blocks
        function.params = self.params
        function.frame_vars = self.frame_vars
        function._next_reg = self.next_reg
        function._next_block = self.next_block
        function._mem_versions = self.mem_versions
        for block in self.blocks:
            block.function = function


def capture_state(function: Function) -> FunctionState:
    """Capture the function's current IR without copying (see
    :class:`FunctionState` for the aliasing caveat)."""
    return FunctionState(function)


class FunctionSnapshot:
    """A restorable deep clone of one function's IR."""

    def __init__(self, function: Function) -> None:
        self.name = function.name
        self._function = function
        self._state = FunctionState(_clone(function))

    def restore(self) -> Function:
        """Install the snapshotted IR back into the original function."""
        self._state.install(self._function)
        return self._function


def snapshot_function(function: Function) -> FunctionSnapshot:
    """Deep-clone ``function`` (sharing its module and global variables)."""
    return FunctionSnapshot(function)


def _clone(function: Function) -> Function:
    memo: dict = {}
    module = function.module
    if module is not None:
        memo[id(module)] = module
        for var in module.globals.values():
            memo[id(var)] = var
    return copy.deepcopy(function, memo)
