"""Promotion-as-a-service: a fault-tolerant async daemon.

The pipeline, the resilient executor, and the analysis cache already
exist as library layers; this package puts a long-lived process in
front of them.  See :mod:`repro.service.daemon` for the architecture
and ``docs/SERVICE.md`` for the wire protocol.
"""

from repro.service.admission import AdmissionController
from repro.service.breaker import CircuitBreaker
from repro.service.chaos import ServiceChaosConfig
from repro.service.client import ChaosTraffic, ServiceClient
from repro.service.config import ServiceConfig
from repro.service.daemon import PromotionDaemon, run_daemon
from repro.service.engine import EngineCrashError, PromotionEngine
from repro.service.errors import (
    AdmissionRejectedError,
    DeadlineExceededError,
    JobInputError,
    JobValidationError,
    PayloadTooLargeError,
    RequestTimeoutError,
    ServiceError,
    ServiceUnavailableError,
)
from repro.service.jobs import JobRequest, JobResult

# The sharded-tier modules are exported lazily (PEP 562): eager imports
# here would make ``python -m repro.service.router`` (and .cluster, the
# exact argv LocalCluster supervises) re-execute an already-imported
# module and warn on every subprocess boot.
_LAZY_EXPORTS = {
    "ClusterConfig": "repro.service.cluster",
    "LocalCluster": "repro.service.cluster",
    "ServiceProcess": "repro.service.cluster",
    "PromotionRouter": "repro.service.router",
    "RouterConfig": "repro.service.router",
    "FingerprintResolver": "repro.service.routing",
    "hrw_order": "repro.service.routing",
}


def __getattr__(name):
    target = _LAZY_EXPORTS.get(name)
    if target is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    value = getattr(importlib.import_module(target), name)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_LAZY_EXPORTS))


__all__ = [
    "AdmissionController",
    "AdmissionRejectedError",
    "ChaosTraffic",
    "CircuitBreaker",
    "ClusterConfig",
    "DeadlineExceededError",
    "EngineCrashError",
    "FingerprintResolver",
    "JobInputError",
    "JobRequest",
    "JobResult",
    "JobValidationError",
    "LocalCluster",
    "PayloadTooLargeError",
    "PromotionDaemon",
    "PromotionEngine",
    "PromotionRouter",
    "RequestTimeoutError",
    "RouterConfig",
    "ServiceChaosConfig",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceProcess",
    "ServiceUnavailableError",
    "hrw_order",
    "run_daemon",
]
