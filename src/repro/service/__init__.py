"""Promotion-as-a-service: a fault-tolerant async daemon.

The pipeline, the resilient executor, and the analysis cache already
exist as library layers; this package puts a long-lived process in
front of them.  See :mod:`repro.service.daemon` for the architecture
and ``docs/SERVICE.md`` for the wire protocol.
"""

from repro.service.admission import AdmissionController
from repro.service.breaker import CircuitBreaker
from repro.service.chaos import ServiceChaosConfig
from repro.service.client import ChaosTraffic, ServiceClient
from repro.service.config import ServiceConfig
from repro.service.daemon import PromotionDaemon, run_daemon
from repro.service.engine import EngineCrashError, PromotionEngine
from repro.service.errors import (
    AdmissionRejectedError,
    DeadlineExceededError,
    JobInputError,
    JobValidationError,
    PayloadTooLargeError,
    RequestTimeoutError,
    ServiceError,
    ServiceUnavailableError,
)
from repro.service.jobs import JobRequest, JobResult

__all__ = [
    "AdmissionController",
    "AdmissionRejectedError",
    "ChaosTraffic",
    "CircuitBreaker",
    "DeadlineExceededError",
    "EngineCrashError",
    "JobInputError",
    "JobRequest",
    "JobResult",
    "JobValidationError",
    "PayloadTooLargeError",
    "PromotionDaemon",
    "PromotionEngine",
    "RequestTimeoutError",
    "ServiceChaosConfig",
    "ServiceClient",
    "ServiceConfig",
    "ServiceError",
    "ServiceUnavailableError",
    "run_daemon",
]
