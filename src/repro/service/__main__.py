"""``repro-serve``: run the promotion daemon.

Usage::

    repro-serve                         # HTTP on 127.0.0.1, ephemeral port
    repro-serve --port 8317 --workers 4
    repro-serve --stdio                 # JSONL over stdin/stdout too

The daemon prints exactly one ``listening on HOST:PORT`` line to stderr
once it is accepting (tooling parses it), serves until SIGTERM/SIGINT,
drains gracefully, and exits 0 on a clean drain or 3 when in-flight
jobs had to be abandoned at the grace deadline — the same "completed,
but degraded" contract the CLI uses.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from typing import List, Optional

from repro.frontend.limits import InputLimits
from repro.service.config import ServiceConfig
from repro.service.daemon import run_daemon


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-serve", description="promotion-as-a-service daemon"
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0, help="0 binds an ephemeral port"
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="warm worker threads"
    )
    parser.add_argument(
        "--max-queue",
        type=int,
        default=8,
        help="admissions allowed to wait before load is shed with 429s",
    )
    parser.add_argument(
        "--default-deadline",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="per-job deadline when the job names none",
    )
    parser.add_argument(
        "--max-deadline",
        type=float,
        default=120.0,
        metavar="SECONDS",
        help="upper clamp on job-requested deadlines",
    )
    parser.add_argument(
        "--breaker-threshold",
        type=int,
        default=3,
        help="consecutive engine failures that open the circuit",
    )
    parser.add_argument(
        "--breaker-reset",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="backoff before the open circuit half-opens",
    )
    parser.add_argument(
        "--drain-grace",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="how long SIGTERM waits for in-flight jobs",
    )
    parser.add_argument(
        "--body-timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="slow-loris guard: max time for a request body to arrive",
    )
    parser.add_argument(
        "--max-source-bytes",
        type=int,
        default=None,
        help="frontend input limit override",
    )
    parser.add_argument(
        "--stdio",
        action="store_true",
        help="also serve JSONL envelopes over stdin/stdout; EOF drains",
    )
    parser.add_argument(
        "--artifacts-dir",
        default=None,
        metavar="DIR",
        help="where the flight recorder dumps its ring on crash/drain",
    )
    options = parser.parse_args(argv)

    limits = None
    if options.max_source_bytes is not None:
        limits = InputLimits(max_source_bytes=options.max_source_bytes)
    try:
        config = ServiceConfig(
            host=options.host,
            port=options.port,
            workers=options.workers,
            max_queue=options.max_queue,
            default_deadline_s=options.default_deadline,
            max_deadline_s=options.max_deadline,
            breaker_threshold=options.breaker_threshold,
            breaker_reset_s=options.breaker_reset,
            drain_grace_s=options.drain_grace,
            body_timeout_s=options.body_timeout,
            limits=limits,
            artifacts_dir=options.artifacts_dir,
        )
    except ValueError as exc:
        print(f"repro-serve: error: {exc}", file=sys.stderr)
        return 2

    drained = {"clean": True}

    def announce(line: str) -> None:
        print(line, file=sys.stderr, flush=True)

    async def run() -> None:
        from repro.service.daemon import PromotionDaemon

        daemon = PromotionDaemon(config)
        host, port = await daemon.start()
        daemon.install_signal_handlers()
        announce(f"listening on {host}:{port}")
        if options.stdio:
            await daemon.serve_stdio()
        else:
            await daemon.serve_forever()
        drained["clean"] = daemon.drained_clean is not False

    try:
        asyncio.run(run())
    except KeyboardInterrupt:  # pragma: no cover - signal handler races
        pass
    return 0 if drained["clean"] else 3


# Re-export for callers that want the coroutine form.
__all__ = ["main", "run_daemon"]


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
