"""Admission control: a bounded queue with load shedding.

The controller owns two numbers — ``capacity`` concurrent in-flight
jobs and ``max_queue`` admissions allowed to *wait* for a slot — and
enforces them with an :class:`asyncio.Semaphore`.  A request that would
push the waiting count past the bound is shed immediately with a
:class:`~repro.service.errors.AdmissionRejectedError` carrying a
retry-after hint, instead of joining an unbounded line: under overload
the service degrades to fast, honest rejections rather than silently
growing latency until clients time out anyway.

The retry-after hint is an exponentially-weighted moving average of
recent job durations scaled by the queue depth ahead of the newcomer,
clamped to a sane band — an estimate, not a promise, but one derived
from what the service is actually doing right now.

``drain()`` flips the controller into rejection mode (every new ``slot``
raises ``ServiceUnavailableError(reason="draining")``) and waits for
in-flight jobs to finish, bounded by a grace period — the heart of
graceful SIGTERM shutdown.
"""

from __future__ import annotations

import asyncio
import contextlib
from typing import AsyncIterator, Dict, Optional

from repro.service.errors import AdmissionRejectedError, ServiceUnavailableError

_RETRY_AFTER_MIN_S = 0.1
_RETRY_AFTER_MAX_S = 30.0
#: EWMA smoothing for observed job durations.
_ALPHA = 0.3


class AdmissionController:
    """Bounded concurrent admissions with honest rejection.

    Create *inside* a running event loop (the semaphore binds to it).
    """

    def __init__(self, capacity: int, max_queue: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {max_queue}")
        self.capacity = capacity
        self.max_queue = max_queue
        self._slots = asyncio.Semaphore(capacity)
        self.waiting = 0
        self.inflight = 0
        self.draining = False
        self.admitted_total = 0
        self.shed_total = 0
        #: EWMA of recent job durations, seconds; seeds at 1s so the very
        #: first rejection still carries a plausible hint.
        self.avg_duration_s = 1.0
        self._idle = asyncio.Event()
        self._idle.set()

    # -- accounting ------------------------------------------------------

    def observe_duration(self, seconds: float) -> None:
        """Feed a completed job's duration into the retry-after EWMA."""
        if seconds >= 0:
            self.avg_duration_s = (
                _ALPHA * seconds + (1.0 - _ALPHA) * self.avg_duration_s
            )

    def retry_after_s(self) -> float:
        """How long a shed client should wait: roughly the time for the
        queue ahead of it to clear, clamped to [0.1, 30] seconds."""
        depth = self.waiting + self.inflight
        estimate = self.avg_duration_s * max(1.0, depth / self.capacity)
        return min(_RETRY_AFTER_MAX_S, max(_RETRY_AFTER_MIN_S, estimate))

    # -- admission -------------------------------------------------------

    @contextlib.asynccontextmanager
    async def slot(self) -> AsyncIterator[None]:
        """Admit one job: shed if the wait line is full, reject if
        draining, otherwise hold a slot for the body of the ``with``."""
        if self.draining:
            raise ServiceUnavailableError(
                "service is draining for shutdown", reason="draining"
            )
        if self.waiting >= self.max_queue:
            self.shed_total += 1
            raise AdmissionRejectedError(
                f"admission queue full ({self.waiting} waiting, "
                f"{self.inflight} in flight)",
                retry_after_s=self.retry_after_s(),
            )
        self.waiting += 1
        try:
            await self._slots.acquire()
        finally:
            self.waiting -= 1
        # Re-check after the (possibly long) wait: a drain that started
        # while we queued must still win.
        if self.draining:
            self._slots.release()
            raise ServiceUnavailableError(
                "service is draining for shutdown", reason="draining"
            )
        self.inflight += 1
        self._idle.clear()
        self.admitted_total += 1
        try:
            yield
        finally:
            self.inflight -= 1
            if self.inflight == 0:
                self._idle.set()
            self._slots.release()

    # -- shutdown --------------------------------------------------------

    async def drain(self, grace_s: Optional[float] = None) -> bool:
        """Stop admitting and wait for in-flight jobs; True if they all
        finished within the grace period."""
        self.draining = True
        if self.inflight == 0:
            return True
        try:
            await asyncio.wait_for(self._idle.wait(), timeout=grace_s)
        except asyncio.TimeoutError:
            return False
        return True

    def as_dict(self) -> Dict[str, object]:
        return {
            "capacity": self.capacity,
            "max_queue": self.max_queue,
            "waiting": self.waiting,
            "inflight": self.inflight,
            "draining": self.draining,
            "admitted_total": self.admitted_total,
            "shed_total": self.shed_total,
            "avg_duration_s": round(self.avg_duration_s, 4),
            "retry_after_s": round(self.retry_after_s(), 3),
        }
