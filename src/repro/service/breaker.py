"""A circuit breaker over the promotion engine.

A single crashed worker pool is routine — the resilient executor
rebuilds it and quarantines the poison function.  A *storm* of engine
failures (every job dying on arrival, the pool thrashing) is different:
continuing to admit jobs just feeds the fire.  The breaker counts
**consecutive** engine-level failures; at ``threshold`` it opens and the
daemon answers 503 (with a retry-after equal to the remaining backoff)
without touching the engine at all.

After ``reset_s`` the breaker half-opens: exactly one probe job is let
through.  Success closes the circuit and resets the backoff; failure
re-opens it with the backoff doubled (capped), the classic pattern.
Client-caused failures (bad payloads, compile errors, per-job deadline
misses) never count — only faults that indicate the *engine* is sick.

Time is injectable (``clock``) so tests drive state transitions without
sleeping.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional

from repro.observability import flightrecorder

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"

_MAX_BACKOFF_MULTIPLIER = 16


class CircuitBreaker:
    """Consecutive-failure breaker with half-open probing and doubling
    backoff."""

    def __init__(
        self,
        threshold: int = 3,
        reset_s: float = 5.0,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if reset_s <= 0:
            raise ValueError(f"reset_s must be > 0, got {reset_s}")
        self.threshold = threshold
        self.reset_s = reset_s
        self._clock = clock or time.monotonic
        self.state = CLOSED
        self.consecutive_failures = 0
        self.trips = 0
        self._opened_at = 0.0
        self._backoff_multiplier = 1
        self._probe_inflight = False

    # -- queries ---------------------------------------------------------

    def _current_backoff_s(self) -> float:
        return self.reset_s * self._backoff_multiplier

    def retry_after_s(self) -> float:
        """Seconds until the breaker would next allow a probe."""
        if self.state != OPEN:
            return 0.0
        elapsed = self._clock() - self._opened_at
        return max(0.0, self._current_backoff_s() - elapsed)

    def allow(self) -> bool:
        """Whether a job may proceed right now.  An OPEN breaker whose
        backoff has elapsed transitions to HALF_OPEN and admits exactly
        one probe; further calls are refused until the probe reports."""
        if self.state == CLOSED:
            return True
        if self.state == OPEN:
            if self._clock() - self._opened_at >= self._current_backoff_s():
                self.state = HALF_OPEN
                self._probe_inflight = True
                return True
            return False
        # HALF_OPEN: one probe at a time.
        if self._probe_inflight:
            return False
        self._probe_inflight = True
        return True

    # -- transitions -----------------------------------------------------

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self._probe_inflight = False
        if self.state != CLOSED:
            self.state = CLOSED
            self._backoff_multiplier = 1

    def record_neutral(self) -> None:
        """A client-caused outcome (bad payload, compile error, deadline
        miss): proves nothing about engine health, so it neither feeds
        the failure count nor closes a half-open circuit — it only
        releases the probe slot so the next job can try again."""
        self._probe_inflight = False

    def record_failure(self) -> None:
        self._probe_inflight = False
        if self.state == HALF_OPEN:
            # The probe failed: re-open with a longer backoff.
            self._backoff_multiplier = min(
                self._backoff_multiplier * 2, _MAX_BACKOFF_MULTIPLIER
            )
            self._trip()
            return
        self.consecutive_failures += 1
        if self.state == CLOSED and self.consecutive_failures >= self.threshold:
            self._trip()

    def _trip(self) -> None:
        self.state = OPEN
        self.trips += 1
        self._opened_at = self._clock()
        self.consecutive_failures = 0
        # An opening breaker is exactly the moment whose prelude matters:
        # dump the ring so the failures that tripped it are on disk.
        recorder = flightrecorder.ambient()
        recorder.record(
            "breaker.open",
            trips=self.trips,
            backoff_s=self._current_backoff_s(),
        )
        recorder.dump("breaker-open")

    def as_dict(self) -> Dict[str, object]:
        return {
            "state": self.state,
            "threshold": self.threshold,
            "reset_s": self.reset_s,
            "consecutive_failures": self.consecutive_failures,
            "trips": self.trips,
            "backoff_s": round(self._current_backoff_s(), 3),
            "retry_after_s": round(self.retry_after_s(), 3),
        }
