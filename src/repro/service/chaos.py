"""Service-level chaos: seeded client-side network misbehaviour.

:class:`~repro.robustness.faults.ChaosConfig` injects faults *inside*
worker processes; this module extends the same idea one layer up, to the
wire.  A :class:`ServiceChaosConfig` decides — with the identical pure
sha256 draw, so a run is exactly replayable from its seed — whether a
given request is delivered normally or arrives as one of four hostile
shapes:

* ``drop`` — the client opens a connection and closes it without
  sending a complete request (tests the daemon's header timeout and
  connection accounting);
* ``slow`` — a slow-loris body: bytes trickle in with long pauses so
  the body timeout must fire (the daemon answers 408, not hang);
* ``disconnect`` — the client sends a full request then closes before
  reading the response mid-stream (the daemon must absorb the broken
  pipe without leaking the admission slot);
* ``malformed`` — a syntactically broken payload (truncated JSON, bogus
  content length, junk request line) that must bounce as a structured
  4xx.

The decisions are keyed by ``(seed, request-index, mode)`` rather than
by function name — the unit of chaos here is a request, not a
promotion attempt.  :class:`~repro.service.client.ChaosTraffic` is the
driver that realizes these plans against a live daemon.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Optional


class ServiceChaosConfig:
    """Seeded request-level fault plans for the service layer.

    Mirrors :class:`~repro.robustness.faults.ChaosConfig`: each mode
    fires independently at its rate via a pure draw, first mode in
    ``MODES`` order wins when several fire, and ``parse`` accepts the
    same ``key=value,...`` CLI spec shape.
    """

    MODES = ("drop", "slow", "disconnect", "malformed")

    def __init__(
        self,
        drop: float = 0.0,
        slow: float = 0.0,
        disconnect: float = 0.0,
        malformed: float = 0.0,
        seed: int = 0,
        slow_delay_s: float = 0.5,
    ) -> None:
        for mode, rate in (
            ("drop", drop),
            ("slow", slow),
            ("disconnect", disconnect),
            ("malformed", malformed),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ValueError(f"chaos rate {mode}={rate} outside [0, 1]")
        if slow_delay_s < 0:
            raise ValueError(f"slow_delay_s must be >= 0, got {slow_delay_s}")
        self.drop = drop
        self.slow = slow
        self.disconnect = disconnect
        self.malformed = malformed
        self.seed = seed
        #: Pause between trickled body chunks in ``slow`` mode — point it
        #: past the daemon's body timeout to force a 408.
        self.slow_delay_s = slow_delay_s

    @property
    def enabled(self) -> bool:
        return any(self.rate(mode) > 0 for mode in self.MODES)

    def rate(self, mode: str) -> float:
        if mode not in self.MODES:
            raise ValueError(f"unknown service chaos mode {mode!r}")
        return getattr(self, mode)

    def draw(self, request: int, mode: str) -> float:
        """The deterministic uniform draw in ``[0, 1)`` for one decision."""
        key = f"{self.seed}:req{request}:{mode}".encode()
        digest = hashlib.sha256(key).digest()
        return int.from_bytes(digest[:8], "big") / 2**64

    def plan(self, request: int) -> Optional[str]:
        """Which mode (if any) fires for request number ``request``."""
        for mode in self.MODES:
            rate = self.rate(mode)
            if rate > 0 and self.draw(request, mode) < rate:
                return mode
        return None

    @classmethod
    def parse(cls, spec: str) -> "ServiceChaosConfig":
        """Parse the CLI form, e.g.
        ``"drop=0.2,slow=0.1,disconnect=0.2,malformed=0.2,seed=77"``."""
        kwargs: Dict[str, object] = {}
        for item in spec.split(","):
            item = item.strip()
            if not item:
                continue
            key, sep, value = item.partition("=")
            if not sep:
                raise ValueError(f"chaos spec item {item!r} is not key=value")
            key = key.strip()
            value = value.strip()
            try:
                if key in ("drop", "slow", "disconnect", "malformed", "slow_delay_s"):
                    kwargs[key] = float(value)
                elif key == "seed":
                    kwargs[key] = int(value)
                else:
                    raise ValueError(f"unknown chaos spec key {key!r}")
            except ValueError as exc:
                if "chaos spec" in str(exc):
                    raise
                raise ValueError(
                    f"chaos spec value {key}={value!r} is not a number"
                ) from None
        return cls(**kwargs)  # type: ignore[arg-type]

    def as_dict(self) -> Dict[str, object]:
        return {
            "drop": self.drop,
            "slow": self.slow,
            "disconnect": self.disconnect,
            "malformed": self.malformed,
            "seed": self.seed,
            "slow_delay_s": self.slow_delay_s,
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ServiceChaosConfig(drop={self.drop}, slow={self.slow}, "
            f"disconnect={self.disconnect}, malformed={self.malformed}, "
            f"seed={self.seed})"
        )
