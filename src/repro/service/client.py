"""A raw-asyncio client for the daemon, plus the chaos traffic driver.

:class:`ServiceClient` speaks the daemon's minimal HTTP/1.1 dialect
(one request per connection, ``Connection: close``) with no third-party
dependencies — it exists for tests, the smoke tool, and as executable
documentation of the wire protocol.  The module-level
:func:`send_request`/:func:`read_response` helpers are the one
implementation of that dialect; the front-tier router
(:mod:`repro.service.router`) reuses them for its upstream legs, so a
router hop cannot drift from what a direct client would send.

:class:`ChaosTraffic` realizes :class:`ServiceChaosConfig` plans
against a live daemon: for each request index it asks the config which
hostile shape (if any) to send — a dropped connection, a slow-loris
body, a mid-stream disconnect, a malformed payload — and otherwise
submits the real job.  Runs are replayable from the seed, so a failure
seen in CI reproduces locally with the same spec string.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, List, Optional, Tuple

from repro.service.chaos import ServiceChaosConfig


class ClientDisconnect(Exception):
    """The server closed the connection without a complete response."""


class Response:
    __slots__ = ("status", "headers", "body")

    def __init__(self, status: int, headers: Dict[str, str], body: bytes) -> None:
        self.status = status
        self.headers = headers
        self.body = body

    def json(self) -> object:
        return json.loads(self.body.decode("utf-8"))


class ServiceClient:
    """One-request-per-connection HTTP client for the daemon."""

    def __init__(self, host: str, port: int, timeout_s: float = 30.0) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s

    async def _connect(self) -> Tuple[asyncio.StreamReader, asyncio.StreamWriter]:
        return await asyncio.wait_for(
            asyncio.open_connection(self.host, self.port), timeout=self.timeout_s
        )

    async def request(
        self,
        method: str,
        path: str,
        body: Optional[bytes] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Response:
        reader, writer = await self._connect()
        try:
            await send_request(writer, method, path, body, headers)
            return await asyncio.wait_for(read_response(reader), self.timeout_s)
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def get(self, path: str) -> Response:
        return await self.request("GET", path)

    async def submit(
        self,
        payload: Dict[str, object],
        stream: bool = False,
        trace=None,
    ):
        """Submit a job.  Non-streaming returns a :class:`Response`;
        streaming returns the list of decoded NDJSON event documents.
        ``trace`` (a :class:`~repro.observability.tracer.TraceContext`)
        joins the request to a distributed trace via ``traceparent``."""
        body = json.dumps(payload).encode("utf-8")
        headers = {"traceparent": trace.to_traceparent()} if trace else None
        if not stream:
            return await self.request("POST", "/v1/jobs", body, headers)
        reader, writer = await self._connect()
        try:
            await send_request(writer, "POST", "/v1/jobs?stream=1", body, headers)
            await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=self.timeout_s
            )
            events: List[object] = []
            while True:
                line = await asyncio.wait_for(reader.readline(), self.timeout_s)
                if not line:
                    break
                if line.strip():
                    events.append(json.loads(line))
            return events
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass


class ChaosTraffic:
    """Seeded hostile-client traffic against a live daemon."""

    def __init__(
        self,
        client: ServiceClient,
        chaos: ServiceChaosConfig,
    ) -> None:
        self.client = client
        self.chaos = chaos
        #: mode -> count of requests realized in that shape ("none" for
        #: clean deliveries).
        self.sent: Dict[str, int] = {mode: 0 for mode in ServiceChaosConfig.MODES}
        self.sent["none"] = 0

    async def send(self, index: int, payload: Dict[str, object]):
        """Deliver ``payload`` as request number ``index``, realized in
        whatever shape the chaos plan dictates.  Returns the
        :class:`Response` for clean and malformed deliveries, ``None``
        for shapes that never read one."""
        mode = self.chaos.plan(index)
        self.sent[mode or "none"] += 1
        if mode == "drop":
            return await self._drop()
        if mode == "slow":
            return await self._slow(payload)
        if mode == "disconnect":
            return await self._disconnect(payload)
        if mode == "malformed":
            return await self._malformed(index)
        return await self.client.submit(payload)

    async def _drop(self) -> None:
        """Open a connection, send half a request head, vanish."""
        reader, writer = await self.client._connect()
        writer.write(b"POST /v1/jobs HT")
        try:
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        writer.close()
        return None

    async def _slow(self, payload: Dict[str, object]):
        """Slow-loris: declare a body, then trickle it slower than the
        daemon's body timeout.  Expect a 408 (or a hangup once the
        daemon gives up) — never a worker slot."""
        body = json.dumps(payload).encode("utf-8")
        reader, writer = await self.client._connect()
        try:
            head = (
                f"POST /v1/jobs HTTP/1.1\r\n"
                f"Host: {self.client.host}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n"
            ).encode("ascii")
            writer.write(head)
            await writer.drain()
            for chunk_start in range(0, len(body), 16):
                writer.write(body[chunk_start : chunk_start + 16])
                await writer.drain()
                await asyncio.sleep(self.chaos.slow_delay_s)
            return await asyncio.wait_for(
                read_response(reader), self.client.timeout_s
            )
        except (ConnectionError, OSError, ClientDisconnect, asyncio.TimeoutError):
            return None
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _disconnect(self, payload: Dict[str, object]) -> None:
        """Send a complete streaming request, read one line, hang up —
        the daemon must finish the job and release the slot anyway."""
        body = json.dumps(payload).encode("utf-8")
        reader, writer = await self.client._connect()
        try:
            await send_request(writer, "POST", "/v1/jobs?stream=1", body)
            try:
                await asyncio.wait_for(reader.readline(), self.client.timeout_s)
            except asyncio.TimeoutError:
                pass
        except (ConnectionError, OSError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass
        return None

    async def _malformed(self, index: int):
        """One of a rotating set of broken payloads; all must come back
        as structured 4xx documents, never 5xx, never a hang."""
        shapes = [
            b"{not json at all",
            b'{"kind": "minic"}',
            b'{"source": 7, "kind": "minic"}',
            b'["a", "list", "not", "an", "object"]',
        ]
        body = shapes[index % len(shapes)]
        return await self.client.request("POST", "/v1/jobs", body)


# -- wire helpers ---------------------------------------------------------


async def send_request(
    writer: asyncio.StreamWriter,
    method: str,
    path: str,
    body: Optional[bytes] = None,
    headers: Optional[Dict[str, str]] = None,
) -> None:
    body = body or b""
    lines = [f"{method} {path} HTTP/1.1", "Host: localhost"]
    if body:
        lines.append("Content-Type: application/json")
    lines.append(f"Content-Length: {len(body)}")
    lines.append("Connection: close")
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    writer.write(("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + body)
    await writer.drain()


async def read_response(reader: asyncio.StreamReader) -> Response:
    head = await reader.readuntil(b"\r\n\r\n")
    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split(" ", 2)
    if len(parts) < 2 or not parts[0].startswith("HTTP/1."):
        raise ClientDisconnect(f"malformed status line {lines[0]!r}")
    status = int(parts[1])
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, _, value = line.partition(":")
        headers[name.strip().lower()] = value.strip()
    if "content-length" in headers:
        body = await reader.readexactly(int(headers["content-length"]))
    else:
        body = await reader.read()
    return Response(status, headers, body)
