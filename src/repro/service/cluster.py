"""Cluster plumbing: backend lists and local multi-daemon supervision.

Two layers:

* :class:`ClusterConfig` — the static shard list the router routes
  over, parsed from repeated ``--backend host:port`` flags and/or a
  backends file (one address per line, ``#`` comments).  Pure parsing
  and validation, no processes.
* :class:`ServiceProcess` / :class:`LocalCluster` — launch and
  supervise real ``repro-serve`` instances (and a ``repro-route`` front
  tier) as subprocesses on ephemeral ports, for tests and the
  ``cluster-smoke`` CI harness.  Every process runs in its own session
  so ``killpg`` can prove nothing was orphaned, announces itself with
  the one-line ``listening on HOST:PORT`` banner, and is torn down with
  SIGTERM → graceful drain (the same path production uses).

``python -m repro.service.cluster --backends 3`` boots a disposable
local cluster plus router and prints the addresses — a one-command
sandbox for poking at the sharded tier.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time
from typing import Dict, List, Optional, Sequence, Tuple


class ClusterConfig:
    """The validated backend list: (host, port) pairs, at least one."""

    def __init__(self, backends: Sequence[Tuple[str, int]]) -> None:
        backends = [(str(h), int(p)) for h, p in backends]
        if not backends:
            raise ValueError(
                "at least one backend is required "
                "(--backend HOST:PORT or --backends-file FILE)"
            )
        ids = [f"{h}:{p}" for h, p in backends]
        seen = set()
        for backend_id in ids:
            if backend_id in seen:
                raise ValueError(f"duplicate backend {backend_id}")
            seen.add(backend_id)
        self.backends: List[Tuple[str, int]] = backends

    @staticmethod
    def parse_spec(spec: str) -> Tuple[str, int]:
        """``HOST:PORT`` → (host, port); raises ValueError with the
        offending spec named."""
        host, sep, port_text = spec.strip().rpartition(":")
        if not sep or not host:
            raise ValueError(f"backend spec {spec!r} is not HOST:PORT")
        try:
            port = int(port_text)
        except ValueError:
            raise ValueError(
                f"backend spec {spec!r} has a non-integer port"
            ) from None
        if not 1 <= port <= 65535:
            raise ValueError(f"backend spec {spec!r} port is out of range")
        return host, port

    @classmethod
    def from_file(cls, path: str) -> "ClusterConfig":
        try:
            with open(path) as handle:
                lines = handle.readlines()
        except OSError as exc:
            raise ValueError(
                f"cannot read backends file {path}: {exc.strerror or exc}"
            ) from None
        specs = []
        for line in lines:
            text = line.split("#", 1)[0].strip()
            if text:
                specs.append(text)
        return cls([cls.parse_spec(spec) for spec in specs])

    @classmethod
    def from_args(
        cls, specs: Sequence[str], backends_file: Optional[str] = None
    ) -> "ClusterConfig":
        """Combine ``--backend`` repeats with an optional file; the file
        list comes first so flags can extend a checked-in topology."""
        backends: List[Tuple[str, int]] = []
        if backends_file is not None:
            backends.extend(cls.from_file(backends_file).backends)
        backends.extend(cls.parse_spec(spec) for spec in specs)
        return cls(backends)

    def ids(self) -> List[str]:
        return [f"{h}:{p}" for h, p in self.backends]


class ServiceProcess:
    """One supervised subprocess that announces ``listening on
    HOST:PORT`` on stderr once it is accepting.

    Runs in its own session (→ own process group) so
    :meth:`assert_no_orphans` can prove that a graceful drain left no
    worker processes behind.  stderr is drained continuously into
    memory and, when ``stderr_path`` is given, teed to a file — the
    diagnostics CI uploads when a smoke run fails.
    """

    def __init__(
        self,
        argv: Sequence[str],
        name: str = "service",
        stderr_path: Optional[str] = None,
    ) -> None:
        self.argv = list(argv)
        self.name = name
        self.stderr_path = stderr_path
        self.proc: Optional[subprocess.Popen] = None
        self.stderr_lines: List[str] = []
        self._reader: Optional[threading.Thread] = None
        self.host = ""
        self.port = 0

    @property
    def pid(self) -> Optional[int]:
        return None if self.proc is None else self.proc.pid

    @property
    def address(self) -> str:
        return f"{self.host}:{self.port}"

    def boot(self, timeout_s: float = 30.0) -> None:
        env = dict(os.environ)
        src_root = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir)
        env["PYTHONPATH"] = os.path.abspath(src_root) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        self.proc = subprocess.Popen(
            self.argv,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
            text=True,
            start_new_session=True,
            env=env,
        )
        self._reader = threading.Thread(target=self._drain_stderr, daemon=True)
        self._reader.start()
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            for line in list(self.stderr_lines):
                if line.startswith("listening on "):
                    address = line[len("listening on ") :].strip()
                    self.host, _, port = address.rpartition(":")
                    self.port = int(port)
                    return
            if self.proc.poll() is not None:
                raise RuntimeError(
                    f"{self.name} exited during boot "
                    f"(rc={self.proc.returncode}): "
                    + "\n".join(self.stderr_lines)
                )
            time.sleep(0.05)
        raise RuntimeError(f"{self.name} never announced its listening address")

    def _drain_stderr(self) -> None:
        assert self.proc is not None and self.proc.stderr is not None
        sink = None
        if self.stderr_path is not None:
            try:
                sink = open(self.stderr_path, "w")
            except OSError:
                sink = None
        try:
            for line in self.proc.stderr:
                self.stderr_lines.append(line.rstrip("\n"))
                if sink is not None:
                    sink.write(line)
                    sink.flush()
        finally:
            if sink is not None:
                sink.close()

    def send_signal(self, sig: int = signal.SIGTERM) -> None:
        assert self.proc is not None
        self.proc.send_signal(sig)

    def sigterm_and_wait(self, timeout_s: float = 60.0) -> int:
        assert self.proc is not None
        self.proc.send_signal(signal.SIGTERM)
        return self.proc.wait(timeout=timeout_s)

    def wait(self, timeout_s: float = 60.0) -> int:
        assert self.proc is not None
        return self.proc.wait(timeout=timeout_s)

    def assert_no_orphans(self) -> None:
        """Raise unless the whole process group is gone."""
        assert self.proc is not None
        try:
            os.killpg(self.proc.pid, 0)
        except ProcessLookupError:
            return
        raise AssertionError(
            f"process group {self.proc.pid} ({self.name}) still has live "
            f"members after drain"
        )

    def kill(self) -> None:
        if self.proc is not None and self.proc.poll() is None:
            try:
                os.killpg(self.proc.pid, signal.SIGKILL)
            except ProcessLookupError:
                pass


class LocalCluster:
    """K local ``repro-serve`` instances plus (optionally) a router.

    The smoke harness and tests use this to stand up a real sharded
    tier in a few hundred milliseconds: every daemon binds an ephemeral
    port, the router is pointed at the resulting address list, and
    teardown SIGTERMs everything and checks the exits.
    """

    def __init__(
        self,
        backends: int = 3,
        workers: int = 2,
        daemon_args: Optional[Sequence[str]] = None,
        stderr_dir: Optional[str] = None,
    ) -> None:
        if backends < 1:
            raise ValueError(f"backends must be >= 1, got {backends}")
        self.count = backends
        self.workers = workers
        self.daemon_args = list(daemon_args or [])
        self.stderr_dir = stderr_dir
        self.daemons: List[ServiceProcess] = []
        self.router: Optional[ServiceProcess] = None

    def _stderr_path(self, name: str) -> Optional[str]:
        if self.stderr_dir is None:
            return None
        os.makedirs(self.stderr_dir, exist_ok=True)
        return os.path.join(self.stderr_dir, f"{name}-stderr.log")

    def start(self, timeout_s: float = 30.0) -> None:
        for index in range(self.count):
            name = f"daemon-{index}"
            proc = ServiceProcess(
                [
                    sys.executable,
                    "-m",
                    "repro.service",
                    "--workers",
                    str(self.workers),
                ]
                + self.daemon_args,
                name=name,
                stderr_path=self._stderr_path(name),
            )
            proc.boot(timeout_s=timeout_s)
            self.daemons.append(proc)

    @property
    def addresses(self) -> List[Tuple[str, int]]:
        return [(d.host, d.port) for d in self.daemons]

    def backend_args(self) -> List[str]:
        args: List[str] = []
        for daemon in self.daemons:
            args.extend(["--backend", daemon.address])
        return args

    def config(self) -> ClusterConfig:
        return ClusterConfig(self.addresses)

    def start_router(
        self,
        extra_args: Optional[Sequence[str]] = None,
        timeout_s: float = 30.0,
    ) -> ServiceProcess:
        if not self.daemons:
            raise RuntimeError("start() the backends before the router")
        router = ServiceProcess(
            [sys.executable, "-m", "repro.service.router"]
            + self.backend_args()
            + list(extra_args or []),
            name="router",
            stderr_path=self._stderr_path("router"),
        )
        router.boot(timeout_s=timeout_s)
        self.router = router
        return router

    def stop_backend(self, index: int, sig: int = signal.SIGTERM) -> ServiceProcess:
        """Signal one backend (SIGTERM → graceful drain) and hand back
        its process so the caller can await/inspect the exit."""
        daemon = self.daemons[index]
        daemon.send_signal(sig)
        return daemon

    def shutdown(self, timeout_s: float = 60.0) -> Dict[str, Optional[int]]:
        """SIGTERM the router then every live daemon; returns exit
        codes by name (None for processes that had to be killed)."""
        exits: Dict[str, Optional[int]] = {}
        procs: List[ServiceProcess] = []
        if self.router is not None:
            procs.append(self.router)
        procs.extend(self.daemons)
        for proc in procs:
            if proc.proc is None:
                continue
            if proc.proc.poll() is None:
                try:
                    proc.send_signal(signal.SIGTERM)
                except ProcessLookupError:
                    pass
        for proc in procs:
            if proc.proc is None:
                continue
            try:
                exits[proc.name] = proc.wait(timeout_s=timeout_s)
            except subprocess.TimeoutExpired:
                proc.kill()
                exits[proc.name] = None
        return exits

    def kill(self) -> None:
        if self.router is not None:
            self.router.kill()
        for daemon in self.daemons:
            daemon.kill()


def main(argv: Optional[List[str]] = None) -> int:
    """Boot a disposable local cluster + router and run until SIGTERM."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro-cluster",
        description="launch K local repro-serve daemons behind a repro-route tier",
    )
    parser.add_argument("--backends", type=int, default=3)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--poll-interval", type=float, default=2.0, metavar="SECONDS"
    )
    options = parser.parse_args(argv)

    cluster = LocalCluster(backends=options.backends, workers=options.workers)
    try:
        cluster.start()
        router = cluster.start_router(
            ["--poll-interval", str(options.poll_interval)]
        )
    except (RuntimeError, OSError, ValueError) as exc:
        print(f"repro-cluster: error: {exc}", file=sys.stderr)
        cluster.kill()
        return 2
    for daemon in cluster.daemons:
        print(f"backend {daemon.address} (pid {daemon.pid})")
    print(f"router {router.address} (pid {router.pid})", flush=True)

    stop = threading.Event()

    def _on_signal(signum: int, frame: object) -> None:
        stop.set()

    for sig in (signal.SIGTERM, signal.SIGINT):
        signal.signal(sig, _on_signal)
    stop.wait()
    exits = cluster.shutdown()
    bad = {name: code for name, code in exits.items() if code != 0}
    if bad:
        print(f"repro-cluster: unclean exits: {bad}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
