"""End-to-end smoke for the sharded tier: K daemons behind a router.

``python -m repro.service.cluster_smoke`` boots a real
:class:`~repro.service.cluster.LocalCluster` (three ``repro-serve``
instances by default) plus a ``repro-route`` front tier as genuine
subprocesses, then drives the eight SPECInt95-proxy workloads through
the router and checks the properties the sharding design promises:

1. **Byte identity through a hop.**  Every workload's response —
   promoted IR text, printed output, return value — matches a fresh
   serial run in this process, exactly as the single-daemon smoke
   demands.  A router in the path must be invisible to results.
2. **Stickiness.**  A warm re-run of the same eight workloads lands
   each on the same backend as the cold pass (via the
   ``X-Repro-Backend`` header) and the router's own
   ``stickiness_hit_rate`` reads at least 0.9.
3. **Failover under loss.**  One backend is SIGTERMed in the middle of
   a concurrent wave; every job in the wave must still come back 200
   and byte-identical (a 429 or 5xx counts as a failed job), and a
   post-kill wave over the surviving shards succeeds too.
4. **Clean teardown.**  The killed backend drains to exit 0, the rest
   of the cluster SIGTERMs to exit 0, and no process group leaks
   workers.

On top of byte identity, one streamed job runs under a caller-minted
trace: the router's relay span and the backend's span tree must all
carry that one ``trace_id``, parent-linked across the hop.

``--metrics-out`` writes the router's final ``/metrics`` document to a
file (CI uploads it as an artifact); ``--artifacts-dir`` tees every
process's stderr for post-mortem and becomes every process's flight
recorder dump directory.  Exit 0 on success, 1 on a failed check, 2 on
harness trouble.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import time
from typing import Dict, List, Optional, Tuple

from repro.bench.workloads import ORDER, WORKLOADS
from repro.observability import TraceContext
from repro.service.client import Response, ServiceClient
from repro.service.cluster import LocalCluster
from repro.service.smoke import SmokeFailure, check, fresh_serial_run

#: Service shape for each backend.  Queues are deep enough that the
#: whole kill wave fits on the surviving shards — this harness proves
#: failover loses nothing; load shedding is the single-daemon smoke's
#: job (repro.service.smoke exercises the 429 path on purpose).
DAEMON_ARGS = ["--max-queue", "32", "--drain-grace", "30"]
ROUTER_ARGS = ["--poll-interval", "0.3", "--down-after", "2"]


def workload_payloads() -> List[Tuple[str, Dict[str, object]]]:
    return [
        (
            name,
            {
                "kind": "minic",
                "source": WORKLOADS[name].source,
                "entry": WORKLOADS[name].entry,
                "args": list(WORKLOADS[name].args),
            },
        )
        for name in ORDER
    ]


def _served_by(response: Response) -> str:
    backend = response.headers.get("x-repro-backend", "")
    check(bool(backend), "response is missing the X-Repro-Backend header")
    return backend


def assert_wave_identical(
    responses: List[Response],
    payloads: List[Tuple[str, Dict[str, object]]],
    references: Dict[str, Tuple[str, List[str], int]],
    where: str,
) -> Dict[str, str]:
    """Every response is a 200 whose result matches the fresh serial
    reference.  Returns workload name → serving backend id."""
    served: Dict[str, str] = {}
    for (name, _payload), response in zip(payloads, responses):
        check(
            response.status == 200,
            f"{where}: workload {name} got {response.status}: "
            f"{response.body[:200]!r}",
        )
        doc = response.json()
        ir, output, return_value = references[name]
        check(doc["ir"] == ir, f"{where}: {name} promoted IR differs")
        check(doc["output"] == output, f"{where}: {name} output differs")
        check(
            doc["return_value"] == return_value,
            f"{where}: {name} return value differs",
        )
        served[name] = _served_by(response)
    return served


async def run_checks(
    cluster: LocalCluster,
    client: ServiceClient,
    metrics_out: Optional[str],
) -> None:
    payloads = workload_payloads()
    references = {
        name: fresh_serial_run(payload) for name, payload in payloads
    }

    # 1. Router liveness: healthz sees every backend, readyz is 200.
    health = (await client.get("/healthz")).json()
    check(health["status"] == "ok", f"router healthz says {health['status']!r}")
    check(
        len(health["backends"]) == len(cluster.daemons),
        f"router tracks {len(health['backends'])} backends, "
        f"expected {len(cluster.daemons)}",
    )
    ready = await client.get("/readyz")
    check(ready.status == 200, f"router readyz says {ready.status}")
    print("cluster-smoke: router health/readiness ok")

    # 2. Cold pass: all eight workloads, byte-identical through the hop.
    cold = await asyncio.gather(*(client.submit(p) for _, p in payloads))
    cold_map = assert_wave_identical(cold, payloads, references, "cold pass")
    spread = sorted(set(cold_map.values()))
    print(
        f"cluster-smoke: cold pass ok ({len(payloads)} workloads "
        f"byte-identical across {len(spread)} backends)"
    )

    # 3. Warm pass: same workloads land on the same shards, and the
    # router's own stickiness meter agrees.
    warm = await asyncio.gather(*(client.submit(p) for _, p in payloads))
    warm_map = assert_wave_identical(warm, payloads, references, "warm pass")
    moved = {n for n in cold_map if warm_map[n] != cold_map[n]}
    check(not moved, f"warm pass re-routed workloads: {sorted(moved)}")
    metrics = (await client.get("/metrics")).json()
    rate = metrics.get("stickiness_hit_rate")
    check(
        rate is not None and rate >= 0.9,
        f"stickiness_hit_rate {rate!r} is below the 0.9 floor",
    )
    print(f"cluster-smoke: warm pass ok (stickiness_hit_rate {rate})")

    # 3b. One streaming job through the router: the NDJSON span
    # timeline must pass through intact, ending in the result event.
    events = await client.submit(payloads[0][1], stream=True)
    check(bool(events), "streaming job through router produced no events")
    check(
        events[-1].get("event") == "result",
        f"streamed job's last event is {events[-1].get('event')!r}",
    )
    print(f"cluster-smoke: streaming ok ({len(events)} NDJSON events relayed)")

    # 3c. End-to-end trace continuity: a caller-minted trace survives
    # the router hop into the backend, and every stamped span — the
    # router's relay span and the daemon/worker spans streamed back —
    # agrees on the one trace id, with the daemon's root span parented
    # on the router's span.
    trace = TraceContext.new()
    events = await client.submit(payloads[0][1], stream=True, trace=trace)
    spans = [e for e in events if e.get("event") == "span"]
    relay = [s for s in spans if s.get("name") == "router:relay"]
    roots = [s for s in spans if s.get("name") == "daemon:job"]
    check(len(relay) == 1, f"expected 1 router:relay span, got {len(relay)}")
    check(len(roots) == 1, f"expected 1 daemon:job span, got {len(roots)}")
    stamped = {
        s["attrs"]["trace_id"]
        for s in spans
        if isinstance(s.get("attrs"), dict) and s["attrs"].get("trace_id")
    }
    check(
        stamped == {trace.trace_id},
        f"trace ids across the hop: {sorted(stamped)}, "
        f"expected exactly {{{trace.trace_id!r}}}",
    )
    relay_span_id = relay[0]["attrs"].get("span_id")
    root_parent = roots[0]["attrs"].get("parent_span_id")
    check(
        bool(relay_span_id) and root_parent == relay_span_id,
        f"daemon:job parent_span_id {root_parent!r} does not link to "
        f"router:relay span_id {relay_span_id!r}",
    )
    check(
        events[-1].get("event") == "result"
        and events[-1].get("trace_id") == trace.trace_id,
        "streamed result event does not carry the caller's trace id",
    )
    print(
        f"cluster-smoke: trace continuity ok ({len(spans)} spans under "
        f"trace {trace.trace_id}, router span parents the backend tree)"
    )

    # 4. Kill a serving backend mid-wave: zero failed jobs.  The wave
    # starts, the sticky home of several workloads gets SIGTERM, and
    # every job must still return 200 byte-identical — served either by
    # the draining backend finishing its in-flight work or by the next
    # shard in HRW order.
    victim_address = cold_map[payloads[0][0]]
    victim_index = next(
        i for i, d in enumerate(cluster.daemons) if d.address == victim_address
    )
    wave = [
        asyncio.ensure_future(client.submit(p))
        for _, p in payloads + payloads  # two rounds: 16 in-flight jobs
    ]
    await asyncio.sleep(0.05)
    victim = cluster.stop_backend(victim_index)
    responses = await asyncio.gather(*wave)
    assert_wave_identical(
        responses, payloads + payloads, references, "kill wave"
    )
    rc = victim.wait(timeout_s=60.0)
    check(rc == 0, f"SIGTERMed backend exited {rc}, expected graceful 0")
    victim.assert_no_orphans()
    print(
        f"cluster-smoke: kill wave ok (backend {victim_address} drained to "
        f"exit 0, {len(wave)} jobs all byte-identical)"
    )

    # 5. Post-kill wave: the survivors own everything now; the dead
    # backend must not be offered new jobs.
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline:
        counts = (await client.get("/healthz")).json()["backend_counts"]
        if counts.get("healthy", 0) == len(cluster.daemons) - 1 and not (
            counts.get("draining", 0)
        ):
            break
        await asyncio.sleep(0.1)
    post = await asyncio.gather(*(client.submit(p) for _, p in payloads))
    post_map = assert_wave_identical(post, payloads, references, "post-kill")
    check(
        victim_address not in post_map.values(),
        f"dead backend {victim_address} was still offered jobs: {post_map}",
    )
    print(
        f"cluster-smoke: post-kill wave ok "
        f"({len(set(post_map.values()))} surviving backends serving)"
    )

    # 6. Final metrics snapshot for the CI artifact.
    doc = (await client.get("/metrics")).json()
    if metrics_out is not None:
        with open(metrics_out, "w") as handle:
            json.dump(doc, handle, indent=2, sort_keys=True)
        print(f"cluster-smoke: wrote router metrics to {metrics_out}")
    def counter(name: str) -> object:
        entry = doc["router"].get(name)
        return 0 if entry is None else entry.get("value", 0)

    unrouted = counter("router.jobs.unrouted")
    check(unrouted == 0, f"router reported {unrouted} unroutable jobs")
    print(
        f"cluster-smoke: metrics ok (failovers={counter('router.failovers')}, "
        f"unrouted=0, jobs={counter('router.jobs_total')})"
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-cluster-smoke",
        description="multi-instance service smoke: K daemons behind repro-route",
    )
    parser.add_argument("--backends", type=int, default=3)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="write the router's final /metrics document here",
    )
    parser.add_argument(
        "--artifacts-dir",
        metavar="DIR",
        help="tee every process's stderr into DIR and dump flight "
        "recorders there",
    )
    options = parser.parse_args(argv)

    daemon_args = list(DAEMON_ARGS)
    router_args = list(ROUTER_ARGS)
    if options.artifacts_dir:
        os.makedirs(options.artifacts_dir, exist_ok=True)
        # Point every process's crash flight recorder at the artifacts
        # dir so breaker trips, engine crashes, and drain dumps land
        # where CI collects them.
        daemon_args += ["--artifacts-dir", options.artifacts_dir]
        router_args += ["--artifacts-dir", options.artifacts_dir]
    cluster = LocalCluster(
        backends=options.backends,
        workers=options.workers,
        daemon_args=daemon_args,
        stderr_dir=options.artifacts_dir,
    )
    try:
        cluster.start()
        router = cluster.start_router(router_args)
    except (RuntimeError, OSError, ValueError) as exc:
        print(f"cluster-smoke: boot error: {exc}", file=sys.stderr)
        cluster.kill()
        return 2
    print(
        f"cluster-smoke: {len(cluster.daemons)} backends up "
        f"({', '.join(d.address for d in cluster.daemons)}), "
        f"router at {router.address} (pid {router.pid})"
    )

    client = ServiceClient(router.host, router.port, timeout_s=60.0)
    try:
        asyncio.run(run_checks(cluster, client, options.metrics_out))
        exits = cluster.shutdown()
        bad = {name: code for name, code in exits.items() if code != 0}
        check(not bad, f"unclean shutdown exits: {bad}")
        router.assert_no_orphans()
        for daemon in cluster.daemons:
            daemon.assert_no_orphans()
    except SmokeFailure as exc:
        print(f"cluster-smoke: FAIL: {exc}", file=sys.stderr)
        cluster.kill()
        return 1
    except Exception as exc:  # noqa: BLE001 - report, don't hang CI
        print(
            f"cluster-smoke: error: {type(exc).__name__}: {exc}",
            file=sys.stderr,
        )
        cluster.kill()
        return 2
    print("cluster-smoke: all checks passed")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
