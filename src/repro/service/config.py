"""Service configuration: one frozen-ish bag of knobs for the daemon.

Everything that shapes the daemon's failure behaviour lives here —
queue bounds, deadlines, breaker thresholds, drain grace, slow-loris
timeouts — so tests can build a deliberately tiny service (one worker,
a two-slot queue, millisecond deadlines) and production-ish callers can
keep the defaults.  ``as_dict()`` is what ``/healthz`` reports, making
a running daemon's envelope inspectable.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.frontend.limits import InputLimits


class ServiceConfig:
    """Tunables for :class:`~repro.service.daemon.PromotionDaemon`.

    ``workers`` sizes the warm thread pool; promotion jobs that
    themselves request ``jobs > 1`` additionally spin the resilient
    process executor underneath a pool thread.  ``max_queue`` bounds
    *waiting* admissions on top of the ``workers`` in-flight slots —
    beyond that the service sheds load with a 429.  ``default_deadline_s``
    applies when a job names none; ``max_deadline_s`` clamps what a job
    may ask for.  ``breaker_threshold`` consecutive engine crashes open
    the circuit for ``breaker_reset_s`` (doubling per re-trip).
    ``drain_grace_s`` is how long a SIGTERM drain waits for in-flight
    jobs before giving up on them.  ``header_timeout_s`` /
    ``body_timeout_s`` are the slow-loris guards; ``max_body_bytes``
    caps request payloads.  ``limits`` are the frontend input limits
    applied to every submitted source.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        max_queue: int = 8,
        default_deadline_s: float = 30.0,
        max_deadline_s: float = 120.0,
        breaker_threshold: int = 3,
        breaker_reset_s: float = 5.0,
        drain_grace_s: float = 10.0,
        heartbeat_s: float = 0.5,
        header_timeout_s: float = 5.0,
        body_timeout_s: float = 10.0,
        max_body_bytes: int = 2_500_000,
        limits: Optional[InputLimits] = None,
        result_cache_size: int = 64,
        artifacts_dir: Optional[str] = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {max_queue}")
        if default_deadline_s <= 0 or max_deadline_s <= 0:
            raise ValueError("deadlines must be > 0")
        if default_deadline_s > max_deadline_s:
            raise ValueError(
                f"default_deadline_s ({default_deadline_s}) exceeds "
                f"max_deadline_s ({max_deadline_s})"
            )
        if breaker_threshold < 1:
            raise ValueError(f"breaker_threshold must be >= 1, got {breaker_threshold}")
        for name, value in (
            ("breaker_reset_s", breaker_reset_s),
            ("drain_grace_s", drain_grace_s),
            ("heartbeat_s", heartbeat_s),
            ("header_timeout_s", header_timeout_s),
            ("body_timeout_s", body_timeout_s),
        ):
            if value <= 0:
                raise ValueError(f"{name} must be > 0, got {value}")
        if max_body_bytes < 1:
            raise ValueError(f"max_body_bytes must be >= 1, got {max_body_bytes}")
        if result_cache_size < 0:
            raise ValueError(f"result_cache_size must be >= 0, got {result_cache_size}")
        self.host = host
        self.port = port
        self.workers = workers
        self.max_queue = max_queue
        self.default_deadline_s = default_deadline_s
        self.max_deadline_s = max_deadline_s
        self.breaker_threshold = breaker_threshold
        self.breaker_reset_s = breaker_reset_s
        self.drain_grace_s = drain_grace_s
        self.heartbeat_s = heartbeat_s
        self.header_timeout_s = header_timeout_s
        self.body_timeout_s = body_timeout_s
        self.max_body_bytes = max_body_bytes
        self.limits = limits or InputLimits()
        self.result_cache_size = result_cache_size
        #: Where the flight recorder dumps its ring on crash, breaker
        #: trip, quarantine, or drain; ``None`` disables dumping (events
        #: still accumulate in memory for ``/healthz`` debugging).
        self.artifacts_dir = artifacts_dir

    def as_dict(self) -> Dict[str, object]:
        return {
            "host": self.host,
            "port": self.port,
            "workers": self.workers,
            "max_queue": self.max_queue,
            "default_deadline_s": self.default_deadline_s,
            "max_deadline_s": self.max_deadline_s,
            "breaker_threshold": self.breaker_threshold,
            "breaker_reset_s": self.breaker_reset_s,
            "drain_grace_s": self.drain_grace_s,
            "heartbeat_s": self.heartbeat_s,
            "header_timeout_s": self.header_timeout_s,
            "body_timeout_s": self.body_timeout_s,
            "max_body_bytes": self.max_body_bytes,
            "limits": self.limits.as_dict(),
            "result_cache_size": self.result_cache_size,
            "artifacts_dir": self.artifacts_dir,
        }
