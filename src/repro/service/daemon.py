"""Promotion-as-a-service: the long-lived asyncio daemon.

One process, one event loop, four moving parts:

* a hand-rolled HTTP/1.1 listener (``asyncio.start_server``; stdlib
  only, ``Connection: close`` per request) plus an optional
  stdio-JSONL transport for pipe-driven clients;
* the :class:`~repro.service.admission.AdmissionController` in front of
  the :class:`~repro.service.engine.PromotionEngine`'s warm worker
  pool — bounded queueing, honest 429 shedding, drain-aware;
* a :class:`~repro.service.breaker.CircuitBreaker` that opens after a
  storm of engine-level failures and half-opens after backoff;
* a watchdog heartbeat task whose age backs ``/healthz`` — if the event
  loop wedges, the age grows and an external monitor can tell.

Request lifecycle: parse (slow-loris guarded) → validate → breaker
check → admission slot → dispatch with a deadline → structured JSON
response.  ``POST /v1/jobs?stream=1`` instead streams NDJSON span
events while the job runs, then the final result — observability as a
per-request feed, not just a post-hoc file.

Graceful shutdown (SIGTERM/SIGINT): stop accepting, reject queued
admissions with 503s, give in-flight jobs a bounded grace to finish
(they complete or were already degraded/quarantined by the resilient
executor), then stop the loop.  The invariant the tests pin: nothing a
client does — chaos, shedding, disconnects, poison jobs — changes any
*completed* job's bytes versus a fresh serial run, because jobs are
shared-nothing and every shared structure (analysis caches, result
cache) is fingerprint- or full-payload-keyed.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import sys
import time
from typing import Callable, Dict, Optional, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.observability import FlightRecorder, Observability, TraceContext
from repro.observability import flightrecorder as flightrecorder_mod
from repro.observability.prometheus import (
    CONTENT_TYPE as PROMETHEUS_CONTENT_TYPE,
)
from repro.observability.prometheus import document_samples, exposition, wants_text
from repro.service.admission import AdmissionController
from repro.service.breaker import CircuitBreaker
from repro.service.config import ServiceConfig
from repro.service.engine import EngineCrashError, PromotionEngine
from repro.service.errors import (
    JobValidationError,
    PayloadTooLargeError,
    RequestTimeoutError,
    ServiceError,
    ServiceUnavailableError,
)
from repro.service.jobs import JobRequest

_SPAN_POLL_S = 0.05
#: readuntil() buffer bound for the request head.
_HEADER_LIMIT = 65536


class PromotionDaemon:
    """The service: composition root and request router."""

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        self.engine = PromotionEngine(
            workers=self.config.workers,
            limits=self.config.limits,
            result_cache_size=self.config.result_cache_size,
        )
        self.breaker = CircuitBreaker(
            threshold=self.config.breaker_threshold,
            reset_s=self.config.breaker_reset_s,
        )
        # Created in start() — the semaphore must bind to the running loop.
        self.admission: Optional[AdmissionController] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._heartbeat = 0.0
        self._started_at = 0.0
        self._watchdog_task: Optional[asyncio.Task] = None
        self._done: Optional[asyncio.Event] = None
        self._draining = False
        self.drained_clean: Optional[bool] = None
        #: The crash flight recorder: a bounded ring of recent service
        #: events, dumped to ``config.artifacts_dir`` on engine crash,
        #: breaker trip, quarantine, or SIGTERM drain.
        self.flight = FlightRecorder(
            "daemon", artifacts_dir=self.config.artifacts_dir
        )

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind the listener and arm the daemon; returns (host, port)."""
        self.admission = AdmissionController(
            capacity=self.config.workers, max_queue=self.config.max_queue
        )
        self._done = asyncio.Event()
        self._started_at = time.monotonic()
        self._heartbeat = self._started_at
        # Ambient install lets deep modules (engine, breaker, resilient
        # executor) record into the daemon's ring without plumbing.
        flightrecorder_mod.install(self.flight)
        self.flight.record("daemon.start", workers=self.config.workers)
        self._watchdog_task = asyncio.ensure_future(self._watchdog())
        self._server = await asyncio.start_server(
            self._handle_conn,
            self.config.host,
            self.config.port,
            limit=_HEADER_LIMIT,
        )
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT → graceful drain.

        Deliberately ``signal.signal``, not ``loop.add_signal_handler``:
        the loop variant registers a C-level handler that writes into a
        wakeup pipe, and promotion jobs with ``jobs != 1`` *fork* worker
        processes that inherit both.  A worker the pool later SIGTERMs
        (routine after a chaos crash) would write into the shared pipe
        and the daemon's loop would read it as its own shutdown signal.
        The pid guard gives forked children back the default disposition
        and re-delivers, so pool termination keeps working too."""
        loop = asyncio.get_event_loop()
        owner_pid = os.getpid()

        def _on_signal(signum: int, frame: object) -> None:
            if os.getpid() != owner_pid:
                signal.signal(signum, signal.SIG_DFL)
                os.kill(os.getpid(), signum)
                return
            loop.call_soon_threadsafe(
                lambda: asyncio.ensure_future(self.drain_and_stop())
            )

        for sig in (signal.SIGTERM, signal.SIGINT):
            signal.signal(sig, _on_signal)

    async def serve_forever(self) -> None:
        assert self._done is not None
        await self._done.wait()

    async def drain_and_stop(self) -> None:
        """Graceful shutdown: stop accepting, drain in-flight, stop."""
        if self._draining:
            return
        self._draining = True
        self.flight.record("daemon.drain", uptime_s=time.monotonic() - self._started_at)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        assert self.admission is not None
        self.drained_clean = await self.admission.drain(self.config.drain_grace_s)
        # A clean drain joins the (now idle) workers; never block on
        # threads that were abandoned past their deadlines.
        self.engine.shutdown(
            wait=bool(self.drained_clean) and self.engine.abandoned == 0
        )
        self.flight.dump("sigterm-drain")
        if self._watchdog_task is not None:
            self._watchdog_task.cancel()
        if self._done is not None:
            self._done.set()

    async def _watchdog(self) -> None:
        while True:
            self._heartbeat = time.monotonic()
            await asyncio.sleep(self.config.heartbeat_s)

    # -- the shared job path (HTTP and stdio both land here) -------------

    async def handle_job_payload(
        self, payload: object, observability=None, trace=None
    ):
        """Validate → breaker → admission → dispatch.  Returns a
        :class:`~repro.service.jobs.JobResult`; raises
        :class:`ServiceError` for every structured rejection.  ``trace``
        (or the envelope's own ``trace`` field, for headerless
        transports) stamps the result with its trace id."""
        job = JobRequest.from_payload(payload)
        trace = trace or job.trace
        deadline_s = min(
            job.deadline_s
            if job.deadline_s is not None
            else self.config.default_deadline_s,
            self.config.max_deadline_s,
        )
        if not self.breaker.allow():
            self.flight.record("admission.rejected", reason="circuit-open")
            raise ServiceUnavailableError(
                "circuit breaker is open after repeated engine failures",
                reason="circuit-open",
                retry_after_s=self.breaker.retry_after_s() or self.config.breaker_reset_s,
            )
        job_id = self.engine.next_job_id()
        assert self.admission is not None
        started = time.monotonic()
        try:
            async with self.admission.slot():
                self.flight.record("admission.accepted", job_id=job_id)
                result = await self.engine.run_job(
                    job, deadline_s, job_id, observability
                )
        except EngineCrashError:
            self.breaker.record_failure()
            raise
        except ServiceError as exc:
            self.breaker.record_neutral()
            self.flight.record(
                "job.rejected",
                job_id=job_id,
                error=type(exc).__name__,
                reason=getattr(exc, "reason", None),
            )
            raise
        else:
            self.breaker.record_success()
            self.admission.observe_duration(time.monotonic() - started)
            self.flight.record(
                "job.completed",
                job_id=job_id,
                degraded=result.degraded,
                duration_ms=result.duration_ms,
            )
            if trace is not None:
                result.trace_id = trace.trace_id
            return result

    # -- HTTP ------------------------------------------------------------

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            await self._handle_request(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass  # client went away mid-conversation; nothing to answer
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_request(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            head = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"), timeout=self.config.header_timeout_s
            )
        except asyncio.TimeoutError:
            await self._send_error(
                writer, RequestTimeoutError("request head did not arrive in time")
            )
            return
        except asyncio.LimitOverrunError:
            await self._send_error(
                writer, JobValidationError("request head exceeds the size limit")
            )
            return
        except (asyncio.IncompleteReadError, ConnectionError):
            return  # dropped connection before a full request head

        try:
            method, target, headers = _parse_head(head)
        except ValueError as exc:
            await self._send_error(writer, JobValidationError(str(exc)))
            return

        parts = urlsplit(target)
        path = parts.path
        query = parse_qs(parts.query)

        if method == "GET" and path == "/healthz":
            await self._send_json(writer, 200, self.health())
            return
        if method == "GET" and path == "/readyz":
            status, body = await self.readiness()
            await self._send_json(writer, status, body)
            return
        if method == "GET" and path == "/metrics":
            if wants_text(headers.get("accept")):
                await self._send_text(
                    writer, 200, self.prometheus_metrics(), PROMETHEUS_CONTENT_TYPE
                )
            else:
                await self._send_json(writer, 200, self.metrics())
            return
        if method != "POST" or path != "/v1/jobs":
            await self._send_json(
                writer,
                404,
                {"error": "not-found", "message": f"no route for {method} {path}"},
            )
            return

        try:
            payload = await self._read_body(reader, headers)
        except ServiceError as exc:
            await self._send_error(writer, exc)
            return

        trace = TraceContext.from_traceparent(headers.get("traceparent"))
        stream = query.get("stream", ["0"])[-1] not in ("0", "", "false")
        if stream:
            await self._run_streaming_job(writer, payload, trace)
        else:
            # Non-streaming jobs stay cacheable (no observability bundle);
            # the trace id is echoed so a caller can still correlate.
            extra = {"X-Repro-Trace-Id": trace.trace_id} if trace else None
            try:
                result = await self.handle_job_payload(payload, trace=trace)
            except ServiceError as exc:
                await self._send_json(
                    writer, exc.http_status, exc.as_dict(), extra_headers=extra
                )
            except EngineCrashError as exc:
                await self._send_json(
                    writer,
                    500,
                    {"error": "engine-failure", "message": str(exc)},
                    extra_headers=extra,
                )
            else:
                await self._send_json(
                    writer, 200, result.as_dict(), extra_headers=extra
                )

    async def _read_body(
        self, reader: asyncio.StreamReader, headers: Dict[str, str]
    ) -> object:
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise JobValidationError("content-length is not an integer") from None
        if length < 0:
            raise JobValidationError("content-length is negative")
        if length > self.config.max_body_bytes:
            raise PayloadTooLargeError(
                f"request body of {length} bytes exceeds the "
                f"{self.config.max_body_bytes}-byte limit"
            )
        try:
            body = await asyncio.wait_for(
                reader.readexactly(length), timeout=self.config.body_timeout_s
            )
        except asyncio.TimeoutError:
            raise RequestTimeoutError(
                f"request body did not arrive within "
                f"{self.config.body_timeout_s:g}s"
            ) from None
        except asyncio.IncompleteReadError:
            raise JobValidationError(
                "connection closed before the declared body arrived"
            ) from None
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise JobValidationError(f"request body is not valid JSON: {exc}") from None

    async def _run_streaming_job(
        self,
        writer: asyncio.StreamWriter,
        payload: object,
        trace: Optional[TraceContext] = None,
    ) -> None:
        """NDJSON streaming: span events as they happen, then the final
        result (or error) as the last line.  A client that disconnects
        mid-stream stops receiving but the job runs to completion — the
        admission slot is released by the job, not the socket.

        Every streamed job runs under a distributed trace: ``trace``
        (from the caller's ``traceparent`` header) or a fresh one.  A
        ``daemon:job`` span wraps the whole dispatch so the pipeline's
        spans — including worker-process spans merged back by the
        scheduler — hang off one connected tree."""
        trace = trace or TraceContext.new()
        obs = Observability.recording(trace_id=trace.trace_id)
        await _write_raw(
            writer,
            (
                "HTTP/1.1 200 OK\r\n"
                "Content-Type: application/x-ndjson\r\n"
                f"X-Repro-Trace-Id: {trace.trace_id}\r\n"
                "Connection: close\r\n\r\n"
            ).encode("ascii"),
        )

        async def _traced() -> object:
            attrs: Dict[str, object] = {}
            if trace.parent_span_id:
                attrs["parent_span_id"] = trace.parent_span_id
            with obs.tracer.span("daemon:job", category="service", **attrs):
                return await self.handle_job_payload(payload, obs, trace=trace)

        task = asyncio.ensure_future(_traced())
        sent = 0
        client_gone = False
        done = False
        while not done:
            done = task.done()
            # Drain spans *after* sampling done-ness so the records a
            # fast job appended before we noticed still stream out.
            records = obs.tracer.records
            while sent < len(records):
                line = {"event": "span"}
                line.update(records[sent].as_dict())
                sent += 1
                if not client_gone:
                    client_gone = not await _write_line(writer, line)
            if not done:
                await asyncio.wait({task}, timeout=_SPAN_POLL_S)
        try:
            result = task.result()
        except ServiceError as exc:
            final = {"event": "error", "status": exc.http_status}
            final.update(exc.as_dict())
        except EngineCrashError as exc:
            final = {
                "event": "error",
                "status": 500,
                "error": "engine-failure",
                "message": str(exc),
            }
        else:
            final = {"event": "result"}
            final.update(result.as_dict())
        final["trace_id"] = trace.trace_id
        if not client_gone:
            await _write_line(writer, final)

    async def _send_error(
        self, writer: asyncio.StreamWriter, error: ServiceError
    ) -> None:
        await self._send_json(writer, error.http_status, error.as_dict())

    async def _send_json(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        body: Dict[str, object],
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        payload = json.dumps(body).encode("utf-8")
        await self._send_body(
            writer, status, payload, "application/json", extra_headers
        )

    async def _send_text(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        text: str,
        content_type: str,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        await self._send_body(
            writer, status, text.encode("utf-8"), content_type, extra_headers
        )

    async def _send_body(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: bytes,
        content_type: str,
        extra_headers: Optional[Dict[str, str]] = None,
    ) -> None:
        lines = [
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Status')}",
            f"Content-Type: {content_type}",
            f"Content-Length: {len(payload)}",
            "Connection: close",
        ]
        for name, value in (extra_headers or {}).items():
            lines.append(f"{name}: {value}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("ascii")
        await _write_raw(writer, head + payload)

    # -- health ----------------------------------------------------------

    def health(self) -> Dict[str, object]:
        now = time.monotonic()
        return {
            "status": "draining" if self._draining else "ok",
            "uptime_s": round(now - self._started_at, 3),
            "heartbeat_age_s": round(now - self._heartbeat, 3),
            "admission": self.admission.as_dict() if self.admission else None,
            "breaker": self.breaker.as_dict(),
            "engine": self.engine.as_dict(),
            "config": self.config.as_dict(),
        }

    async def readiness(self) -> Tuple[int, Dict[str, object]]:
        """(status, body) for ``/readyz``: 200 only when the daemon is
        accepting and the pool answers a live probe."""
        if self._draining:
            return 503, {"ready": False, "reason": "draining"}
        if self.breaker.state == "open" and self.breaker.retry_after_s() > 0:
            return 503, {
                "ready": False,
                "reason": "circuit-open",
                "retry_after_s": round(self.breaker.retry_after_s(), 3),
            }
        alive = await self.engine.probe(timeout_s=self.config.heartbeat_s * 4)
        if not alive:
            return 503, {"ready": False, "reason": "worker-pool-wedged"}
        return 200, {"ready": True}

    def metrics(self) -> Dict[str, object]:
        return {
            "admission": self.admission.as_dict() if self.admission else None,
            "breaker": self.breaker.as_dict(),
            "engine": self.engine.as_dict(),
        }

    def prometheus_metrics(self) -> str:
        """The same counters as :meth:`metrics`, rendered in Prometheus
        text exposition format (``Accept: text/plain`` negotiation)."""
        return exposition(document_samples(self.metrics(), "repro_daemon"))

    # -- stdio-JSONL -----------------------------------------------------

    async def serve_stdio(self) -> None:
        """One JSON request envelope per stdin line, one JSON response
        per stdout line: ``{"id": ..., "job": {...}}`` in,
        ``{"id": ..., "result"|"error": {...}}`` out.  Lines are
        answered as their jobs finish (not in order); EOF drains."""
        loop = asyncio.get_event_loop()
        pending = set()
        write_lock = asyncio.Lock()

        async def respond(doc: Dict[str, object]) -> None:
            async with write_lock:
                sys.stdout.write(json.dumps(doc) + "\n")
                sys.stdout.flush()

        async def one(line: str) -> None:
            envelope_id: object = None
            try:
                envelope = json.loads(line)
                if not isinstance(envelope, dict) or "job" not in envelope:
                    raise JobValidationError(
                        'stdio envelope must be {"id": ..., "job": {...}}'
                    )
                envelope_id = envelope.get("id")
                result = await self.handle_job_payload(envelope["job"])
            except json.JSONDecodeError as exc:
                await respond(
                    {
                        "id": envelope_id,
                        "error": JobValidationError(
                            f"stdio line is not valid JSON: {exc}"
                        ).as_dict(),
                    }
                )
            except ServiceError as exc:
                await respond({"id": envelope_id, "error": exc.as_dict()})
            except EngineCrashError as exc:
                await respond(
                    {
                        "id": envelope_id,
                        "error": {"error": "engine-failure", "message": str(exc)},
                    }
                )
            else:
                await respond({"id": envelope_id, "result": result.as_dict()})

        while True:
            line = await loop.run_in_executor(None, sys.stdin.readline)
            if not line:
                break
            if not line.strip():
                continue
            task = asyncio.ensure_future(one(line))
            pending.add(task)
            task.add_done_callback(pending.discard)
        if pending:
            await asyncio.wait(pending)
        await self.drain_and_stop()


# -- module helpers -------------------------------------------------------

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    408: "Request Timeout",
    413: "Payload Too Large",
    422: "Unprocessable Entity",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


def _parse_head(head: bytes) -> Tuple[str, str, Dict[str, str]]:
    try:
        text = head.decode("latin-1")
    except UnicodeDecodeError:  # pragma: no cover - latin-1 decodes anything
        raise ValueError("request head is not decodable")
    lines = text.split("\r\n")
    parts = lines[0].split(" ")
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise ValueError(f"malformed request line {lines[0]!r}")
    method, target = parts[0], parts[1]
    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        name, sep, value = line.partition(":")
        if not sep:
            raise ValueError(f"malformed header line {line!r}")
        headers[name.strip().lower()] = value.strip()
    return method, target, headers


async def _write_raw(writer: asyncio.StreamWriter, data: bytes) -> bool:
    """Best-effort write; False means the client is gone."""
    try:
        writer.write(data)
        await writer.drain()
    except (ConnectionError, OSError):
        return False
    return True


async def _write_line(writer: asyncio.StreamWriter, doc: Dict[str, object]) -> bool:
    return await _write_raw(writer, (json.dumps(doc) + "\n").encode("utf-8"))


async def run_daemon(
    config: Optional[ServiceConfig] = None,
    stdio: bool = False,
    announce: Optional[Callable[[str], None]] = None,
) -> None:
    """Build, start, and run a daemon until it drains.

    ``announce`` receives the one-line ``listening on HOST:PORT``
    banner (smoke tooling parses it); HTTP always starts — stdio mode
    runs the JSONL loop alongside it.
    """
    daemon = PromotionDaemon(config)
    host, port = await daemon.start()
    daemon.install_signal_handlers()
    if announce is not None:
        announce(f"listening on {host}:{port}")
    if stdio:
        await daemon.serve_stdio()
    else:
        await daemon.serve_forever()
