"""The promotion engine: a warm worker pool behind the daemon.

Each pool thread owns a persistent :class:`AnalysisCache` — the warm
state a long-lived service amortizes across requests.  The cache is
fingerprint-keyed, so sharing it across unrelated jobs can only change
speed, never results (a different program simply misses).  Jobs that
request ``jobs != 1`` additionally spin the resilient process executor
underneath their pool thread, and the job's deadline is propagated into
:class:`~repro.robustness.executor.ResilienceOptions` as the
per-function timeout, so a hung worker process is killed by the
executor's own watchdog rather than orphaned.  Those process workers
come from the process-wide **warm pools** (:mod:`repro.parallel.pool`):
they survive across requests — later parallel jobs skip pool spin-up
and reuse the published module epochs — are reported in ``/healthz``
(``warm_pools``), and are drained by :meth:`PromotionEngine.shutdown`.

Deadline semantics for the pool thread itself: Python threads cannot be
interrupted, so a job that outlives its deadline is **abandoned** — the
caller gets a 504 immediately, the thread runs to completion in the
background, and the engine accounts for it (``abandoned`` gauge, slot
pressure visible in ``/healthz``).  An abandoned job's result is
discarded, never cached; shared state stays consistent because every
job builds its own module from source (shared-nothing) and the analysis
caches validate by fingerprint.

Failure taxonomy: anything the *client* caused (malformed source, input
over limits, runtime error in the submitted program) raises a
:class:`~repro.service.errors.ServiceError` subclass and does NOT count
against the circuit breaker; anything else is wrapped in
:class:`EngineCrashError` and does.

The result cache memoizes clean, default-option runs only
(:meth:`JobRequest.is_default_run`), keyed by a sha256 of the full
payload — a hit is byte-identical to a fresh serial run by
construction, because that is exactly what produced it.
"""

from __future__ import annotations

import asyncio
import collections
import concurrent.futures
import hashlib
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Optional

from repro.frontend.errors import CompileError, FrontendLimitError
from repro.observability import flightrecorder
from repro.frontend.limits import InputLimits
from repro.frontend.lower import compile_source
from repro.ir.module import Module
from repro.ir.parser import IRParseError, parse_module
from repro.ir.printer import print_module
from repro.parallel.cache import AnalysisCache
from repro.profile.interp import Interpreter, InterpreterError
from repro.promotion.pipeline import PromotionPipeline
from repro.robustness.executor import ResilienceOptions
from repro.service.errors import DeadlineExceededError, JobInputError, ServiceError
from repro.service.jobs import JobRequest, JobResult


class EngineCrashError(RuntimeError):
    """An engine-level failure — the class the circuit breaker counts."""


class PromotionEngine:
    """Warm thread pool + per-thread analysis caches + result cache."""

    def __init__(
        self,
        workers: int = 2,
        limits: Optional[InputLimits] = None,
        result_cache_size: int = 64,
    ) -> None:
        self.workers = workers
        self.limits = limits or InputLimits()
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="promotion-worker"
        )
        self._thread_state = threading.local()
        self._result_cache: "collections.OrderedDict[str, JobResult]" = (
            collections.OrderedDict()
        )
        self._result_cache_size = result_cache_size
        self._cache_lock = threading.Lock()
        self._counter_lock = threading.Lock()
        self.jobs_total = 0
        self.degraded_total = 0
        self.failed_total = 0
        self.abandoned = 0
        self.result_cache_hits = 0
        self._job_seq = 0

    # -- identity --------------------------------------------------------

    def next_job_id(self) -> str:
        with self._counter_lock:
            self._job_seq += 1
            return f"job-{self._job_seq}"

    def _thread_cache(self) -> AnalysisCache:
        cache = getattr(self._thread_state, "analysis_cache", None)
        if cache is None:
            cache = AnalysisCache()
            self._thread_state.analysis_cache = cache
        return cache

    # -- the synchronous job body (runs in a pool thread) ----------------

    def _build_module(self, job: JobRequest) -> Module:
        if job.kind == "minic":
            try:
                return compile_source(job.source, limits=self.limits)
            except FrontendLimitError as exc:
                raise JobInputError(str(exc), limit=exc.limit) from None
            except CompileError as exc:
                raise JobInputError(f"compile error: {exc}") from None
        try:
            self.limits.check_source(job.source)
        except FrontendLimitError as exc:
            raise JobInputError(str(exc), limit=exc.limit) from None
        try:
            return parse_module(job.source)
        except IRParseError as exc:
            raise JobInputError(f"IR parse error: {exc}") from None

    def _resilience_for(self, job: JobRequest, deadline_s: float):
        if job.jobs == 1:
            return None
        if not job.wants_resilience and job.chaos is None:
            # Plain parallel job: still propagate the deadline so a hung
            # worker process is killed by the executor, not orphaned.
            return ResilienceOptions(timeout_s=deadline_s)
        return ResilienceOptions(
            timeout_s=job.timeout_s if job.timeout_s is not None else deadline_s,
            retries=job.retries if job.retries is not None else 2,
            seed=job.chaos.seed if job.chaos is not None else 0,
            chaos=job.chaos,
        )

    def execute(
        self,
        job: JobRequest,
        deadline_s: float,
        job_id: str,
        observability=None,
    ) -> JobResult:
        """Run one job to completion in the calling thread.

        Client-caused problems raise :class:`ServiceError` subclasses;
        anything else escapes as :class:`EngineCrashError`.  Passing an
        ``observability`` bundle records the run's spans into it (for
        per-request streaming) and bypasses the result cache — a
        streamed request always runs fresh so its spans are real.
        """
        started = time.perf_counter()
        cache_key = None
        if job.is_default_run and self._result_cache_size and observability is None:
            material = job.cache_key_material().encode()
            cache_key = hashlib.sha256(material).hexdigest()
            with self._cache_lock:
                hit = self._result_cache.get(cache_key)
                if hit is not None:
                    self._result_cache.move_to_end(cache_key)
            if hit is not None:
                with self._counter_lock:
                    self.result_cache_hits += 1
                    self.jobs_total += 1
                return JobResult(
                    job_id=job_id,
                    ir=hit.ir,
                    output=list(hit.output),
                    return_value=hit.return_value,
                    output_matches=hit.output_matches,
                    degraded=hit.degraded,
                    quarantined=list(hit.quarantined),
                    rolled_back=list(hit.rolled_back),
                    cache_stats=hit.cache_stats,
                    duration_ms=(time.perf_counter() - started) * 1e3,
                    cached=True,
                )

        try:
            result = self._run_pipeline(job, deadline_s, job_id, started, observability)
        except ServiceError:
            with self._counter_lock:
                self.jobs_total += 1
                self.failed_total += 1
            raise
        except Exception as exc:
            with self._counter_lock:
                self.jobs_total += 1
                self.failed_total += 1
            recorder = flightrecorder.ambient()
            recorder.record(
                "engine.crash",
                job_id=job_id,
                error_type=type(exc).__name__,
                detail=str(exc).splitlines()[0] if str(exc) else None,
            )
            recorder.dump(f"engine-crash-{job_id}")
            raise EngineCrashError(
                f"engine failure on {job_id}: {type(exc).__name__}: {exc}"
            ) from exc
        with self._counter_lock:
            self.jobs_total += 1
            if result.degraded:
                self.degraded_total += 1
        # Only clean default runs are cacheable: a degraded run's output
        # is still sound, but we never want to pin degradation.
        if cache_key is not None and not result.degraded and result.output_matches:
            with self._cache_lock:
                self._result_cache[cache_key] = result
                self._result_cache.move_to_end(cache_key)
                while len(self._result_cache) > self._result_cache_size:
                    self._result_cache.popitem(last=False)
        return result

    def _run_pipeline(
        self,
        job: JobRequest,
        deadline_s: float,
        job_id: str,
        started: float,
        observability=None,
    ) -> JobResult:
        module = self._build_module(job)
        pipeline_kwargs: Dict[str, object] = dict(
            entry=job.entry,
            args=job.args,
            jobs=job.jobs,
            use_cache=job.use_cache,
            resilience=self._resilience_for(job, deadline_s),
        )
        if observability is not None:
            pipeline_kwargs["observability"] = observability
        if job.max_steps is not None:
            pipeline_kwargs["max_steps"] = job.max_steps
        if job.jobs == 1 and job.use_cache:
            # The warm path: this thread's persistent fingerprint-keyed
            # cache.  Parallel jobs use per-worker caches instead.
            pipeline_kwargs["analysis_cache"] = self._thread_cache()
        pipeline = PromotionPipeline(**pipeline_kwargs)
        result = pipeline.run(module)

        interp_kwargs: Dict[str, object] = {}
        if job.max_steps is not None:
            interp_kwargs["max_steps"] = job.max_steps
        try:
            run = Interpreter(module, **interp_kwargs).run(job.entry, job.args)
        except InterpreterError as exc:
            raise JobInputError(f"execution failed: {exc}") from None

        diags = result.diagnostics
        return JobResult(
            job_id=job_id,
            ir=print_module(module),
            output=[" ".join(str(v) for v in values) for values in run.output],
            return_value=run.return_value & 0xFF,
            output_matches=result.output_matches,
            degraded=diags.degraded,
            quarantined=list(diags.quarantined_functions),
            rolled_back=list(diags.rolled_back_functions),
            cache_stats=(
                result.cache_stats.as_dict()
                if result.cache_stats is not None
                else None
            ),
            duration_ms=(time.perf_counter() - started) * 1e3,
        )

    # -- the async dispatch (runs in the event loop) ---------------------

    async def run_job(
        self,
        job: JobRequest,
        deadline_s: float,
        job_id: str,
        observability=None,
    ) -> JobResult:
        """Dispatch a job onto the pool with a wall-clock deadline.

        On deadline the caller gets :class:`DeadlineExceededError`
        immediately and the thread is abandoned (see module docstring);
        cancellation (client disconnect) abandons the same way.  The
        raw :class:`concurrent.futures.Future` is kept alongside the
        asyncio wrapper because only *its* ``cancel()`` tells the truth
        about whether the pool thread already started — the wrapper's
        always claims success.
        """
        cfuture = self._pool.submit(
            self.execute, job, deadline_s, job_id, observability
        )
        future = asyncio.wrap_future(cfuture)
        try:
            done, pending = await asyncio.wait({future}, timeout=deadline_s)
        except asyncio.CancelledError:
            self._abandon(cfuture, future)
            raise
        if pending:
            self._abandon(cfuture, future)
            raise DeadlineExceededError(
                f"{job_id} exceeded its {deadline_s:g}s deadline"
            )
        return future.result()

    def _abandon(
        self, cfuture: "concurrent.futures.Future", future: "asyncio.Future"
    ) -> None:
        future.cancel()  # the loop will never consume the result
        if cfuture.cancel():
            return  # never started: no thread to account for
        # Already running: the thread finishes in the background and the
        # gauge drops when it does.  add_done_callback fires immediately
        # if it slipped to done between the cancel and here, so the
        # increment/decrement always pair up.
        with self._counter_lock:
            self.abandoned += 1

        def _reap(done_future: "concurrent.futures.Future") -> None:
            with self._counter_lock:
                self.abandoned -= 1

        cfuture.add_done_callback(_reap)

    async def probe(self, timeout_s: float = 1.0) -> bool:
        """Readiness probe: can the pool still turn a trivial job
        around?  False means the pool is wedged (all threads abandoned
        or deadlocked)."""
        loop = asyncio.get_event_loop()
        future = loop.run_in_executor(self._pool, lambda: 42)
        done, pending = await asyncio.wait({future}, timeout=timeout_s)
        if pending:
            future.cancel()
            future.add_done_callback(_swallow)
            return False
        return future.result() == 42

    # -- lifecycle -------------------------------------------------------

    def shutdown(self, wait: bool = True) -> None:
        self._pool.shutdown(wait=wait, cancel_futures=not wait)
        # Parallel jobs ran on the process-wide warm worker pools; a
        # draining engine must not leave their processes behind.
        from repro.parallel.pool import shutdown_pools

        shutdown_pools()

    def as_dict(self) -> Dict[str, object]:
        from repro.parallel.pool import pool_info

        with self._counter_lock:
            return {
                "workers": self.workers,
                "jobs_total": self.jobs_total,
                "degraded_total": self.degraded_total,
                "failed_total": self.failed_total,
                "abandoned": self.abandoned,
                "result_cache_hits": self.result_cache_hits,
                "result_cache_entries": len(self._result_cache),
                "warm_pools": pool_info(),
            }


def _swallow(future: "asyncio.Future") -> None:
    if future.cancelled():
        return
    future.exception()
