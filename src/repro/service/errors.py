"""The service error taxonomy.

Every rejection the daemon produces is one of these, each with a stable
machine-readable ``code`` and an HTTP status, so clients can branch on
the code instead of scraping messages.  The split mirrors who is at
fault:

* 4xx — the request: malformed envelope (400), input over the frontend
  limits or uncompilable source (422), oversized body (413), a body
  that trickled in slower than the slow-loris guard allows (408);
* 429 — the *service* load: the bounded admission queue is full and the
  job was shed, with a ``retry_after_s`` hint;
* 503 — the service state: draining for shutdown, or the circuit
  breaker is open after a crash storm;
* 504 — the job's own deadline expired before promotion finished.

Shedding and degradation are never silent: a rejected job gets a
structured body, never a dropped connection or an unbounded queue.
"""

from __future__ import annotations

from typing import Dict, Optional


class ServiceError(Exception):
    """Base class: a structured, client-visible rejection."""

    code = "internal-error"
    http_status = 500

    def __init__(self, message: str, retry_after_s: Optional[float] = None) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s

    def as_dict(self) -> Dict[str, object]:
        doc: Dict[str, object] = {
            "error": self.code,
            "message": str(self),
        }
        if self.retry_after_s is not None:
            doc["retry_after_s"] = round(self.retry_after_s, 3)
        return doc


class JobValidationError(ServiceError):
    """The job envelope is not a valid request (bad JSON shape, unknown
    keys, wrong types, out-of-range options)."""

    code = "invalid-job"
    http_status = 400


class JobInputError(ServiceError):
    """The payload parsed but its *source* was rejected — a compile
    error or a frontend resource limit.  ``limit`` is set for the
    latter so clients can tell a hostile input from a typo."""

    code = "invalid-source"
    http_status = 422

    def __init__(self, message: str, limit: Optional[str] = None) -> None:
        super().__init__(message)
        self.limit = limit

    def as_dict(self) -> Dict[str, object]:
        doc = super().as_dict()
        if self.limit is not None:
            doc["limit"] = self.limit
        return doc


class PayloadTooLargeError(ServiceError):
    code = "payload-too-large"
    http_status = 413


class RequestTimeoutError(ServiceError):
    """The client fed the request too slowly (slow-loris guard)."""

    code = "request-timeout"
    http_status = 408


class AdmissionRejectedError(ServiceError):
    """Load shed: the bounded queue is full.  Always carries a
    retry-after estimate derived from recent job durations."""

    code = "overloaded"
    http_status = 429


class ServiceUnavailableError(ServiceError):
    """The daemon is alive but not accepting: draining for shutdown or
    the circuit breaker is open."""

    code = "unavailable"
    http_status = 503

    def __init__(
        self,
        message: str,
        reason: str,
        retry_after_s: Optional[float] = None,
    ) -> None:
        super().__init__(message, retry_after_s=retry_after_s)
        self.reason = reason

    def as_dict(self) -> Dict[str, object]:
        doc = super().as_dict()
        doc["reason"] = self.reason
        return doc


class DeadlineExceededError(ServiceError):
    """The job's wall-clock deadline expired before promotion finished."""

    code = "deadline-exceeded"
    http_status = 504
