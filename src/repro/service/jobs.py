"""Job envelopes: the wire-level request/response shapes.

A *job* asks the service to compile (mini-C) or parse (textual IR) a
program, run the promotion pipeline on it, execute the result, and
return the printed output, the return value, and the promoted IR text.
:meth:`JobRequest.from_payload` is the strict validator — unknown keys,
wrong types, and out-of-range options all bounce with a structured
:class:`~repro.service.errors.JobValidationError` before any work is
admitted, so a malformed payload can never occupy a worker slot.

:class:`JobResult` is the success shape.  ``ir`` is the promoted
module's exact textual form — the byte-identity invariant is stated
over this string: a job that completes through the daemon must yield
the same ``ir``/``output``/``return_value`` as a fresh serial
:class:`~repro.promotion.pipeline.PromotionPipeline` run of the same
payload, no matter what chaos, shedding, or degradation happened around
it.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.observability import TraceContext
from repro.robustness.faults import ChaosConfig
from repro.service.errors import JobValidationError

KINDS = ("minic", "ir")

#: Option keys a job may set, with (type, validator) pairs enforced by
#: :meth:`JobRequest.from_payload`.
_MAX_JOBS = 64
_MAX_RETRIES = 16


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise JobValidationError(message)


class JobRequest:
    """A validated promotion job."""

    __slots__ = (
        "kind",
        "source",
        "entry",
        "args",
        "jobs",
        "use_cache",
        "deadline_s",
        "timeout_s",
        "retries",
        "chaos",
        "max_steps",
        "trace",
    )

    def __init__(
        self,
        kind: str,
        source: str,
        entry: str = "main",
        args: Optional[List[int]] = None,
        jobs: int = 1,
        use_cache: bool = True,
        deadline_s: Optional[float] = None,
        timeout_s: Optional[float] = None,
        retries: Optional[int] = None,
        chaos: Optional[ChaosConfig] = None,
        max_steps: Optional[int] = None,
        trace: Optional[TraceContext] = None,
    ) -> None:
        self.kind = kind
        self.source = source
        self.entry = entry
        self.args = list(args or [])
        self.jobs = jobs
        self.use_cache = use_cache
        self.deadline_s = deadline_s
        self.timeout_s = timeout_s
        self.retries = retries
        self.chaos = chaos
        self.max_steps = max_steps
        #: Distributed trace context carried inside the envelope — the
        #: way headerless transports (stdio JSONL) join a trace.  HTTP
        #: callers use the ``traceparent`` header instead; the daemon
        #: prefers the header when both are present.
        self.trace = trace

    @property
    def wants_resilience(self) -> bool:
        """Whether the job carries executor-level resilience options
        (which require the process-pool path, i.e. ``jobs != 1``)."""
        return (
            self.timeout_s is not None
            or self.retries is not None
            or self.chaos is not None
        )

    @property
    def is_default_run(self) -> bool:
        """True for a plain serial job with no custom knobs — the only
        shape the engine's result cache may serve, so cached entries are
        always byte-identical to a fresh default run."""
        return (
            self.jobs == 1
            and self.use_cache
            and not self.wants_resilience
            and self.max_steps is None
        )

    def cache_key_material(self) -> str:
        return "\x00".join(
            [
                self.kind,
                self.source,
                self.entry,
                ",".join(str(a) for a in self.args),
            ]
        )

    @classmethod
    def from_payload(cls, payload: Any) -> "JobRequest":
        """Validate a decoded JSON payload into a job; raises
        :class:`JobValidationError` naming the first offending field."""
        _require(isinstance(payload, dict), "job payload must be a JSON object")
        known = {
            "kind",
            "source",
            "entry",
            "args",
            "options",
            "trace",
        }
        unknown = sorted(set(payload) - known)
        _require(not unknown, f"unknown job field(s): {', '.join(unknown)}")

        kind = payload.get("kind", "minic")
        _require(kind in KINDS, f"job kind must be one of {'/'.join(KINDS)}")
        source = payload.get("source")
        _require(isinstance(source, str), "job field 'source' must be a string")
        _require(bool(source.strip()), "job field 'source' must be non-empty")
        entry = payload.get("entry", "main")
        _require(
            isinstance(entry, str) and entry.isidentifier(),
            "job field 'entry' must be an identifier",
        )
        args = payload.get("args", [])
        _require(
            isinstance(args, list)
            and all(isinstance(a, int) and not isinstance(a, bool) for a in args),
            "job field 'args' must be a list of integers",
        )
        _require(len(args) <= 64, "job field 'args' is limited to 64 values")

        trace_spec = payload.get("trace")
        trace = None
        if trace_spec is not None:
            _require(
                isinstance(trace_spec, str),
                "job field 'trace' must be a traceparent string",
            )
            trace = TraceContext.from_traceparent(trace_spec)
            _require(
                trace is not None,
                "job field 'trace' is not a valid traceparent "
                "(00-<32 hex>-<16 hex>-<2 hex>)",
            )

        options = payload.get("options", {})
        _require(isinstance(options, dict), "job field 'options' must be an object")
        known_options = {
            "jobs",
            "use_cache",
            "deadline_s",
            "timeout_s",
            "retries",
            "chaos",
            "max_steps",
        }
        unknown = sorted(set(options) - known_options)
        _require(not unknown, f"unknown job option(s): {', '.join(unknown)}")

        jobs = options.get("jobs", 1)
        _require(
            isinstance(jobs, int) and not isinstance(jobs, bool),
            "job option 'jobs' must be an integer",
        )
        _require(0 <= jobs <= _MAX_JOBS, f"job option 'jobs' must be in 0..{_MAX_JOBS}")
        use_cache = options.get("use_cache", True)
        _require(
            isinstance(use_cache, bool), "job option 'use_cache' must be a boolean"
        )

        deadline_s = _optional_number(options, "deadline_s")
        if deadline_s is not None:
            _require(deadline_s > 0, "job option 'deadline_s' must be > 0")
        timeout_s = _optional_number(options, "timeout_s")
        if timeout_s is not None:
            _require(timeout_s > 0, "job option 'timeout_s' must be > 0")

        retries = options.get("retries")
        if retries is not None:
            _require(
                isinstance(retries, int) and not isinstance(retries, bool),
                "job option 'retries' must be an integer",
            )
            _require(
                0 <= retries <= _MAX_RETRIES,
                f"job option 'retries' must be in 0..{_MAX_RETRIES}",
            )

        chaos_spec = options.get("chaos")
        chaos = None
        if chaos_spec is not None:
            _require(isinstance(chaos_spec, str), "job option 'chaos' must be a string")
            try:
                chaos = ChaosConfig.parse(chaos_spec)
            except ValueError as exc:
                raise JobValidationError(f"job option 'chaos': {exc}") from None

        max_steps = options.get("max_steps")
        if max_steps is not None:
            _require(
                isinstance(max_steps, int) and not isinstance(max_steps, bool),
                "job option 'max_steps' must be an integer",
            )
            _require(
                1 <= max_steps <= 50_000_000,
                "job option 'max_steps' must be in 1..50000000",
            )

        request = cls(
            kind=kind,
            source=source,
            entry=entry,
            args=args,
            jobs=jobs,
            use_cache=use_cache,
            deadline_s=deadline_s,
            timeout_s=timeout_s,
            retries=retries,
            chaos=chaos,
            max_steps=max_steps,
            trace=trace,
        )
        if request.wants_resilience:
            _require(
                request.jobs != 1,
                "job options 'timeout_s'/'retries'/'chaos' require jobs != 1 "
                "(the resilient executor acts on worker processes)",
            )
        return request


def _optional_number(options: Dict[str, Any], key: str) -> Optional[float]:
    value = options.get(key)
    if value is None:
        return None
    _require(
        isinstance(value, (int, float)) and not isinstance(value, bool),
        f"job option {key!r} must be a number",
    )
    return float(value)


class JobResult:
    """A completed job: the pipeline's observable behaviour plus the
    promoted IR text and a degradation summary."""

    __slots__ = (
        "job_id",
        "ir",
        "output",
        "return_value",
        "output_matches",
        "degraded",
        "quarantined",
        "rolled_back",
        "cache_stats",
        "duration_ms",
        "cached",
        "trace_id",
    )

    def __init__(
        self,
        job_id: str,
        ir: str,
        output: List[str],
        return_value: int,
        output_matches: bool,
        degraded: bool,
        quarantined: List[str],
        rolled_back: List[str],
        cache_stats: Optional[Dict[str, object]],
        duration_ms: float,
        cached: bool = False,
        trace_id: Optional[str] = None,
    ) -> None:
        self.job_id = job_id
        self.ir = ir
        self.output = output
        self.return_value = return_value
        self.output_matches = output_matches
        self.degraded = degraded
        self.quarantined = quarantined
        self.rolled_back = rolled_back
        self.cache_stats = cache_stats
        self.duration_ms = duration_ms
        self.cached = cached
        #: The distributed trace the job ran under; stamped by the
        #: daemon (never cached — each request gets its own).
        self.trace_id = trace_id

    def as_dict(self) -> Dict[str, object]:
        return {
            "job_id": self.job_id,
            "status": "degraded" if self.degraded else "ok",
            "ir": self.ir,
            "output": list(self.output),
            "return_value": self.return_value,
            "output_matches": self.output_matches,
            "degraded": self.degraded,
            "quarantined": list(self.quarantined),
            "rolled_back": list(self.rolled_back),
            "cache_stats": self.cache_stats,
            "duration_ms": round(self.duration_ms, 3),
            "cached": self.cached,
            "trace_id": self.trace_id,
        }
