"""The front tier: a fingerprint-sticky router over many daemons.

``repro-route`` scales the service horizontally: it speaks the same
HTTP/1.1 job protocol as :mod:`repro.service.daemon` and fans out to N
backend ``repro-serve`` instances.  One daemon owns warm pools, an
epoch board, and dispatch/analysis caches whose value comes entirely
from seeing the same modules again — so the router keys placement on
the **module fingerprint** of the submitted source
(:mod:`repro.service.routing`) and the same program always lands on the
same shard while it is healthy.

Moving parts:

* **Sticky routing with deterministic failover** —
  :func:`~repro.service.routing.hrw_order` turns (fingerprint, backend
  ids) into a total order; element 0 is the home shard, the tail is the
  failover sequence every router instance agrees on without
  coordination.
* **Health-based draining** — :class:`HealthTracker` polls each
  backend's ``/healthz`` and ``/readyz`` (the health document includes
  the ``warm_pools`` report) and walks instances through
  ``healthy → draining → down``.  A draining backend receives no new
  jobs but keeps its in-flight relays — the daemon's own graceful-drain
  machinery finishes them — and a backend that answers healthy again
  (rolling restart) is routed to again.
* **Per-backend circuit breakers and bounded retry-with-failover** —
  connect errors and 5xx responses fail over to the next backend in HRW
  order (each backend tried at most once per job); 429 shed responses
  are propagated to the client with their ``retry_after_s`` hint intact,
  because the shard's own load estimate is the honest one.

  *Idempotency contract*: a retry re-sends the **complete buffered
  envelope**, byte-for-byte.  Jobs are pure functions of that envelope
  — the daemon's byte-identity invariant guarantees a re-run returns
  the same result and mutates no cross-request state — so failing over
  a job that may already have started on a dying backend is safe.  The
  router asserts the precondition (the whole body is in hand before the
  first attempt) and never fails over a *streaming* job once a single
  response byte has been relayed, so a client can never observe two
  interleaved timelines.
* **Router-level observability** — ``/healthz``, ``/readyz``, and
  ``/metrics`` export ``router.*`` counters (per-backend jobs,
  failovers, drain/down/circuit skips, stickiness hit-rate) through the
  shared :class:`~repro.observability.metrics.MetricsRegistry`, and
  ``POST /v1/jobs?stream=1`` is a byte-level NDJSON pass-through so a
  streamed job keeps a single span timeline end to end.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import sys
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.observability import FlightRecorder, TraceContext
from repro.observability import flightrecorder as flightrecorder_mod
from repro.observability.metrics import MetricsRegistry
from repro.observability.prometheus import (
    CONTENT_TYPE as PROMETHEUS_CONTENT_TYPE,
)
from repro.observability.prometheus import (
    Sample,
    document_samples,
    exposition,
    registry_samples,
    wants_text,
)
from repro.service.breaker import CircuitBreaker
from repro.service.client import read_response, send_request
from repro.service.daemon import _REASONS, _parse_head, _write_raw
from repro.service.errors import (
    JobValidationError,
    PayloadTooLargeError,
    RequestTimeoutError,
    ServiceError,
    ServiceUnavailableError,
)
from repro.service.routing import KEY_MODULE, FingerprintResolver, hrw_order

_HEADER_LIMIT = 65536

HEALTHY = "healthy"
DRAINING = "draining"
DOWN = "down"


class RouterConfig:
    """Tunables for :class:`PromotionRouter`.

    ``backends`` is the static shard list — (host, port) pairs, at
    least one.  ``poll_interval_s``/``probe_timeout_s`` drive the
    health tracker; ``down_after`` consecutive probe strikes (connect
    failures or not-ready answers) mark a backend ``down``.
    ``connect_timeout_s`` bounds each dispatch connect;
    ``upstream_timeout_s`` bounds reading a backend's response (jobs
    already carry their own deadlines, clamped by the daemon).
    Breaker/drain/slow-loris knobs mirror
    :class:`~repro.service.config.ServiceConfig`.
    """

    def __init__(
        self,
        backends: Sequence[Tuple[str, int]],
        host: str = "127.0.0.1",
        port: int = 0,
        poll_interval_s: float = 2.0,
        probe_timeout_s: float = 2.0,
        down_after: int = 2,
        connect_timeout_s: float = 2.0,
        upstream_timeout_s: float = 180.0,
        header_timeout_s: float = 5.0,
        body_timeout_s: float = 10.0,
        max_body_bytes: int = 2_500_000,
        breaker_threshold: int = 3,
        breaker_reset_s: float = 5.0,
        drain_grace_s: float = 10.0,
        fingerprint_cache_size: int = 256,
        artifacts_dir: Optional[str] = None,
    ) -> None:
        backends = list(backends)
        if not backends:
            raise ValueError("at least one backend is required")
        ids = [f"{h}:{p}" for h, p in backends]
        if len(set(ids)) != len(ids):
            raise ValueError(f"duplicate backends in {ids}")
        if down_after < 1:
            raise ValueError(f"down_after must be >= 1, got {down_after}")
        if breaker_threshold < 1:
            raise ValueError(
                f"breaker_threshold must be >= 1, got {breaker_threshold}"
            )
        for name, value in (
            ("poll_interval_s", poll_interval_s),
            ("probe_timeout_s", probe_timeout_s),
            ("connect_timeout_s", connect_timeout_s),
            ("upstream_timeout_s", upstream_timeout_s),
            ("header_timeout_s", header_timeout_s),
            ("body_timeout_s", body_timeout_s),
            ("breaker_reset_s", breaker_reset_s),
            ("drain_grace_s", drain_grace_s),
        ):
            if value <= 0:
                raise ValueError(f"{name} must be > 0, got {value}")
        if max_body_bytes < 1:
            raise ValueError(f"max_body_bytes must be >= 1, got {max_body_bytes}")
        if fingerprint_cache_size < 0:
            raise ValueError(
                f"fingerprint_cache_size must be >= 0, got {fingerprint_cache_size}"
            )
        self.backends = backends
        self.host = host
        self.port = port
        self.poll_interval_s = poll_interval_s
        self.probe_timeout_s = probe_timeout_s
        self.down_after = down_after
        self.connect_timeout_s = connect_timeout_s
        self.upstream_timeout_s = upstream_timeout_s
        self.header_timeout_s = header_timeout_s
        self.body_timeout_s = body_timeout_s
        self.max_body_bytes = max_body_bytes
        self.breaker_threshold = breaker_threshold
        self.breaker_reset_s = breaker_reset_s
        self.drain_grace_s = drain_grace_s
        self.fingerprint_cache_size = fingerprint_cache_size
        #: Flight-recorder dump directory (crash/drain forensics);
        #: ``None`` keeps the ring memory-only.
        self.artifacts_dir = artifacts_dir

    def as_dict(self) -> Dict[str, object]:
        return {
            "host": self.host,
            "port": self.port,
            "backends": [f"{h}:{p}" for h, p in self.backends],
            "poll_interval_s": self.poll_interval_s,
            "probe_timeout_s": self.probe_timeout_s,
            "down_after": self.down_after,
            "connect_timeout_s": self.connect_timeout_s,
            "upstream_timeout_s": self.upstream_timeout_s,
            "header_timeout_s": self.header_timeout_s,
            "body_timeout_s": self.body_timeout_s,
            "max_body_bytes": self.max_body_bytes,
            "breaker_threshold": self.breaker_threshold,
            "breaker_reset_s": self.breaker_reset_s,
            "drain_grace_s": self.drain_grace_s,
            "fingerprint_cache_size": self.fingerprint_cache_size,
            "artifacts_dir": self.artifacts_dir,
        }


class BackendState:
    """One shard as the router sees it: address, health status, breaker,
    and per-backend accounting."""

    def __init__(
        self, host: str, port: int, breaker_threshold: int, breaker_reset_s: float
    ) -> None:
        self.host = host
        self.port = port
        self.id = f"{host}:{port}"
        # Optimistic start: jobs flow before the first poll completes;
        # a dead backend costs one connect failure, which the failover
        # path absorbs.
        self.status = HEALTHY
        self.breaker = CircuitBreaker(
            threshold=breaker_threshold, reset_s=breaker_reset_s
        )
        self.strikes = 0
        self.transitions = 0
        self.jobs_total = 0
        self.failures_total = 0
        self.last_health: Optional[Dict[str, object]] = None
        self.last_probe_error: Optional[str] = None

    def set_status(self, status: str) -> bool:
        """Move to ``status``; True if this is a transition."""
        if status == self.status:
            return False
        self.status = status
        self.transitions += 1
        return True

    def warm_pools(self) -> object:
        """The backend's last-reported warm-pool inventory, if any."""
        if not isinstance(self.last_health, dict):
            return None
        engine = self.last_health.get("engine")
        if isinstance(engine, dict):
            return engine.get("warm_pools")
        return None

    def as_dict(self) -> Dict[str, object]:
        return {
            "id": self.id,
            "status": self.status,
            "strikes": self.strikes,
            "transitions": self.transitions,
            "jobs_total": self.jobs_total,
            "failures_total": self.failures_total,
            "breaker": self.breaker.as_dict(),
            "warm_pools": self.warm_pools(),
            "last_probe_error": self.last_probe_error,
        }


class HealthTracker:
    """Drives ``healthy → draining → down`` (and back) from probes.

    One :meth:`poll_once` probes every backend concurrently:
    ``/healthz`` for the status word and the ``warm_pools`` report,
    ``/readyz`` for admission readiness.  ``draining`` is immediate
    (the daemon said so — stop sending new work *now* so its grace
    window is spent on in-flight jobs, not on fresh arrivals); ``down``
    needs ``down_after`` consecutive strikes so one dropped probe does
    not evict a healthy shard; any healthy answer fully rehabilitates a
    backend.  Dispatch-time connect failures feed the same strike
    counter via :meth:`note_connect_failure`, so a crashed backend goes
    dark even between polls.
    """

    def __init__(
        self,
        backends: Dict[str, BackendState],
        down_after: int = 2,
        probe_timeout_s: float = 2.0,
    ) -> None:
        self.backends = backends
        self.down_after = down_after
        self.probe_timeout_s = probe_timeout_s
        self.transitions_total = 0
        self.polls_total = 0

    # -- evidence --------------------------------------------------------

    def apply_probe(
        self,
        state: BackendState,
        health: Optional[Dict[str, object]],
        ready_status: Optional[int],
        ready_doc: Optional[Dict[str, object]],
        error: Optional[str] = None,
    ) -> None:
        """Fold one probe's outcome into the state machine."""
        state.last_probe_error = error
        if error is not None:
            self._strike(state)
            return
        if isinstance(health, dict):
            state.last_health = health
        reason = (ready_doc or {}).get("reason") if ready_status != 200 else None
        drains = (
            isinstance(health, dict) and health.get("status") == "draining"
        ) or reason == "draining"
        if drains:
            state.strikes = 0
            if state.set_status(DRAINING):
                self.transitions_total += 1
            return
        if ready_status == 200:
            state.strikes = 0
            if state.set_status(HEALTHY):
                self.transitions_total += 1
            return
        # Alive but not ready (circuit open, pool wedged): strikes, so a
        # transient blip survives but a stuck shard goes dark.
        self._strike(state)

    def note_connect_failure(self, state: BackendState) -> None:
        self._strike(state)

    def note_draining(self, state: BackendState) -> None:
        """A dispatch came back 503/draining before the poller noticed."""
        if state.set_status(DRAINING):
            self.transitions_total += 1

    def _strike(self, state: BackendState) -> None:
        state.strikes += 1
        if state.strikes >= self.down_after and state.set_status(DOWN):
            self.transitions_total += 1
            flightrecorder_mod.ambient().record(
                "router.backend_down",
                backend=state.id,
                strikes=state.strikes,
                error=state.last_probe_error,
            )

    # -- polling ---------------------------------------------------------

    async def poll_once(self) -> None:
        self.polls_total += 1
        await asyncio.gather(
            *(self._probe(state) for state in self.backends.values())
        )

    async def _probe(self, state: BackendState) -> None:
        from repro.service.client import ServiceClient

        client = ServiceClient(state.host, state.port, timeout_s=self.probe_timeout_s)
        try:
            health_resp = await client.get("/healthz")
            ready_resp = await client.get("/readyz")
        except (OSError, asyncio.TimeoutError, asyncio.IncompleteReadError) as exc:
            self.apply_probe(state, None, None, None, error=type(exc).__name__)
            return
        except Exception as exc:  # noqa: BLE001 - a probe must never kill the loop
            self.apply_probe(state, None, None, None, error=type(exc).__name__)
            return
        health = _json_or_none(health_resp.body)
        ready = _json_or_none(ready_resp.body)
        self.apply_probe(
            state,
            health if isinstance(health, dict) else None,
            ready_resp.status,
            ready if isinstance(ready, dict) else None,
        )

    def counts(self) -> Dict[str, int]:
        doc = {HEALTHY: 0, DRAINING: 0, DOWN: 0}
        for state in self.backends.values():
            doc[state.status] += 1
        return doc


class PromotionRouter:
    """The asyncio front tier: listener, health poller, relay engine."""

    def __init__(self, config: RouterConfig) -> None:
        self.config = config
        self.backends: Dict[str, BackendState] = {}
        for host, port in config.backends:
            state = BackendState(
                host, port, config.breaker_threshold, config.breaker_reset_s
            )
            self.backends[state.id] = state
        self.backend_ids = list(self.backends)
        self.tracker = HealthTracker(
            self.backends,
            down_after=config.down_after,
            probe_timeout_s=config.probe_timeout_s,
        )
        self.resolver = FingerprintResolver(
            cache_size=config.fingerprint_cache_size
        )
        self.metrics = MetricsRegistry()
        self._server: Optional[asyncio.AbstractServer] = None
        self._poller_task: Optional[asyncio.Task] = None
        self._done: Optional[asyncio.Event] = None
        self._draining = False
        self._started_at = 0.0
        self._inflight = 0
        self._idle: Optional[asyncio.Event] = None
        self.drained_clean: Optional[bool] = None
        #: Crash flight recorder: routing decisions, failovers, and
        #: backend transitions, dumped on drain or breaker trip.
        self.flight = FlightRecorder(
            "router", artifacts_dir=config.artifacts_dir
        )

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        self._done = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self._started_at = time.monotonic()
        # Backend breakers (repro.service.breaker) record their trips
        # into whatever recorder is ambient — make it this router's.
        flightrecorder_mod.install(self.flight)
        self.flight.record("router.start", backends=list(self.backend_ids))
        self._poller_task = asyncio.ensure_future(self._poll_loop())
        self._server = await asyncio.start_server(
            self._handle_conn,
            self.config.host,
            self.config.port,
            limit=_HEADER_LIMIT,
        )
        sock = self._server.sockets[0]
        host, port = sock.getsockname()[:2]
        return host, port

    def install_signal_handlers(self) -> None:
        loop = asyncio.get_event_loop()

        def _on_signal(signum: int, frame: object) -> None:
            loop.call_soon_threadsafe(
                lambda: asyncio.ensure_future(self.drain_and_stop())
            )

        for sig in (signal.SIGTERM, signal.SIGINT):
            signal.signal(sig, _on_signal)

    async def serve_forever(self) -> None:
        assert self._done is not None
        await self._done.wait()

    async def drain_and_stop(self) -> None:
        """Stop accepting, let in-flight relays finish (bounded by the
        grace period), stop the poller."""
        if self._draining:
            return
        self._draining = True
        self.flight.record(
            "router.drain", uptime_s=time.monotonic() - self._started_at
        )
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        assert self._idle is not None
        if self._inflight:
            try:
                await asyncio.wait_for(
                    self._idle.wait(), timeout=self.config.drain_grace_s
                )
                self.drained_clean = True
            except asyncio.TimeoutError:
                self.drained_clean = False
        else:
            self.drained_clean = True
        self.flight.dump("sigterm-drain")
        if self._poller_task is not None:
            self._poller_task.cancel()
        if self._done is not None:
            self._done.set()

    async def _poll_loop(self) -> None:
        while True:
            try:
                await self.tracker.poll_once()
            except asyncio.CancelledError:
                raise
            except Exception:  # noqa: BLE001 - polling must never die
                pass
            self.metrics.set(
                "router.health.transitions", self.tracker.transitions_total
            )
            await asyncio.sleep(self.config.poll_interval_s)

    # -- routing ---------------------------------------------------------

    def plan(self, payload: object) -> Tuple[str, str, List[str]]:
        """(key, key_kind, HRW backend order) for a decoded payload —
        the pure routing decision, exposed for ``--print-plan``."""
        key, key_kind = self.resolver.resolve(payload)
        return key, key_kind, hrw_order(key, self.backend_ids)

    def _routable_reason(self, state: BackendState) -> Optional[str]:
        """None when the backend may receive a new job, else the skip
        reason.  Checking the breaker *admits* a half-open probe, so
        only call when a dispatch follows immediately."""
        if state.status == DRAINING:
            return "draining"
        if state.status == DOWN:
            return "down"
        if not state.breaker.allow():
            return "circuit"
        return None

    # -- connection handling --------------------------------------------

    async def _handle_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._inflight += 1
        assert self._idle is not None
        self._idle.clear()
        try:
            await self._handle_request(reader, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            self._inflight -= 1
            if self._inflight == 0:
                self._idle.set()
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_request(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            head = await asyncio.wait_for(
                reader.readuntil(b"\r\n\r\n"),
                timeout=self.config.header_timeout_s,
            )
        except asyncio.TimeoutError:
            await self._send_error(
                writer, RequestTimeoutError("request head did not arrive in time")
            )
            return
        except asyncio.LimitOverrunError:
            await self._send_error(
                writer, JobValidationError("request head exceeds the size limit")
            )
            return
        except (asyncio.IncompleteReadError, ConnectionError):
            return

        try:
            method, target, headers = _parse_head(head)
        except ValueError as exc:
            await self._send_error(writer, JobValidationError(str(exc)))
            return

        path, _, query = target.partition("?")
        if method == "GET" and path == "/healthz":
            await self._send_json(writer, 200, self.health())
            return
        if method == "GET" and path == "/readyz":
            status, body = self.readiness()
            await self._send_json(writer, status, body)
            return
        if method == "GET" and path == "/metrics":
            if wants_text(headers.get("accept")):
                await self._send_text(
                    writer,
                    200,
                    await self.prometheus_metrics(),
                    PROMETHEUS_CONTENT_TYPE,
                )
            else:
                await self._send_json(writer, 200, self.metrics_doc())
            return
        if method != "POST" or path != "/v1/jobs":
            await self._send_json(
                writer,
                404,
                {"error": "not-found", "message": f"no route for {method} {path}"},
            )
            return

        try:
            body = await self._read_body(reader, headers)
        except ServiceError as exc:
            await self._send_error(writer, exc)
            return

        stream = False
        for pair in query.split("&"):
            name, _, value = pair.partition("=")
            if name == "stream" and value not in ("0", "", "false"):
                stream = True
        # Adopt the caller's distributed trace or start one at the edge;
        # every backend leg carries it as a ``traceparent`` header.
        trace = TraceContext.from_traceparent(headers.get("traceparent"))
        await self._route_job(writer, body, stream, trace or TraceContext.new())

    async def _read_body(
        self, reader: asyncio.StreamReader, headers: Dict[str, str]
    ) -> bytes:
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise JobValidationError("content-length is not an integer") from None
        if length < 0:
            raise JobValidationError("content-length is negative")
        if length > self.config.max_body_bytes:
            raise PayloadTooLargeError(
                f"request body of {length} bytes exceeds the "
                f"{self.config.max_body_bytes}-byte limit"
            )
        try:
            return await asyncio.wait_for(
                reader.readexactly(length), timeout=self.config.body_timeout_s
            )
        except asyncio.TimeoutError:
            raise RequestTimeoutError(
                f"request body did not arrive within "
                f"{self.config.body_timeout_s:g}s"
            ) from None
        except asyncio.IncompleteReadError:
            raise JobValidationError(
                "connection closed before the declared body arrived"
            ) from None

    # -- the relay engine ------------------------------------------------

    async def _route_job(
        self,
        writer: asyncio.StreamWriter,
        body: bytes,
        stream: bool,
        trace: TraceContext,
    ) -> None:
        # Idempotency precondition: every attempt re-sends this exact
        # buffered envelope, so failover can never split a job across
        # two half-delivered requests.
        assert body is not None
        payload = _json_or_none(body)
        loop = asyncio.get_event_loop()
        key, key_kind, order = await loop.run_in_executor(
            None, self.plan, payload
        )
        # The router's hop in the trace: each backend leg is a child of
        # this span id, so the daemon's ``daemon:job`` span hangs off it.
        hop = trace.child()
        self.flight.record(
            "router.job",
            trace_id=trace.trace_id,
            key=key,
            key_kind=key_kind,
            home=order[0],
            stream=stream,
        )
        self.metrics.inc("router.jobs_total")
        if stream:
            self.metrics.inc("router.jobs.stream")
        if key_kind == KEY_MODULE:
            self.metrics.inc("router.fingerprint.modules")
        else:
            self.metrics.inc("router.fingerprint.fallbacks")

        attempts = 0
        last_error: Optional[Tuple[int, Dict[str, object]]] = None
        for backend_id in order:
            state = self.backends[backend_id]
            reason = self._routable_reason(state)
            if reason is not None:
                self.metrics.inc(f"router.skips.{reason}")
                continue
            attempts += 1
            if attempts > 1:
                self.metrics.inc("router.failovers")
                self.flight.record(
                    "router.failover",
                    trace_id=trace.trace_id,
                    backend=backend_id,
                    attempt=attempts,
                )
            outcome, last_error = await self._attempt(
                writer, state, body, stream, last_error, trace, hop
            )
            if outcome == "served":
                self.metrics.inc("router.sticky.routed")
                if backend_id == order[0]:
                    self.metrics.inc("router.sticky.hits")
                return
            # "failed": fall through to the next backend in HRW order.
        self.metrics.inc("router.jobs.unrouted")
        self.flight.record("router.unrouted", trace_id=trace.trace_id, key=key)
        if last_error is not None:
            # Every backend was tried and the last wire answer was an
            # error document: relay it rather than masking the cause.
            await self._send_json(writer, last_error[0], last_error[1])
            return
        await self._send_error(
            writer,
            ServiceUnavailableError(
                "no healthy backend is available for this job",
                reason="no-backend",
                retry_after_s=self.config.poll_interval_s,
            ),
        )

    async def _attempt(
        self,
        writer: asyncio.StreamWriter,
        state: BackendState,
        body: bytes,
        stream: bool,
        last_error: Optional[Tuple[int, Dict[str, object]]],
        trace: TraceContext,
        hop: TraceContext,
    ) -> Tuple[str, Optional[Tuple[int, Dict[str, object]]]]:
        """One dispatch to one backend.  Returns ("served"|"failed",
        last_error); "served" means a response reached the client (or
        streaming bytes started flowing, after which failover is off
        the table)."""
        if stream:
            outcome = await self._relay_stream(writer, state, body, trace, hop)
            if outcome == "relayed":
                state.jobs_total += 1
                state.breaker.record_success()
                self.metrics.inc(f"router.backend.{state.id}.jobs")
                return "served", last_error
            state.failures_total += 1
            self.tracker.note_connect_failure(state)
            state.breaker.record_failure()
            return "failed", last_error

        try:
            response = await self._forward(state, body, hop)
        except Exception:  # noqa: BLE001 - connect/read trouble: fail over
            state.failures_total += 1
            self.tracker.note_connect_failure(state)
            state.breaker.record_failure()
            return "failed", last_error

        doc = _json_or_none(response.body)
        doc = doc if isinstance(doc, dict) else {"error": "upstream-error"}
        if response.status == 503 and doc.get("reason") == "draining":
            # The backend is leaving; reroute this job and stop feeding
            # the shard before the next poll even runs.
            self.tracker.note_draining(state)
            self.metrics.inc("router.drains.observed")
            return "failed", (response.status, doc)
        if response.status >= 500:
            state.failures_total += 1
            state.breaker.record_failure()
            return "failed", (response.status, doc)

        # 2xx/4xx/429 reach the client as-is: 4xx is the client's fault
        # and 429 carries the shard's own honest retry-after hint.
        state.jobs_total += 1
        if response.status < 400:
            state.breaker.record_success()
            self.metrics.inc("router.jobs.relayed")
        else:
            state.breaker.record_neutral()
            self.metrics.inc("router.jobs.rejected")
        self.metrics.inc(f"router.backend.{state.id}.jobs")
        await self._relay_response(writer, response, state.id, trace)
        return "served", last_error

    async def _forward(
        self, state: BackendState, body: bytes, hop: TraceContext
    ):
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(state.host, state.port),
            timeout=self.config.connect_timeout_s,
        )
        try:
            await send_request(
                writer,
                "POST",
                "/v1/jobs",
                body,
                headers={"traceparent": hop.to_traceparent()},
            )
            return await asyncio.wait_for(
                read_response(reader), timeout=self.config.upstream_timeout_s
            )
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _relay_stream(
        self,
        writer: asyncio.StreamWriter,
        state: BackendState,
        body: bytes,
        trace: TraceContext,
        hop: TraceContext,
    ) -> str:
        """Byte-level NDJSON pass-through.  Returns "relayed" once any
        upstream byte reached (or was offered to) the client — from that
        point failover is forbidden, a second backend would fork the
        span timeline — or "connect-failed" when the backend never
        produced a response head.

        The relayed head gains an ``X-Repro-Backend`` attribution
        header, and the first NDJSON line the client sees is the
        router's own ``router:relay`` span — same ``trace_id`` as every
        span the backend streams after it, so the whole hop is one
        connected tree."""
        try:
            up_reader, up_writer = await asyncio.wait_for(
                asyncio.open_connection(state.host, state.port),
                timeout=self.config.connect_timeout_s,
            )
        except (OSError, asyncio.TimeoutError):
            return "connect-failed"
        started_s = time.time()
        try:
            try:
                await send_request(
                    up_writer,
                    "POST",
                    "/v1/jobs?stream=1",
                    body,
                    headers={"traceparent": hop.to_traceparent()},
                )
                head = await asyncio.wait_for(
                    up_reader.readuntil(b"\r\n\r\n"),
                    timeout=self.config.upstream_timeout_s,
                )
            except (
                OSError,
                asyncio.TimeoutError,
                asyncio.IncompleteReadError,
            ):
                return "connect-failed"
            head = (
                head[:-2]
                + f"X-Repro-Backend: {state.id}\r\n\r\n".encode("ascii")
            )
            client_ok = await _write_raw(writer, head)
            if client_ok:
                client_ok = await _write_raw(
                    writer, _router_span_line(trace, hop, state.id, started_s)
                )
            while True:
                try:
                    chunk = await asyncio.wait_for(
                        up_reader.read(8192),
                        timeout=self.config.upstream_timeout_s,
                    )
                except (OSError, asyncio.TimeoutError):
                    break
                if not chunk:
                    break
                if client_ok:
                    # A vanished client stops receiving, but keep
                    # draining upstream so the backend's job/slot
                    # lifecycle is undisturbed (same semantics as the
                    # daemon's own streaming path).
                    client_ok = await _write_raw(writer, chunk)
            return "relayed"
        finally:
            up_writer.close()
            try:
                await up_writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _relay_response(
        self,
        writer: asyncio.StreamWriter,
        response,
        backend_id: str,
        trace: TraceContext,
    ) -> None:
        head = (
            f"HTTP/1.1 {response.status} "
            f"{_REASONS.get(response.status, 'Status')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(response.body)}\r\n"
            f"X-Repro-Backend: {backend_id}\r\n"
            f"X-Repro-Trace-Id: {trace.trace_id}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("ascii")
        await _write_raw(writer, head + response.body)

    # -- introspection ---------------------------------------------------

    def health(self) -> Dict[str, object]:
        now = time.monotonic()
        return {
            "status": "draining" if self._draining else "ok",
            "uptime_s": round(now - self._started_at, 3),
            "backend_counts": self.tracker.counts(),
            "backends": {
                backend_id: state.as_dict()
                for backend_id, state in self.backends.items()
            },
            "config": self.config.as_dict(),
        }

    def readiness(self) -> Tuple[int, Dict[str, object]]:
        if self._draining:
            return 503, {"ready": False, "reason": "draining"}
        counts = self.tracker.counts()
        if counts[HEALTHY] == 0:
            return 503, {
                "ready": False,
                "reason": "no-healthy-backend",
                "backend_counts": counts,
            }
        return 200, {"ready": True, "backend_counts": counts}

    def stickiness_hit_rate(self) -> Optional[float]:
        routed = self.metrics.value("router.sticky.routed") or 0
        if not routed:
            return None
        hits = self.metrics.value("router.sticky.hits") or 0
        return hits / routed

    def metrics_doc(self) -> Dict[str, object]:
        fingerprint = self.resolver.counters()
        self.metrics.set("router.fingerprint.cache_hits", fingerprint["cache_hits"])
        self.metrics.set("router.fingerprint.compiled", fingerprint["compiled"])
        self.metrics.set("router.backends.healthy", self.tracker.counts()[HEALTHY])
        self.metrics.set("router.backends.draining", self.tracker.counts()[DRAINING])
        self.metrics.set("router.backends.down", self.tracker.counts()[DOWN])
        rate = self.stickiness_hit_rate()
        return {
            "router": self.metrics.as_dict(),
            "stickiness_hit_rate": None if rate is None else round(rate, 4),
            "backends": {
                backend_id: state.as_dict()
                for backend_id, state in self.backends.items()
            },
        }

    async def prometheus_metrics(self) -> str:
        """The cluster view in Prometheus text exposition: the router's
        own counters plus every live backend's ``/metrics`` scrape,
        re-exported under ``repro_daemon_*`` with a ``backend`` label."""
        self.metrics_doc()  # refresh the derived gauges
        samples = registry_samples(self.metrics.as_dict(), namespace="repro")
        rate = self.stickiness_hit_rate()
        if rate is not None:
            samples.append(
                Sample("repro_router_stickiness_hit_rate", "gauge", rate)
            )
        for backend_id, state in self.backends.items():
            labels = {"backend": backend_id}
            samples.append(
                Sample(
                    "repro_router_backend_status",
                    "gauge",
                    1.0,
                    {**labels, "status": state.status},
                )
            )
            samples.append(
                Sample(
                    "repro_router_backend_breaker_state",
                    "gauge",
                    1.0,
                    {**labels, "state": state.breaker.state},
                )
            )
            samples.append(
                Sample(
                    "repro_router_backend_jobs_total",
                    "counter",
                    float(state.jobs_total),
                    labels,
                )
            )
            samples.append(
                Sample(
                    "repro_router_backend_failures_total",
                    "counter",
                    float(state.failures_total),
                    labels,
                )
            )
        scrapes = await asyncio.gather(
            *(self._scrape_metrics(state) for state in self.backends.values())
        )
        for state, doc in zip(self.backends.values(), scrapes):
            if isinstance(doc, dict):
                samples.extend(
                    document_samples(
                        doc, "repro_daemon", labels={"backend": state.id}
                    )
                )
        return exposition(samples)

    async def _scrape_metrics(self, state: BackendState) -> Optional[Dict[str, object]]:
        """One backend's JSON ``/metrics``, or None when it is down or
        the scrape fails — the cluster view must stay servable while a
        shard is not."""
        if state.status == DOWN:
            return None
        from repro.service.client import ServiceClient

        client = ServiceClient(
            state.host, state.port, timeout_s=self.config.probe_timeout_s
        )
        try:
            response = await client.get("/metrics")
        except Exception:  # noqa: BLE001 - a scrape must never break /metrics
            return None
        doc = _json_or_none(response.body)
        return doc if isinstance(doc, dict) else None

    # -- plumbing --------------------------------------------------------

    async def _send_error(
        self, writer: asyncio.StreamWriter, error: ServiceError
    ) -> None:
        await self._send_json(writer, error.http_status, error.as_dict())

    async def _send_json(
        self, writer: asyncio.StreamWriter, status: int, body: Dict[str, object]
    ) -> None:
        payload = json.dumps(body).encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Status')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("ascii")
        await _write_raw(writer, head + payload)

    async def _send_text(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        text: str,
        content_type: str,
    ) -> None:
        payload = text.encode("utf-8")
        head = (
            f"HTTP/1.1 {status} {_REASONS.get(status, 'Status')}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n"
        ).encode("ascii")
        await _write_raw(writer, head + payload)


def _router_span_line(
    trace: TraceContext, hop: TraceContext, backend_id: str, started_s: float
) -> bytes:
    """The router's own span as one NDJSON event, shaped like the
    daemon's streamed :class:`~repro.observability.tracer.SpanRecord`
    lines so stream consumers handle both uniformly.  It is emitted as
    soon as the upstream head arrives (duration still unknown), because
    the final ``result`` line must stay last on the wire."""
    doc = {
        "event": "span",
        "id": 0,
        "parent": None,
        "name": "router:relay",
        "category": "service",
        "start_s": started_s,
        "duration_ms": round((time.time() - started_s) * 1e3, 3),
        "pid": os.getpid(),
        "attrs": {
            "trace_id": trace.trace_id,
            "span_id": hop.parent_span_id,
            "backend": backend_id,
        },
    }
    return (json.dumps(doc) + "\n").encode("utf-8")


def _json_or_none(body: bytes) -> object:
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, ValueError):
        return None


# -- the repro-route entry point ------------------------------------------


def _print_plan(options, backends: Sequence[Tuple[str, int]]) -> int:
    """Operator triage: fingerprint + chosen backend, no dispatch."""
    try:
        with open(options.print_plan) as handle:
            source = handle.read()
    except OSError as exc:
        print(
            f"repro-route: error: cannot read {options.print_plan}: "
            f"{exc.strerror or exc}",
            file=sys.stderr,
        )
        return 2
    resolver = FingerprintResolver()
    key, key_kind = resolver.resolve({"kind": options.kind, "source": source})
    ids = [f"{h}:{p}" for h, p in backends]
    order = hrw_order(key, ids)
    print(f"fingerprint {key} ({key_kind})")
    print(f"backend {order[0]}")
    if len(order) > 1:
        print("failover " + " -> ".join(order[1:]))
    if key_kind != KEY_MODULE:
        print(
            "repro-route: note: source did not compile; routed by "
            "content digest (the backend will reject it with a 4xx)",
            file=sys.stderr,
        )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    import argparse

    from repro.service.cluster import ClusterConfig

    parser = argparse.ArgumentParser(
        prog="repro-route",
        description="fingerprint-sticky front-tier router over repro-serve backends",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=0, help="0 binds an ephemeral port"
    )
    parser.add_argument(
        "--backend",
        action="append",
        default=[],
        metavar="HOST:PORT",
        help="a backend daemon address (repeatable)",
    )
    parser.add_argument(
        "--backends-file",
        metavar="FILE",
        help="file with one HOST:PORT per line ('#' comments allowed)",
    )
    parser.add_argument(
        "--poll-interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="health poll cadence",
    )
    parser.add_argument(
        "--down-after",
        type=int,
        default=2,
        help="consecutive probe strikes before a backend is marked down",
    )
    parser.add_argument(
        "--probe-timeout", type=float, default=2.0, metavar="SECONDS"
    )
    parser.add_argument(
        "--connect-timeout", type=float, default=2.0, metavar="SECONDS"
    )
    parser.add_argument(
        "--upstream-timeout",
        type=float,
        default=180.0,
        metavar="SECONDS",
        help="max time to wait for a backend's full response",
    )
    parser.add_argument(
        "--drain-grace",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="how long SIGTERM waits for in-flight relays",
    )
    parser.add_argument(
        "--artifacts-dir",
        default=None,
        metavar="DIR",
        help="where the flight recorder dumps its ring on crash/drain",
    )
    parser.add_argument(
        "--print-plan",
        metavar="SOURCE",
        help="print the routing key and chosen backend for a source "
        "file, then exit without dispatching",
    )
    parser.add_argument(
        "--kind",
        choices=["minic", "ir"],
        default="minic",
        help="how --print-plan interprets the source file",
    )
    options = parser.parse_args(argv)

    try:
        cluster = ClusterConfig.from_args(options.backend, options.backends_file)
    except ValueError as exc:
        print(f"repro-route: error: {exc}", file=sys.stderr)
        return 2

    if options.print_plan is not None:
        return _print_plan(options, cluster.backends)

    try:
        config = RouterConfig(
            backends=cluster.backends,
            host=options.host,
            port=options.port,
            poll_interval_s=options.poll_interval,
            down_after=options.down_after,
            probe_timeout_s=options.probe_timeout,
            connect_timeout_s=options.connect_timeout,
            upstream_timeout_s=options.upstream_timeout,
            drain_grace_s=options.drain_grace,
            artifacts_dir=options.artifacts_dir,
        )
    except ValueError as exc:
        print(f"repro-route: error: {exc}", file=sys.stderr)
        return 2

    drained = {"clean": True}

    async def run() -> None:
        router = PromotionRouter(config)
        host, port = await router.start()
        router.install_signal_handlers()
        print(f"listening on {host}:{port}", file=sys.stderr, flush=True)
        await router.serve_forever()
        drained["clean"] = router.drained_clean is not False

    try:
        asyncio.run(run())
    except KeyboardInterrupt:  # pragma: no cover - signal handler races
        pass
    return 0 if drained["clean"] else 3


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
