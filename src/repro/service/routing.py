"""Sticky routing primitives: rendezvous hashing over module fingerprints.

The front tier (:mod:`repro.service.router`) spreads jobs across many
daemon instances, but each instance's performance story — the epoch
board, the dispatch cache, the per-thread analysis caches — depends on
seeing the *same modules* again (docs/PERFORMANCE.md).  The routing key
is therefore the module fingerprint from
:func:`repro.parallel.fingerprint.module_fingerprint`: two jobs that
submit the same program land on the same shard, so its warm state keeps
paying off, while unrelated programs spread out.

Two pieces, both pure enough to test exhaustively:

* :func:`hrw_order` — highest-random-weight (rendezvous) hashing.  For
  a key and a set of backend ids it produces a total order; the first
  routable backend in that order serves the job.  HRW gives the two
  properties sharding needs with no coordination state: the order is a
  pure function of (key, ids), so every router instance — and the same
  router across restarts — agrees; and removing a backend only moves
  the keys whose first choice was the removed backend (minimal
  redistribution), everything else stays sticky.
* :class:`FingerprintResolver` — turns a job payload into a routing
  key.  It compiles/parses the submitted source once, computes the
  module fingerprint, and LRU-caches the result keyed by a digest of
  the raw (kind, source) material, so the hot path is one dict lookup
  per request.  Hostile or uncompilable payloads never raise: they fall
  back to a stable content digest (the backend will produce the proper
  structured 4xx), so the router cannot be wedged by bad input.
"""

from __future__ import annotations

import collections
import hashlib
import threading
from typing import List, Optional, Sequence, Tuple

from repro.frontend.limits import InputLimits

#: How a routing key was derived: a real module fingerprint, or the
#: stable digest fallback for payloads the frontend rejects.
KEY_MODULE = "module"
KEY_DIGEST = "digest"


def hrw_order(key: str, backend_ids: Sequence[str]) -> List[str]:
    """Rendezvous (highest-random-weight) order of ``backend_ids`` for
    ``key``: deterministic, coordination-free, minimally disruptive.

    Every backend is scored by ``sha256(key \\x00 backend_id)`` and the
    list is returned highest-score first (ties — impossible in practice,
    cheap to defuse — break on the id).  Element 0 is the sticky home;
    the rest is the failover order the router walks when the home shard
    is draining, down, or circuit-open.
    """
    def score(backend_id: str) -> bytes:
        return hashlib.sha256(
            f"{key}\x00{backend_id}".encode("utf-8")
        ).digest()

    return sorted(backend_ids, key=lambda b: (score(b), b), reverse=True)


def _digest(material: str) -> str:
    return hashlib.sha256(material.encode("utf-8", "replace")).hexdigest()


class FingerprintResolver:
    """Payload → (routing key, how it was derived).

    The LRU is keyed by a digest of the *raw* material (kind + source),
    so resolving never compiles the same program twice while the entry
    is warm; the stored key is the true module fingerprint when the
    frontend accepts the source.  Thread-safe: the router resolves in a
    worker thread to keep the event loop responsive, and tests may hit
    it from several threads.
    """

    def __init__(
        self,
        limits: Optional[InputLimits] = None,
        cache_size: int = 256,
    ) -> None:
        if cache_size < 0:
            raise ValueError(f"cache_size must be >= 0, got {cache_size}")
        self.limits = limits or InputLimits()
        self._cache: "collections.OrderedDict[str, Tuple[str, str]]" = (
            collections.OrderedDict()
        )
        self._cache_size = cache_size
        self._lock = threading.Lock()
        self.compiled = 0
        self.cache_hits = 0
        self.fallbacks = 0

    def resolve(self, payload: object) -> Tuple[str, str]:
        """The routing key for a decoded job payload.

        Returns ``(key, KEY_MODULE)`` when the source compiles/parses
        and ``(key, KEY_DIGEST)`` otherwise.  Only ``kind`` and
        ``source`` feed the key: the module *is* the locality unit —
        the same program with different entry/args still wants the same
        shard's warm caches.
        """
        if not isinstance(payload, dict) or not isinstance(
            payload.get("source"), str
        ):
            with self._lock:
                self.fallbacks += 1
            return _digest(repr(payload)), KEY_DIGEST
        kind = payload.get("kind", "minic")
        material = f"{kind}\x00{payload['source']}"
        cache_key = _digest(material)
        with self._lock:
            hit = self._cache.get(cache_key)
            if hit is not None:
                self._cache.move_to_end(cache_key)
                self.cache_hits += 1
                return hit
        entry = self._fingerprint(kind, payload["source"], material)
        with self._lock:
            if entry[1] == KEY_DIGEST:
                self.fallbacks += 1
            else:
                self.compiled += 1
            if self._cache_size:
                self._cache[cache_key] = entry
                self._cache.move_to_end(cache_key)
                while len(self._cache) > self._cache_size:
                    self._cache.popitem(last=False)
        return entry

    def _fingerprint(self, kind: str, source: str, material: str) -> Tuple[str, str]:
        from repro.parallel.fingerprint import module_fingerprint

        try:
            if kind == "minic":
                from repro.frontend.lower import compile_source

                module = compile_source(source, limits=self.limits)
            elif kind == "ir":
                from repro.ir.parser import parse_module

                self.limits.check_source(source)
                module = parse_module(source)
            else:
                return _digest(material), KEY_DIGEST
            return module_fingerprint(module)[0], KEY_MODULE
        except Exception:
            # Anything the frontend rejects (or an unexpectedly hostile
            # source) routes by content digest; the backend owns turning
            # it into a structured 4xx.  The router must never die here.
            return _digest(material), KEY_DIGEST

    def counters(self) -> dict:
        with self._lock:
            return {
                "compiled": self.compiled,
                "cache_hits": self.cache_hits,
                "fallbacks": self.fallbacks,
                "entries": len(self._cache),
            }
