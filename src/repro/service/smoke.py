"""End-to-end service smoke: boot, abuse, verify, drain.

``python -m repro.service.smoke`` boots a real daemon subprocess and
drives the full robustness story against it:

1. health and readiness answer;
2. a concurrent batch — healthy jobs, one poisoned job (worker-level
   chaos ``crash=1.0`` on a named function → quarantine, degraded), one
   over-deadline job (must come back 504, never hang);
3. a burst past the admission bound — at least one 429 with a
   ``retry_after_s`` hint and at least one success;
4. optionally, seeded service-level chaos traffic (``--chaos``):
   dropped connections, slow-loris bodies, mid-stream disconnects,
   malformed payloads — the daemon must survive all of it;
5. the byte-identity invariant: every *completed* job's IR, printed
   output, and return value equal a fresh serial in-process run of the
   same payload (degraded jobs must still match on observable
   behaviour — quarantine is sound by construction);
6. SIGTERM → clean drain, exit 0, and ``killpg`` proves no orphaned
   worker processes survived.

``--artifacts-dir DIR`` tees the daemon's stderr to
``DIR/daemon-stderr.log`` as it happens and captures one streaming
job's NDJSON span feed to ``DIR/spans.ndjson`` — the diagnostics CI
uploads when a smoke run fails, so a hung run is debuggable from the
CI UI instead of leaving nothing behind.

Exit codes: 0 all checks passed, 1 a check failed, 2 setup trouble.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
from typing import Dict, List, Optional, Tuple

from repro.service.chaos import ServiceChaosConfig
from repro.service.client import ChaosTraffic, Response, ServiceClient
from repro.service.cluster import ServiceProcess

HEALTHY_PROGRAM = """
int step(int n) {
    int i; int s;
    s = 0;
    for (i = 0; i < n; i++) { s = s + i * 2 - 1; }
    return s;
}
int main() {
    int t;
    t = step(3000);
    print(t);
    return t % 7;
}
"""

SECOND_PROGRAM = """
int g;
int work(int n) {
    int i; int acc;
    acc = g;
    for (i = 0; i < n; i++) { acc = acc + i; g = acc; }
    return acc;
}
int main() {
    int r;
    r = work(2000);
    print(r); print(g);
    return r % 5;
}
"""

HEAVY_PROGRAM = """
int main() {
    int i; int j; int s;
    s = 0;
    for (i = 0; i < 2000; i++) {
        for (j = 0; j < 400; j++) { s = s + i - j; }
    }
    print(s);
    return 0;
}
"""


def healthy_payload(program: str = HEALTHY_PROGRAM) -> Dict[str, object]:
    return {"kind": "minic", "source": program}


def poisoned_payload() -> Dict[str, object]:
    """Worker-level chaos at rate 1.0 on ``step``: every attempt dies,
    the resilient executor quarantines it, the job completes degraded."""
    return {
        "kind": "minic",
        "source": HEALTHY_PROGRAM,
        "options": {"jobs": 2, "retries": 1, "chaos": "crash=1.0,only=step,seed=1"},
    }


def over_deadline_payload() -> Dict[str, object]:
    return {
        "kind": "minic",
        "source": HEAVY_PROGRAM,
        "options": {"deadline_s": 0.2, "max_steps": 3_000_000},
    }


def fresh_serial_run(payload: Dict[str, object]) -> Tuple[str, List[str], int]:
    """The reference the byte-identity invariant is stated against: a
    brand-new serial pipeline run in this process."""
    from repro.frontend.lower import compile_source
    from repro.ir.printer import print_module
    from repro.profile.interp import Interpreter
    from repro.promotion.pipeline import PromotionPipeline

    entry = payload.get("entry", "main")
    args = payload.get("args", [])
    module = compile_source(payload["source"])
    PromotionPipeline(entry=entry, args=args).run(module)
    run = Interpreter(module).run(entry, args)
    output = [" ".join(str(v) for v in values) for values in run.output]
    return print_module(module), output, run.return_value & 0xFF


class SmokeFailure(AssertionError):
    pass


def check(condition: bool, message: str) -> None:
    if not condition:
        raise SmokeFailure(message)


class DaemonProcess(ServiceProcess):
    """The daemon under test: a :class:`ServiceProcess` with the smoke
    run's fixed service shape (2 workers, a 3-slot queue, a 1.5s
    slow-loris window) baked into the argv."""

    def __init__(
        self,
        extra_args: Optional[List[str]] = None,
        stderr_path: Optional[str] = None,
    ) -> None:
        super().__init__(
            [
                sys.executable,
                "-m",
                "repro.service",
                "--workers",
                "2",
                "--max-queue",
                "3",
                "--drain-grace",
                "20",
                "--body-timeout",
                "1.5",
            ]
            + list(extra_args or []),
            name="daemon",
            stderr_path=stderr_path,
        )

    def assert_no_orphans(self) -> None:
        try:
            super().assert_no_orphans()
        except AssertionError as exc:
            raise SmokeFailure(str(exc)) from None


def _result_doc(response: Response) -> Dict[str, object]:
    check(
        response.status == 200,
        f"expected 200, got {response.status}: {response.body[:200]!r}",
    )
    doc = response.json()
    check(isinstance(doc, dict), "job response is not a JSON object")
    return doc


def assert_byte_identical(
    doc: Dict[str, object], payload: Dict[str, object], where: str
) -> None:
    ir, output, return_value = fresh_serial_run(payload)
    check(doc["ir"] == ir, f"{where}: promoted IR differs from a fresh serial run")
    check(doc["output"] == output, f"{where}: printed output differs")
    check(doc["return_value"] == return_value, f"{where}: return value differs")


async def run_checks(
    client: ServiceClient,
    chaos: Optional[ServiceChaosConfig],
    requests: int,
    spans_path: Optional[str] = None,
) -> None:
    # 1. Liveness and readiness.
    health = (await client.get("/healthz")).json()
    check(health["status"] == "ok", f"healthz says {health['status']!r}")
    ready = await client.get("/readyz")
    check(ready.status == 200, f"readyz says {ready.status}")
    print("smoke: health/readiness ok")

    # 2. Concurrent batch: healthy + poisoned + over-deadline.
    healthy = healthy_payload()
    second = healthy_payload(SECOND_PROGRAM)
    batch = await asyncio.gather(
        client.submit(healthy),
        client.submit(second),
        client.submit(poisoned_payload()),
        client.submit(over_deadline_payload()),
    )
    healthy_doc = _result_doc(batch[0])
    second_doc = _result_doc(batch[1])
    assert_byte_identical(healthy_doc, healthy, "healthy job")
    assert_byte_identical(second_doc, second, "second healthy job")

    poisoned_resp = batch[2]
    check(
        poisoned_resp.status == 200,
        f"poisoned job should complete degraded, got {poisoned_resp.status}: "
        f"{poisoned_resp.body[:200]!r}",
    )
    poisoned_doc = poisoned_resp.json()
    check(poisoned_doc["degraded"], "poisoned job did not report degraded")
    # The designed path: every parallel attempt on 'step' crashes, the
    # resilient executor quarantines it.  On a heavily loaded host the
    # worker pool can fall back to serial first — worker-level chaos
    # then never fires and the quarantine list is honestly empty; the
    # job is still degraded and behaviour-preserving.  Any *other*
    # function in the list is a real bug either way.
    check(
        poisoned_doc["quarantined"] in (["step"], []),
        f"poisoned job quarantined {poisoned_doc['quarantined']}, expected 'step'",
    )
    # Quarantine keeps pre-promotion IR, so only observable behaviour —
    # not the IR text — must match the fresh serial run.
    _, ref_output, ref_return = fresh_serial_run(healthy)
    check(poisoned_doc["output"] == ref_output, "poisoned job output diverged")
    check(poisoned_doc["return_value"] == ref_return, "poisoned job return diverged")

    deadline_resp = batch[3]
    check(
        deadline_resp.status == 504,
        f"over-deadline job should 504, got {deadline_resp.status}: "
        f"{deadline_resp.body[:200]!r}",
    )
    check(
        deadline_resp.json()["error"] == "deadline-exceeded",
        "over-deadline job error code is wrong",
    )
    print("smoke: batch ok (healthy byte-identical, poisoned degraded, 504 on time)")

    # 2b. One streaming job, captured as an NDJSON artifact: spans then
    # the final result.  Written before the burst/chaos phases so a
    # later hang still leaves a span timeline to upload.
    if spans_path is not None:
        events = await client.submit(healthy_payload(), stream=True)
        check(bool(events), "streaming job produced no NDJSON events")
        check(
            events[-1].get("event") == "result",
            f"streaming job's last event is {events[-1].get('event')!r}",
        )
        with open(spans_path, "w") as handle:
            for event in events:
                handle.write(json.dumps(event) + "\n")
        print(f"smoke: captured {len(events)} NDJSON events to {spans_path}")

    # 3. Burst past the admission bound: expect shedding AND progress.
    burst = await asyncio.gather(
        *[client.submit(healthy_payload()) for _ in range(10)]
    )
    statuses = [r.status for r in burst]
    shed = [r for r in burst if r.status == 429]
    completed = [r for r in burst if r.status == 200]
    check(shed, f"burst produced no 429s (statuses: {statuses})")
    check(completed, f"burst produced no successes (statuses: {statuses})")
    for rejection in shed:
        doc = rejection.json()
        check(doc["error"] == "overloaded", "429 body missing structured code")
        check(doc.get("retry_after_s", 0) > 0, "429 body missing retry_after_s")
    for response in completed:
        assert_byte_identical(response.json(), healthy, "burst job")
    print(
        f"smoke: burst ok ({len(shed)} shed with retry-after, "
        f"{len(completed)} completed byte-identical)"
    )

    # 4. Seeded service-level chaos traffic.
    if chaos is not None and chaos.enabled:
        traffic = ChaosTraffic(client, chaos)
        for index in range(requests):
            response = await traffic.send(index, healthy_payload())
            if isinstance(response, Response) and traffic.chaos.plan(index) in (
                None,
                "malformed",
            ):
                if traffic.chaos.plan(index) == "malformed":
                    check(
                        400 <= response.status < 500,
                        f"malformed request {index} got {response.status}",
                    )
                elif response.status == 200:
                    assert_byte_identical(
                        response.json(), healthy_payload(), f"chaos request {index}"
                    )
                else:
                    check(
                        response.status in (429, 503),
                        f"clean request {index} got {response.status}",
                    )
        health = (await client.get("/healthz")).json()
        check(
            health["status"] == "ok", "daemon unhealthy after chaos traffic"
        )
        final = await client.submit(healthy_payload())
        assert_byte_identical(_result_doc(final), healthy_payload(), "post-chaos job")
        print(f"smoke: chaos ok (shapes sent: {traffic.sent})")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-service-smoke", description="service end-to-end smoke"
    )
    parser.add_argument(
        "--chaos",
        metavar="SPEC",
        help="service chaos spec, e.g. "
        "'drop=0.2,slow=0.15,disconnect=0.2,malformed=0.2,seed=77'",
    )
    parser.add_argument(
        "--requests", type=int, default=12, help="chaos traffic volume"
    )
    parser.add_argument(
        "--artifacts-dir",
        metavar="DIR",
        help="tee daemon stderr and one job's NDJSON span feed into DIR "
        "(the diagnostics CI uploads on failure)",
    )
    options = parser.parse_args(argv)

    chaos = None
    if options.chaos:
        try:
            chaos = ServiceChaosConfig.parse(options.chaos)
        except ValueError as exc:
            print(f"smoke: error: --chaos: {exc}", file=sys.stderr)
            return 2
        if chaos.slow_delay_s == 0.5:
            # Default trickle must outlast the daemon's 1.5s body window
            # across a whole body; 0.5s/16B chunks already does, but be
            # explicit for small payloads.
            chaos.slow_delay_s = 2.0

    stderr_path = spans_path = None
    if options.artifacts_dir:
        try:
            os.makedirs(options.artifacts_dir, exist_ok=True)
        except OSError as exc:
            print(
                f"smoke: error: cannot create {options.artifacts_dir}: {exc}",
                file=sys.stderr,
            )
            return 2
        stderr_path = os.path.join(options.artifacts_dir, "daemon-stderr.log")
        spans_path = os.path.join(options.artifacts_dir, "spans.ndjson")

    daemon_extra = (
        ["--artifacts-dir", options.artifacts_dir]
        if options.artifacts_dir
        else None
    )
    daemon = DaemonProcess(extra_args=daemon_extra, stderr_path=stderr_path)
    try:
        daemon.boot()
    except (RuntimeError, OSError) as exc:
        print(f"smoke: error: {exc}", file=sys.stderr)
        daemon.kill()
        return 2
    print(f"smoke: daemon up at {daemon.host}:{daemon.port} (pid {daemon.proc.pid})")

    try:
        client = ServiceClient(daemon.host, daemon.port, timeout_s=120.0)
        asyncio.run(run_checks(client, chaos, options.requests, spans_path))

        rc = daemon.sigterm_and_wait()
        check(rc == 0, f"daemon exited {rc} after SIGTERM (want clean drain 0)")
        daemon.assert_no_orphans()
        print("smoke: drain ok (exit 0, no orphaned workers)")
    except SmokeFailure as exc:
        print(f"smoke: FAIL: {exc}", file=sys.stderr)
        daemon.kill()
        return 1
    except Exception as exc:  # noqa: BLE001 - report, don't hang CI
        print(f"smoke: error: {type(exc).__name__}: {exc}", file=sys.stderr)
        daemon.kill()
        return 2
    print("smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
