"""SSA construction, destruction, and incremental update.

* :mod:`repro.ssa.construct` — classic SSA construction (a "mem2reg"
  pass) that promotes unexposed scalar locals from memory to registers.
  This is a *substrate*, not the paper's contribution: the paper's
  candidates (globals, exposed locals, fields) stay in memory.
* :mod:`repro.ssa.destruct` — out-of-SSA translation (phi elimination
  with parallel-copy sequentialization; memory-SSA annotations dropped).
* :mod:`repro.ssa.incremental` — the paper's batched incremental SSA
  update for cloned definitions (Section 4.5, Figure 11).
* :mod:`repro.ssa.css96` — the Choi-Sarkar-Schonberg one-definition-at-
  a-time comparator the paper argues against.
* :mod:`repro.ssa.unionfind` — the union-find structure behind SSA web
  construction (Figure 3).
"""

from repro.ssa.unionfind import UnionFind

__all__ = ["UnionFind"]
