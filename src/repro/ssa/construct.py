"""Classic SSA construction: promote unexposed scalar locals to registers.

The front end lowers *every* variable to memory; this pass (the moral
equivalent of LLVM's ``mem2reg``) rewrites scalar locals whose address is
never taken into pure SSA register form, inserting phis at the iterated
dominance frontier of their stores [CFR+91].  What it deliberately leaves
in memory — globals, address-exposed locals, scalar struct fields — is
exactly the candidate set of the paper's register promotion.
"""

from __future__ import annotations

from typing import Dict, List

from repro.ir import instructions as I
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.ir.values import UNDEF, Value, VReg
from repro.memory.resources import MemoryVar, VarKind
from repro.parallel import cache as analysis_cache


def promotable_locals(function: Function) -> List[MemoryVar]:
    """Scalar, non-address-exposed frame variables, in declaration order."""
    return [
        v
        for v in function.frame_vars.values()
        if v.kind is VarKind.LOCAL and v.is_scalar and not v.address_taken
    ]


def construct_ssa(function: Function) -> int:
    """Run mem2reg on ``function``; returns the number of promoted locals.

    Promoted variables' loads and stores are deleted; their frame slots
    are removed from the function.  Reads of a never-stored variable see
    ``undef`` (the interpreter reads undef as 0, matching the front end's
    zero-initialization of locals).
    """
    candidates = promotable_locals(function)
    if not candidates:
        return 0
    candidate_ids = {id(v) for v in candidates}
    domtree = analysis_cache.dominator_tree(function)

    # Phi placement at the IDF of each variable's store blocks.
    phi_var: Dict[int, MemoryVar] = {}
    for var in candidates:
        def_blocks: List[BasicBlock] = []
        seen = set()
        for block in domtree.reachable:
            for inst in block.instructions:
                if (
                    isinstance(inst, I.Store)
                    and inst.var is var
                    and id(block) not in seen
                ):
                    seen.add(id(block))
                    def_blocks.append(block)
        for block in analysis_cache.idf(function, domtree, def_blocks):
            phi = I.Phi(function.new_reg(var.name), [])
            block.insert_at_front(phi)
            phi_var[id(phi)] = var

    # Renaming walk: record a replacement for every deleted load's target,
    # fill phi operands from each predecessor's end-of-block environment.
    replacement: Dict[VReg, Value] = {}
    stacks: Dict[int, List[Value]] = {id(v): [UNDEF] for v in candidates}
    to_delete: List[I.Instruction] = []

    work: List = [("visit", function.entry)]
    pushed_counts: Dict[int, Dict[int, int]] = {}
    while work:
        action, block = work.pop()
        if action == "leave":
            for var_id, count in pushed_counts.pop(id(block)).items():
                del stacks[var_id][-count:]
            continue

        pushed: Dict[int, int] = {}
        for inst in list(block.instructions):
            if isinstance(inst, I.Phi) and id(inst) in phi_var:
                var = phi_var[id(inst)]
                stacks[id(var)].append(inst.dst)
                pushed[id(var)] = pushed.get(id(var), 0) + 1
            elif isinstance(inst, I.Load) and id(inst.var) in candidate_ids:
                replacement[inst.dst] = stacks[id(inst.var)][-1]
                to_delete.append(inst)
            elif isinstance(inst, I.Store) and id(inst.var) in candidate_ids:
                stacks[id(inst.var)].append(inst.value)
                pushed[id(inst.var)] = pushed.get(id(inst.var), 0) + 1
                to_delete.append(inst)
        pushed_counts[id(block)] = pushed

        for succ in block.succs:
            for phi in succ.phis():
                if id(phi) in phi_var:
                    var = phi_var[id(phi)]
                    phi.set_incoming(block, stacks[id(var)][-1])

        work.append(("leave", block))
        for child in reversed(domtree.children.get(block, [])):
            work.append(("visit", child))

    # Resolve replacement chains (a load's value may itself be a deleted
    # load's target) and rewrite every operand in one global pass.
    def resolve(value: Value) -> Value:
        seen = set()
        while isinstance(value, VReg) and value in replacement:
            if id(value) in seen:  # defensive; cycles cannot happen
                break
            seen.add(id(value))
            value = replacement[value]
        return value

    for inst in function.instructions():
        if isinstance(inst, I.Phi):
            inst.incoming = [(b, resolve(v)) for b, v in inst.incoming]
            inst._sync_operands()
        else:
            for i, op in enumerate(inst.operands):
                inst.operands[i] = resolve(op)

    for inst in to_delete:
        inst.remove_from_block()
    for var in candidates:
        del function.frame_vars[var.name]

    # Stores in unreachable blocks were not renamed; strip them so no
    # dangling references to removed frame vars remain.
    for block in function.blocks:
        if block not in domtree.idom and block is not function.entry:
            block.instructions = [
                inst
                for inst in block.instructions
                if not (
                    isinstance(inst, (I.Load, I.Store))
                    and id(inst.var) in candidate_ids
                )
            ]
    return len(candidates)
