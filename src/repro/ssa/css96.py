"""One-definition-at-a-time incremental SSA update — the [CSS96] stand-in.

Choi, Sarkar and Schonberg's incremental SSA algorithm (Compiler
Construction 1996) updates SSA form for a *single* inserted definition,
recomputing an iterated dominance frontier each time.  The paper argues
its batched update is cheaper: "For m definitions, they need O(m x n)
time to compute iterative dominance frontier" versus one linear-time
batched computation.

This module reproduces that comparator by driving the same machinery one
cloned definition at a time: each step pays a full dominator-tree +
IDF + use-scan cost.  Results are semantically identical to the batched
update (the equivalence tests check this); only the compile-time cost
differs, which ``benchmarks/test_incremental_vs_css96.py`` measures.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.analysis.dominance import DominatorTree
from repro.ir.function import Function
from repro.memory.resources import MemName
from repro.observability.metrics import ambient
from repro.ssa.incremental import (
    UpdateStats,
    names_of_var,
    update_ssa_for_cloned_resources,
)


def css96_update(
    function: Function,
    old_names: Sequence[MemName],
    cloned_names: Sequence[MemName],
) -> List[UpdateStats]:
    """Apply the cloned-definition update one definition at a time.

    After each step the set of "existing" names is rescanned from the
    function (phi targets placed by earlier steps become old names for
    later ones), and the dominator tree is recomputed — the per-definition
    costs the paper's batched algorithm avoids.
    """
    if not cloned_names:
        return []
    var = cloned_names[0].var
    stats: List[UpdateStats] = []
    known_old = list(old_names)
    for cloned in cloned_names:
        domtree = DominatorTree.compute(function)  # per-definition cost
        current_old = [
            n for n in names_of_var(function, var, known_old) if n is not cloned
        ]
        stats.append(
            update_ssa_for_cloned_resources(
                function, current_old, [cloned], domtree=domtree
            )
        )
        known_old.append(cloned)

    # The per-step updates above also bump ``ssa.incremental.*`` (this
    # comparator drives the same machinery); the ``ssa.css96.*`` counters
    # isolate what the one-at-a-time discipline did in total.
    metrics = ambient()
    metrics.inc("ssa.css96.updates", len(stats))
    metrics.inc("ssa.css96.phis_placed", sum(s.phis_placed for s in stats))
    metrics.inc("ssa.css96.phis_reused", sum(s.phis_reused for s in stats))
    metrics.inc("ssa.css96.uses_renamed", sum(s.uses_renamed for s in stats))
    return stats
