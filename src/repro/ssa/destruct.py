"""Out-of-SSA translation.

Register phis are eliminated by inserting copies at the end of each
predecessor.  All phis of a block form one *parallel* copy per incoming
edge; sequentialization breaks dependency cycles (the "swap problem")
with a temporary and relies on prior critical-edge splitting to avoid the
"lost copy" problem.

Memory SSA is left by simply dropping names: every load/store already
carries its base variable ("all of the singleton memory resources that
refer to the same memory location must be replaced by one unique name" —
Section 3; our unique name is the ``MemoryVar`` itself), and memory phis
are deleted.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.analysis.cfgutils import split_critical_edges
from repro.ir import instructions as I
from repro.ir.function import Function
from repro.ir.values import Value, VReg


def destruct_ssa(function: Function) -> None:
    """Convert out of SSA form (registers and memory)."""
    drop_memory_ssa(function)
    eliminate_phis(function)


def drop_memory_ssa(function: Function) -> None:
    """Delete memory phis and clear all memory-SSA annotations."""
    for block in function.blocks:
        block.instructions = [
            inst for inst in block.instructions if not isinstance(inst, I.MemPhi)
        ]
        for inst in block.instructions:
            inst.mem_uses = []
            inst.mem_defs = []


def eliminate_phis(function: Function) -> None:
    """Replace register phis with copies in predecessors."""
    split_critical_edges(function)
    for block in list(function.blocks):
        phis = list(block.phis())
        if not phis:
            continue
        for pred in list(block.preds):
            parallel: List[Tuple[VReg, Value]] = []
            for phi in phis:
                src = phi.value_for(pred)
                if src is not phi.dst:
                    parallel.append((phi.dst, src))
            for dst, src in _sequentialize(function, parallel):
                pred.insert_before_terminator(I.Copy(dst, src))
        for phi in phis:
            phi.remove_from_block()


def _sequentialize(
    function: Function, copies: List[Tuple[VReg, Value]]
) -> List[Tuple[VReg, Value]]:
    """Order a parallel copy set, breaking cycles with a temporary.

    A copy ``d = s`` is safe to emit when no *pending* copy still reads
    ``d``.  When only cycles remain (e.g. ``a = b; b = a``), save one
    destination into a fresh temporary and redirect its readers.
    """
    pending = list(copies)
    ordered: List[Tuple[VReg, Value]] = []
    while pending:
        emitted = None
        for i, (dst, src) in enumerate(pending):
            still_read = any(s is dst for j, (d, s) in enumerate(pending) if j != i)
            if not still_read:
                emitted = i
                break
        if emitted is not None:
            ordered.append(pending.pop(emitted))
            continue
        # Every pending destination is still read: a cycle.  Break it.
        dst, src = pending[0]
        temp = function.new_reg("swap")
        ordered.append((temp, dst))
        pending = [(d, temp if s is dst else s) for d, s in pending]
    return ordered
