"""Incremental SSA update for cloned definitions (Section 4.5, Fig. 11).

Given a set of *existing* SSA names of one memory variable (``old_names``)
and a set of *cloned* names whose defining instructions have just been
inserted (``cloned_names``), re-establish SSA form:

1. collect the definition blocks of all old and cloned names; place a
   memory phi at every block of their iterated dominance frontier (batched
   — one IDF computation for all definitions, which is the efficiency
   claim against [CSS96]'s one-definition-at-a-time updates);
2. rename every use of an old name to its reaching definition, found by
   walking the dominator tree bottom-up (``computeReachingDef``);
3. fill in the sources of the phis that step 2 made live, propagating
   liveness through newly referenced phis;
4. delete every deletable definition whose target has no remaining use —
   dead old stores, dead memory phis (old or just-inserted), and dead
   cloned stores — iterating to a fixed point so that "no dead code is
   caused by the transformation which clones definitions".

Notes beyond the paper's pseudocode:

* An IDF block may already hold a memory phi for the variable (the
  original SSA phis sit on the IDF of the old definitions).  We reuse it:
  its incoming names are use references and get renamed by step 2, which
  is exactly the refill the new phi would have received.
* Only stores and memory phis are deletable; a call or pointer store that
  defines a dead name stays (it has effects beyond this variable) — its
  dead name is simply left without readers.
* The live-on-entry name (version 0) participates as a definition "above"
  the entry block, so renaming is total on every path on which the
  variable is defined at all.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.dominance import DominatorTree
from repro.ir import instructions as I
from repro.ir.basicblock import BasicBlock
from repro.ir.function import Function
from repro.memory.resources import MemName, MemoryVar
from repro.observability.metrics import ambient
from repro.parallel import cache as analysis_cache


def names_of_var(
    function: Function, var: MemoryVar, seed: Sequence[MemName] = ()
) -> List[MemName]:
    """Every name of ``var`` referenced in ``function``, plus any seed
    names (e.g. the live-on-entry name) whose definitions still exist."""
    names: List[MemName] = []
    seen: Set[int] = set()

    def add(name: Optional[MemName]) -> None:
        if name is not None and name.var is var and id(name) not in seen:
            seen.add(id(name))
            names.append(name)

    for name in seed:
        if name.def_inst is not None and name.def_inst.block is None:
            continue  # definition was deleted
        add(name)
    for inst in function.instructions():
        for name in inst.mem_uses:
            add(name)
        for name in inst.mem_defs:
            add(name)
    return names


class UpdateStats:
    """What one incremental update did (used by tests and benchmarks)."""

    def __init__(self) -> None:
        self.phis_placed = 0
        self.phis_reused = 0
        self.uses_renamed = 0
        self.defs_deleted = 0
        self.phis_deleted = 0

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"UpdateStats(placed={self.phis_placed}, reused={self.phis_reused}, "
            f"renamed={self.uses_renamed}, defs_deleted={self.defs_deleted}, "
            f"phis_deleted={self.phis_deleted})"
        )


def update_ssa_for_cloned_resources(
    function: Function,
    old_names: Sequence[MemName],
    cloned_names: Sequence[MemName],
    domtree: Optional[DominatorTree] = None,
) -> UpdateStats:
    """The paper's ``updateSSAForClonedResources`` (Figure 11).

    ``old_names`` must contain every existing name of the variable that
    may reach an affected use (passing *all* names of the variable is
    always safe); ``cloned_names`` are the freshly inserted definitions.
    All names must belong to one variable.
    """
    stats = UpdateStats()
    if not cloned_names:
        return stats
    var = cloned_names[0].var
    for name in list(old_names) + list(cloned_names):
        if name.var is not var:
            raise ValueError(
                f"mixed variables in SSA update: {name} is not a name of {var.name}"
            )
    domtree = domtree or analysis_cache.dominator_tree(function)
    positions = _positions(function)

    # ---- Step 1: batched phi placement -------------------------------
    init_def_blocks: List[BasicBlock] = []
    seen_blocks: Set[int] = set()
    for name in list(old_names) + list(cloned_names):
        block = _def_block(function, name, positions)
        if id(block) not in seen_blocks:
            seen_blocks.add(id(block))
            init_def_blocks.append(block)

    phi_targets: List[MemName] = []
    new_phis: Set[int] = set()
    for block in analysis_cache.idf(function, domtree, init_def_blocks):
        existing = _phi_for_var(block, var)
        if existing is not None:
            stats.phis_reused += 1
            continue
        target = function.new_mem_name(var)
        phi = I.MemPhi(var, target, [])
        block.insert_at_front(phi)
        new_phis.add(id(phi))
        phi_targets.append(target)
        stats.phis_placed += 1
    positions = _positions(function)  # phi insertion shifted indices

    all_defs: List[MemName] = list(old_names) + list(cloned_names) + phi_targets
    all_def_ids = {id(n) for n in all_defs}
    block_defs = _block_def_index(function, all_def_ids, positions)

    def reaching_def(block: BasicBlock, position: int) -> MemName:
        found = _compute_reaching_def(domtree, block_defs, old_names, block, position)
        if found is None:
            raise ValueError(
                f"no reaching definition of {var.name} at {block.name}:{position}"
            )
        return found

    # ---- Step 2: rename the uses of old names ----------------------------
    old_ids = {id(n) for n in old_names}
    phi_worklist: List[I.MemPhi] = []
    enqueued: Set[int] = set()

    def note_reaching_phi(name: MemName) -> None:
        inst = name.def_inst
        if inst is not None and id(inst) in new_phis and id(inst) not in enqueued:
            enqueued.add(id(inst))
            phi_worklist.append(inst)  # type: ignore[arg-type]

    for block in function.blocks:
        for index, inst in enumerate(block.instructions):
            if isinstance(inst, I.MemPhi):
                if inst.var is not var or id(inst) in new_phis:
                    continue
                for pred, name in list(inst.incoming):
                    if id(name) not in old_ids:
                        continue
                    new_name = reaching_def(pred, len(pred.instructions))
                    if new_name is not name:
                        inst.set_incoming(pred, new_name)
                        stats.uses_renamed += 1
                    note_reaching_phi(new_name)
            else:
                for slot, name in enumerate(inst.mem_uses):
                    if id(name) not in old_ids:
                        continue
                    new_name = reaching_def(block, index)
                    if new_name is not name:
                        inst.mem_uses[slot] = new_name
                        stats.uses_renamed += 1
                    note_reaching_phi(new_name)

    # ---- Step 3: fill live phis, propagating liveness --------------------
    while phi_worklist:
        phi = phi_worklist.pop()
        block = phi.block
        assert block is not None
        for pred in block.preds:
            # A "virtual use instruction at the end of predBB".
            name = reaching_def(pred, len(pred.instructions))
            phi.set_incoming(pred, name)
            note_reaching_phi(name)

    # ---- Step 4: delete dead definitions ---------------------------------
    stats.defs_deleted, stats.phis_deleted = _delete_dead_defs(function, all_defs)

    metrics = ambient()
    metrics.inc("ssa.incremental.updates")
    metrics.inc("ssa.incremental.phis_placed", stats.phis_placed)
    metrics.inc("ssa.incremental.phis_reused", stats.phis_reused)
    metrics.inc("ssa.incremental.uses_renamed", stats.uses_renamed)
    metrics.inc("ssa.incremental.defs_deleted", stats.defs_deleted)
    metrics.inc("ssa.incremental.phis_deleted", stats.phis_deleted)
    return stats


def convert_var_to_ssa(function, var, alias_model) -> MemName:
    """Incrementally convert one memory variable into SSA form.

    The paper's third application of the update (§4.4): "When a compiler
    phase adds a new resource with multiple definitions and uses to the
    code stream, the resource can be converted into SSA form by using the
    incremental update algorithm."

    Every use of ``var`` is seeded with the live-on-entry name and every
    definition gets a fresh name; one batched update then renames the
    uses to their true reaching definitions and places the necessary
    phis.  Returns the entry name.  Any existing annotations for ``var``
    are discarded first.
    """
    # Clear prior annotations of this variable.
    for block in function.blocks:
        for inst in list(block.instructions):
            if isinstance(inst, I.MemPhi) and inst.var is var:
                inst.remove_from_block()
                continue
            inst.mem_uses = [n for n in inst.mem_uses if n.var is not var]
            inst.mem_defs = [n for n in inst.mem_defs if n.var is not var]

    entry = MemName(var, 0, None)
    cloned: List[MemName] = []
    for inst in function.instructions():
        if any(v is var for v in alias_model.may_use_vars(function, inst)):
            inst.mem_uses.append(entry)
        if any(v is var for v in alias_model.may_def_vars(function, inst)):
            name = function.new_mem_name(var, inst)
            inst.mem_defs.append(name)
            cloned.append(name)
    update_ssa_for_cloned_resources(function, [entry], cloned)
    return entry


def _delete_dead_defs(
    function: Function, candidates: Sequence[MemName]
) -> Tuple[int, int]:
    """Delete stores/memphis among ``candidates`` whose names are unused,
    cascading to a fixed point.  Returns (defs deleted, of which phis)."""
    deleted = phis = 0
    remaining = list(candidates)
    while True:
        used: Set[int] = set()
        for inst in function.instructions():
            for name in inst.mem_uses:
                used.add(id(name))
        victims = []
        for name in remaining:
            inst = name.def_inst
            if inst is None or inst.block is None:
                continue
            if id(name) in used:
                continue
            if isinstance(inst, (I.Store, I.MemPhi)):
                victims.append(name)
        if not victims:
            return deleted, phis
        for name in victims:
            inst = name.def_inst
            if isinstance(inst, I.MemPhi):
                phis += 1
            deleted += 1
            inst.remove_from_block()
        remaining = [n for n in remaining if n not in victims]


def _positions(function: Function) -> Dict[int, Tuple[BasicBlock, int]]:
    positions: Dict[int, Tuple[BasicBlock, int]] = {}
    for block in function.blocks:
        for index, inst in enumerate(block.instructions):
            positions[id(inst)] = (block, index)
    return positions


def _def_block(
    function: Function,
    name: MemName,
    positions: Dict[int, Tuple[BasicBlock, int]],
) -> BasicBlock:
    if name.def_inst is None:
        return function.entry  # live-on-entry: defined "above" the entry
    block = name.def_inst.block
    if block is None:
        raise ValueError(f"{name} is defined by a detached instruction")
    return block


def _phi_for_var(block: BasicBlock, var: MemoryVar) -> Optional[I.MemPhi]:
    for phi in block.mem_phis():
        if phi.var is var:
            return phi
    return None


def _block_def_index(
    function: Function,
    def_ids: Set[int],
    positions: Dict[int, Tuple[BasicBlock, int]],
) -> Dict[int, List[Tuple[int, MemName]]]:
    """Per-block ordered (index, name) lists of the tracked definitions."""
    index: Dict[int, List[Tuple[int, MemName]]] = {}
    for block in function.blocks:
        entries: List[Tuple[int, MemName]] = []
        for pos, inst in enumerate(block.instructions):
            for name in inst.mem_defs:
                if id(name) in def_ids:
                    entries.append((pos, name))
        if entries:
            index[id(block)] = entries
    return index


def _compute_reaching_def(
    domtree: DominatorTree,
    block_defs: Dict[int, List[Tuple[int, MemName]]],
    old_names: Sequence[MemName],
    block: BasicBlock,
    position: int,
) -> Optional[MemName]:
    """The paper's ``computeReachingDef``: walk the dominator tree
    bottom-up; within a block the latest definition preceding the use
    wins."""
    current: Optional[BasicBlock] = block
    limit = position
    while current is not None:
        best: Optional[Tuple[int, MemName]] = None
        for pos, name in block_defs.get(id(current), ()):
            if pos < limit and (best is None or pos > best[0]):
                best = (pos, name)
        if best is not None:
            return best[1]
        current = domtree.idom.get(current)
        limit = 1 << 60  # whole block once above the use's block
    # Above the entry block: the live-on-entry name, if tracked.
    for name in old_names:
        if name.def_inst is None:
            return name
    return None
