"""Union-find (disjoint sets) with path compression and union by size.

The paper builds memory SSA webs with "a simple union-find algorithm
[AHU74]" (Figure 3); this is that structure, keyed by object identity so
it works directly on :class:`MemName` instances.
"""

from __future__ import annotations

from typing import Dict, Generic, List, TypeVar

T = TypeVar("T")


class UnionFind(Generic[T]):
    def __init__(self) -> None:
        self._parent: Dict[int, T] = {}
        self._size: Dict[int, int] = {}
        self._items: List[T] = []

    def add(self, item: T) -> T:
        """Register ``item`` as a singleton set (idempotent)."""
        if id(item) not in self._parent:
            self._parent[id(item)] = item
            self._size[id(item)] = 1
            self._items.append(item)
        return item

    def find(self, item: T) -> T:
        """Representative of ``item``'s set (with path compression)."""
        self.add(item)
        root = item
        while self._parent[id(root)] is not root:
            root = self._parent[id(root)]
        while self._parent[id(item)] is not item:
            parent = self._parent[id(item)]
            self._parent[id(item)] = root
            item = parent
        return root

    def union(self, a: T, b: T) -> T:
        """Merge the sets of ``a`` and ``b``; returns the representative."""
        ra, rb = self.find(a), self.find(b)
        if ra is rb:
            return ra
        if self._size[id(ra)] < self._size[id(rb)]:
            ra, rb = rb, ra
        self._parent[id(rb)] = ra
        self._size[id(ra)] += self._size[id(rb)]
        return ra

    def connected(self, a: T, b: T) -> bool:
        return self.find(a) is self.find(b)

    def groups(self) -> List[List[T]]:
        """All sets, each in insertion order; groups ordered by their
        first-inserted member (deterministic)."""
        by_root: Dict[int, List[T]] = {}
        for item in self._items:
            by_root.setdefault(id(self.find(item)), []).append(item)
        return list(by_root.values())

    def __len__(self) -> int:
        return len(self._items)
