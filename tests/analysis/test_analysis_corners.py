"""Edge cases across the analysis package not covered elsewhere."""

import pytest

from repro.analysis.cfgutils import edges, postorder, reverse_postorder
from repro.analysis.dominance import DominatorTree
from repro.analysis.intervals import IntervalTree
from repro.ir.parser import parse_module

from tests.support import irreducible, nested_loops, simple_loop


def test_single_block_function():
    module = parse_module(
        """
        func @f() {
        entry:
          ret
        }
        """
    )
    func = module.get_function("f")
    tree = DominatorTree.compute(func)
    assert tree.idom[func.entry] is None
    assert tree.depth[func.entry] == 0
    assert tree.dominance_frontier()[func.entry] == []
    itree = IntervalTree.compute(func)
    assert itree.intervals == []
    assert postorder(func) == [func.entry]


def test_lcd_of_single_block():
    module, func = simple_loop()
    tree = DominatorTree.compute(func)
    body = func.find_block("body")
    assert tree.least_common_dominator([body]) is body
    with pytest.raises(ValueError):
        tree.least_common_dominator([])


def test_back_edge_preds():
    module, func = simple_loop()
    itree = IntervalTree.compute(func)
    loop = itree.intervals[0]
    assert [b.name for b in loop.back_edge_preds()] == ["body"]


def test_back_edge_preds_improper():
    module, func = irreducible()
    itree = IntervalTree.compute(func)
    loop = itree.intervals[0]
    names = sorted(b.name for b in loop.back_edge_preds())
    assert names == ["a", "b"]  # each entry's in-SCC predecessor


def test_edges_deterministic_order():
    module, func = nested_loops()
    first = [(a.name, b.name) for a, b in edges(func)]
    second = [(a.name, b.name) for a, b in edges(func)]
    assert first == second
    assert len(first) == sum(len(b.succs) for b in func.blocks)


def test_rpo_and_postorder_are_reverses():
    module, func = nested_loops()
    assert list(reversed(postorder(func))) == reverse_postorder(func)


def test_interval_repr_readable():
    module, func = simple_loop()
    itree = IntervalTree.compute(func)
    assert "interval @header" in repr(itree.intervals[0])
    assert "root" in repr(itree.root)


def test_dominance_frontier_cached():
    module, func = nested_loops()
    tree = DominatorTree.compute(func)
    assert tree.dominance_frontier() is tree.dominance_frontier()


def test_estimator_loop_multiplier_knob():
    from repro.profile.estimator import estimate_profile

    module, func = nested_loops()
    gentle = estimate_profile(module, loop_multiplier=2)
    steep = estimate_profile(module, loop_multiplier=100)
    ibody = func.find_block("ibody")
    assert steep.freq(ibody) > gentle.freq(ibody)
    entry = func.find_block("entry")
    assert steep.freq(entry) == gentle.freq(entry) == 1
