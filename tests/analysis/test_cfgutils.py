from repro.analysis.cfgutils import (
    edges,
    is_critical_edge,
    postorder,
    remove_unreachable_blocks,
    reverse_postorder,
    split_critical_edges,
    split_edge,
)
from repro.ir.parser import parse_module
from repro.ir.verify import verify_function

from tests.support import diamond, simple_loop


def test_postorder_visits_all_reachable():
    _, func = diamond()
    po = postorder(func)
    assert sorted(b.name for b in po) == ["entry", "join", "left", "right"]
    assert po[-1].name == "entry"  # entry last in postorder


def test_rpo_entry_first():
    _, func = simple_loop()
    rpo = reverse_postorder(func)
    assert rpo[0].name == "entry"
    index = {b.name: i for i, b in enumerate(rpo)}
    assert index["header"] < index["body"]


def test_remove_unreachable():
    module = parse_module(
        """
        func @f() {
        entry:
          ret
        dead1:
          jmp dead2
        dead2:
          jmp dead1
        }
        """
    )
    func = module.get_function("f")
    removed = remove_unreachable_blocks(func)
    assert sorted(b.name for b in removed) == ["dead1", "dead2"]
    assert [b.name for b in func.blocks] == ["entry"]
    verify_function(func)


def test_is_critical_edge():
    module = parse_module(
        """
        func @f() {
        entry:
          %c = copy 1
          br %c, a, join
        a:
          jmp join
        join:
          ret
        }
        """
    )
    func = module.get_function("f")
    entry, a, join = func.blocks
    assert is_critical_edge(entry, join)
    assert not is_critical_edge(entry, a)
    assert not is_critical_edge(a, join)


def test_split_edge_fixes_phis():
    module = parse_module(
        """
        func @f() {
        entry:
          %c = copy 1
          br %c, a, join
        a:
          jmp join
        join:
          %v = phi [entry: 1, a: 2]
          ret %v
        }
        """
    )
    func = module.get_function("f")
    entry = func.find_block("entry")
    join = func.find_block("join")
    mid = split_edge(entry, join)
    verify_function(func, check_ssa=True)
    phi = next(join.phis())
    incoming_blocks = sorted(b.name for b, _ in phi.incoming)
    assert mid.name in incoming_blocks
    assert "entry" not in incoming_blocks


def test_split_critical_edges_removes_all():
    module = parse_module(
        """
        func @f() {
        entry:
          %c = copy 1
          br %c, a, join
        a:
          %d = copy 2
          br %d, join, other
        join:
          ret
        other:
          ret
        }
        """
    )
    func = module.get_function("f")
    inserted = split_critical_edges(func)
    assert len(inserted) == 2  # entry->join and a->join
    verify_function(func)
    for src, dst in edges(func):
        assert not is_critical_edge(src, dst), (src.name, dst.name)


def test_split_critical_edges_idempotent():
    _, func = simple_loop()
    split_critical_edges(func)
    n = len(func.blocks)
    assert split_critical_edges(func) == []
    assert len(func.blocks) == n


def test_condbr_both_arms_same_target():
    module = parse_module(
        """
        func @f() {
        entry:
          %c = copy 1
          br %c, join, join
        join:
          jmp out
        out:
          ret
        }
        """
    )
    func = module.get_function("f")
    entry, join = func.find_block("entry"), func.find_block("join")
    mid = split_edge(entry, join)
    verify_function(func)
    assert entry.succs == [mid]
