import pytest

from repro.analysis.dominance import DominatorTree
from repro.ir.parser import parse_module

from tests.support import diamond, irreducible, nested_loops, simple_loop


def blocks(func, *names):
    return [func.find_block(n) for n in names]


def test_diamond_idoms():
    _, func = diamond()
    tree = DominatorTree.compute(func)
    entry, left, right, join = blocks(func, "entry", "left", "right", "join")
    assert tree.idom[entry] is None
    assert tree.idom[left] is entry
    assert tree.idom[right] is entry
    assert tree.idom[join] is entry


def test_diamond_dominates():
    _, func = diamond()
    tree = DominatorTree.compute(func)
    entry, left, right, join = blocks(func, "entry", "left", "right", "join")
    assert tree.dominates(entry, join)
    assert tree.dominates(entry, entry)
    assert not tree.dominates(left, join)
    assert not tree.dominates(left, right)
    assert tree.strictly_dominates(entry, left)
    assert not tree.strictly_dominates(entry, entry)


def test_loop_idoms_and_depth():
    _, func = simple_loop()
    tree = DominatorTree.compute(func)
    entry, header, body, exitb = blocks(func, "entry", "header", "body", "exitb")
    assert tree.idom[header] is entry
    assert tree.idom[body] is header
    assert tree.idom[exitb] is header
    assert tree.depth[entry] == 0
    assert tree.depth[body] == 2


def test_dominance_frontier_diamond():
    _, func = diamond()
    tree = DominatorTree.compute(func)
    df = tree.dominance_frontier()
    entry, left, right, join = blocks(func, "entry", "left", "right", "join")
    assert df[left] == [join]
    assert df[right] == [join]
    assert df[entry] == []
    assert df[join] == []


def test_dominance_frontier_loop_header_in_own_frontier():
    _, func = simple_loop()
    tree = DominatorTree.compute(func)
    df = tree.dominance_frontier()
    header, body = blocks(func, "header", "body")
    assert header in df[header]
    assert header in df[body]


def test_least_common_dominator():
    _, func = nested_loops()
    tree = DominatorTree.compute(func)
    ih, ibody, olatch, oh = blocks(func, "ih", "ibody", "olatch", "oh")
    assert tree.least_common_dominator([ibody, olatch]) is ih
    assert tree.least_common_dominator([ih, oh]) is oh
    assert tree.least_common_dominator([ibody]) is ibody


def test_irreducible_dominators():
    _, func = irreducible()
    tree = DominatorTree.compute(func)
    entry, a, b = blocks(func, "entry", "a", "b")
    # Neither a nor b dominates the other; entry dominates both.
    assert tree.idom[a] is entry
    assert tree.idom[b] is entry
    assert not tree.dominates(a, b)
    assert not tree.dominates(b, a)


def test_unreachable_block_excluded():
    module = parse_module(
        """
        func @f() {
        entry:
          ret
        dead:
          jmp dead
        }
        """
    )
    func = module.get_function("f")
    tree = DominatorTree.compute(func)
    dead = func.find_block("dead")
    assert dead not in tree.idom
    with pytest.raises(KeyError):
        tree.dominates(func.entry, dead)


def test_dominates_agrees_with_definition():
    # Cross-check the O(1) query against the naive "remove a, is b still
    # reachable" definition on a non-trivial CFG.
    _, func = nested_loops()
    tree = DominatorTree.compute(func)

    def reachable_avoiding(avoid, target):
        seen, stack = set(), [func.entry]
        while stack:
            blk = stack.pop()
            if blk is avoid or id(blk) in seen:
                continue
            seen.add(id(blk))
            if blk is target:
                return True
            stack.extend(blk.succs)
        return False

    for a in func.blocks:
        for b in func.blocks:
            if a is b:
                continue
            expected = not reachable_avoiding(a, b)
            assert tree.strictly_dominates(a, b) == expected, (a.name, b.name)
