from repro.analysis.dominance import DominatorTree
from repro.analysis.idf import idf_cytron, idf_sreedhar_gao, iterated_dominance_frontier

from tests.support import diamond, irreducible, nested_loops, simple_loop


def _names(blocks):
    return sorted(b.name for b in blocks)


def test_diamond_idf_of_arms_is_join():
    _, func = diamond()
    tree = DominatorTree.compute(func)
    arms = [func.find_block("left"), func.find_block("right")]
    assert _names(idf_cytron(tree, arms)) == ["join"]
    assert _names(idf_sreedhar_gao(tree, arms)) == ["join"]


def test_loop_idf_contains_header():
    _, func = simple_loop()
    tree = DominatorTree.compute(func)
    body = [func.find_block("body")]
    result = iterated_dominance_frontier(tree, body)
    assert _names(result) == ["header"]


def test_idf_is_iterated_not_single_step():
    # In the nested loop, a def in the inner body must produce phis at
    # both the inner and the outer headers (the outer one only via
    # iteration).
    _, func = nested_loops()
    tree = DominatorTree.compute(func)
    result = iterated_dominance_frontier(tree, [func.find_block("ibody")])
    assert "ih" in _names(result)
    assert "oh" in _names(result)


def test_empty_defs():
    _, func = diamond()
    tree = DominatorTree.compute(func)
    assert idf_cytron(tree, []) == []
    assert idf_sreedhar_gao(tree, []) == []


def test_both_algorithms_agree_on_fixtures():
    for factory in (diamond, simple_loop, nested_loops, irreducible):
        _, func = factory()
        tree = DominatorTree.compute(func)
        blocks = tree.reachable
        # Every subset of size <= 2 plus the full set.
        subsets = [[b] for b in blocks]
        subsets += [[a, b] for i, a in enumerate(blocks) for b in blocks[i + 1:]]
        subsets.append(list(blocks))
        for defs in subsets:
            got_c = _names(idf_cytron(tree, defs))
            got_s = _names(idf_sreedhar_gao(tree, defs))
            assert got_c == got_s, (factory.__name__, _names(defs))


def test_deterministic_order():
    _, func = nested_loops()
    tree = DominatorTree.compute(func)
    defs = [func.find_block("ibody"), func.find_block("olatch")]
    r1 = iterated_dominance_frontier(tree, defs)
    r2 = iterated_dominance_frontier(tree, defs)
    assert [b.name for b in r1] == [b.name for b in r2]
