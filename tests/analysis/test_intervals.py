from repro.analysis.cfgutils import edges, is_critical_edge
from repro.analysis.intervals import IntervalTree, normalize_for_promotion
from repro.ir.parser import parse_module
from repro.ir.verify import verify_function

from tests.support import diamond, irreducible, nested_loops, simple_loop


def test_diamond_has_no_intervals():
    _, func = diamond()
    tree = IntervalTree.compute(func)
    assert tree.intervals == []
    assert tree.root.is_root
    assert len(tree.root.blocks) == 4


def test_simple_loop_single_interval():
    _, func = simple_loop()
    tree = IntervalTree.compute(func)
    assert len(tree.intervals) == 1
    loop = tree.intervals[0]
    assert loop.header.name == "header"
    assert sorted(b.name for b in loop.blocks) == ["body", "header"]
    assert loop.is_proper
    assert loop.depth == 1
    assert loop.preheader is not None and loop.preheader.name == "entry"


def test_nested_loops_tree_shape():
    _, func = nested_loops()
    tree = IntervalTree.compute(func)
    assert len(tree.intervals) == 2
    outer = tree.root.children[0]
    assert outer.header.name == "oh"
    assert len(outer.children) == 1
    inner = outer.children[0]
    assert inner.header.name == "ih"
    assert inner.depth == 2
    assert sorted(b.name for b in inner.blocks) == ["ibody", "ih"]
    assert {b.name for b in outer.blocks} >= {"oh", "ih", "ibody", "olatch", "ih0"}


def test_bottom_up_children_first():
    _, func = nested_loops()
    tree = IntervalTree.compute(func)
    order = [iv.header.name for iv in tree.bottom_up()]
    assert order.index("ih") < order.index("oh")
    assert order[-1] == "entry"  # root region last


def test_innermost_and_loop_depth():
    _, func = nested_loops()
    tree = IntervalTree.compute(func)
    assert tree.loop_depth(func.find_block("ibody")) == 2
    assert tree.loop_depth(func.find_block("olatch")) == 1
    assert tree.loop_depth(func.find_block("entry")) == 0
    assert tree.innermost(func.find_block("ih")).header.name == "ih"


def test_exit_edges():
    _, func = simple_loop()
    tree = IntervalTree.compute(func)
    exits = tree.intervals[0].exit_edges()
    assert [(s.name, d.name) for s, d in exits] == [("header", "exitb")]


def test_improper_interval_detected():
    _, func = irreducible()
    tree = IntervalTree.compute(func)
    assert len(tree.intervals) == 1
    loop = tree.intervals[0]
    assert not loop.is_proper
    assert sorted(b.name for b in loop.entries) == ["a", "b"]
    # Preheader = least common dominator of the entries, outside the SCC.
    assert loop.preheader.name == "entry"


def test_self_loop_is_interval():
    module = parse_module(
        """
        func @f() {
        entry:
          jmp spin
        spin:
          %c = copy 1
          br %c, spin, out
        out:
          ret
        }
        """
    )
    func = module.get_function("f")
    tree = IntervalTree.compute(func)
    assert len(tree.intervals) == 1
    assert tree.intervals[0].header.name == "spin"
    assert len(tree.intervals[0].blocks) == 1


def test_normalize_creates_dedicated_preheader():
    # Loop header with two outside predecessors needs a fresh preheader.
    module = parse_module(
        """
        func @f() {
        entry:
          %c = copy 1
          br %c, pre1, pre2
        pre1:
          jmp header
        pre2:
          jmp header
        header:
          %i = phi [pre1: 1, pre2: 2, body: %inext]
          %cc = lt %i, 10
          br %cc, body, out
        body:
          %inext = add %i, 1
          jmp header
        out:
          ret
        }
        """
    )
    func = module.get_function("f")
    tree = normalize_for_promotion(func)
    verify_function(func, check_ssa=True)
    loop = tree.intervals[0]
    pre = loop.preheader
    assert pre is not None
    assert not loop.contains(pre)
    assert pre.succs == [loop.header]
    assert len(loop.header.preds) == 2  # preheader + latch
    # The two outside phi inputs were merged into a phi in the preheader.
    header_phi = next(loop.header.phis())
    assert len(header_phi.incoming) == 2


def test_normalize_gives_exits_dedicated_tails():
    module = parse_module(
        """
        func @f() {
        entry:
          jmp h1
        h1:
          %i = phi [entry: 0, b1: %i2]
          %c = lt %i, 3
          br %c, b1, merge
        b1:
          %i2 = add %i, 1
          %c2 = lt %i2, 2
          br %c2, h1, merge
        merge:
          ret
        }
        """
    )
    func = module.get_function("f")
    tree = normalize_for_promotion(func)
    verify_function(func, check_ssa=True)
    loop = tree.intervals[0]
    for _, tail in loop.exit_edges():
        assert len(tail.preds) == 1
    for src, dst in edges(func):
        assert not is_critical_edge(src, dst)


def test_normalize_idempotent():
    for factory in (diamond, simple_loop, nested_loops, irreducible):
        _, func = factory()
        normalize_for_promotion(func)
        n_blocks = len(func.blocks)
        tree2 = normalize_for_promotion(func)
        assert len(func.blocks) == n_blocks, factory.__name__
        verify_function(func, check_ssa=True)


def test_normalized_loop_preheader_assigned():
    _, func = nested_loops()
    tree = normalize_for_promotion(func)
    for interval in tree.intervals:
        assert interval.preheader is not None
        assert not interval.contains(interval.preheader)
