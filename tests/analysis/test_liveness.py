from repro.analysis.liveness import Liveness
from repro.ir.parser import parse_module

from tests.support import simple_loop


def regs(func, *names):
    found = {}
    for inst in func.instructions():
        if inst.dst is not None:
            found[inst.dst.name] = inst.dst
    for p in func.params:
        found[p.name] = p
    return [found[n] for n in names]


def test_straightline_liveness():
    module = parse_module(
        """
        func @f(%a) {
        entry:
          %t = add %a, 1
          %u = add %t, %t
          ret %u
        }
        """
    )
    func = module.get_function("f")
    live = Liveness.compute(func)
    entry = func.entry
    assert live.live_in[entry] == {func.params[0]}
    assert live.live_out[entry] == set()


def test_value_live_across_branch():
    module = parse_module(
        """
        func @f(%a) {
        entry:
          %t = add %a, 1
          br %a, use, skip
        use:
          %u = add %t, 1
          jmp join
        skip:
          jmp join
        join:
          ret %t
        }
        """
    )
    func = module.get_function("f")
    live = Liveness.compute(func)
    (t,) = regs(func, "t")
    assert t in live.live_out[func.entry]
    assert t in live.live_in[func.find_block("skip")]
    assert t in live.live_in[func.find_block("use")]
    assert t in live.live_in[func.find_block("join")]


def test_loop_carried_value_live_around_backedge():
    _, func = simple_loop()
    live = Liveness.compute(func)
    (i, inext) = regs(func, "i", "inext")
    body = func.find_block("body")
    header = func.find_block("header")
    # inext feeds the header phi: live out of body, not live into header.
    assert inext in live.live_out[body]
    assert inext not in live.live_in[header]
    # i is used in body.
    assert i in live.live_in[body]


def test_phi_inputs_live_out_of_preds_only():
    module = parse_module(
        """
        func @f(%a) {
        entry:
          %x = add %a, 1
          %y = add %a, 2
          br %a, l, r
        l:
          jmp join
        r:
          jmp join
        join:
          %v = phi [l: %x, r: %y]
          ret %v
        }
        """
    )
    func = module.get_function("f")
    live = Liveness.compute(func)
    x, y, v = regs(func, "x", "y", "v")
    l, r, join = func.find_block("l"), func.find_block("r"), func.find_block("join")
    assert x in live.live_out[l] and x not in live.live_out[r]
    assert y in live.live_out[r] and y not in live.live_out[l]
    assert x not in live.live_in[join]
    assert v not in live.live_in[join]


def test_dead_value_not_live():
    module = parse_module(
        """
        func @f(%a) {
        entry:
          %dead = add %a, 1
          jmp next
        next:
          ret %a
        }
        """
    )
    func = module.get_function("f")
    live = Liveness.compute(func)
    (dead,) = regs(func, "dead")
    assert dead not in live.live_out[func.entry]
