"""Behavioural tests for the Lu-Cooper and Mahlke baselines, plus the
qualitative comparisons the paper's related-work section claims."""

from repro.baselines.lucooper import LuCooperPipeline
from repro.baselines.mahlke import MahlkePipeline
from repro.ir.parser import parse_module
from repro.promotion.pipeline import PromotionPipeline

CLEAN_LOOP = """
module m
global @x = 0
func @main() {
entry:
  jmp h
h:
  %i = phi [entry: 0, body: %i2]
  %c = lt %i, 60
  br %c, body, out
body:
  %t = ld @x
  %t2 = add %t, 1
  st @x, %t2
  %i2 = add %i, 1
  jmp h
out:
  %r = ld @x
  ret %r
}
"""

COLD_CALL_LOOP = """
module m
global @x = 0
func @main() {
entry:
  jmp h
h:
  %i = phi [entry: 0, latch: %i2]
  %c = lt %i, 100
  br %c, body, done
body:
  %t1 = ld @x
  %t2 = add %t1, 1
  st @x, %t2
  %cc = lt %t2, 5
  br %cc, cold, latch
cold:
  %r = call @foo()
  jmp latch
latch:
  %i2 = add %i, 1
  jmp h
done:
  %t9 = ld @x
  ret %t9
}
func @foo() {
entry:
  %t = ld @x
  %u = add %t, 10
  st @x, %u
  ret
}
"""

NESTED_AMBIGUOUS_OUTER = """
module m
global @x = 0
func @main() {
entry:
  jmp oh
oh:
  %i = phi [entry: 0, olatch: %i2]
  %c1 = lt %i, 10
  br %c1, ih0, oexit
ih0:
  jmp ih
ih:
  %j = phi [ih0: 0, ibody: %j2]
  %c2 = lt %j, 20
  br %c2, ibody, omid
ibody:
  %t = ld @x
  %t2 = add %t, 1
  st @x, %t2
  %j2 = add %j, 1
  jmp ih
omid:
  %r = call @foo()
  jmp olatch
olatch:
  %i2 = add %i, 1
  jmp oh
oexit:
  %u = ld @x
  ret %u
}
func @foo() {
entry:
  ret
}
"""


def test_lucooper_promotes_clean_loop():
    module = parse_module(CLEAN_LOOP)
    result = LuCooperPipeline().run(module)
    assert result.output_matches
    # 120 in-loop ops collapse to a preheader load and tail store.
    assert result.dynamic_after.total <= 4
    assert result.dynamic_before.total == 121


def test_lucooper_rejects_loop_with_call():
    module = parse_module(COLD_CALL_LOOP)
    result = LuCooperPipeline().run(module)
    assert result.output_matches
    # "the presence of function calls precludes any promotion even if
    # these calls are executed very infrequently."
    assert result.dynamic_after.total == result.dynamic_before.total


def test_lucooper_promotes_inner_when_outer_ambiguous():
    module = parse_module(NESTED_AMBIGUOUS_OUTER)
    result = LuCooperPipeline().run(module)
    assert result.output_matches
    # Outer loop has a call: rejected; inner clean loop still promotes.
    assert result.dynamic_after.total < result.dynamic_before.total / 5


def test_mahlke_promotes_when_call_is_cold():
    module = parse_module(COLD_CALL_LOOP)
    result = MahlkePipeline().run(module)
    assert result.output_matches
    # The call is off-trace (4 of 100 iterations): migration applies.
    assert result.dynamic_after.total < result.dynamic_before.total


def test_mahlke_rejects_hot_call():
    module = parse_module(
        COLD_CALL_LOOP.replace("%cc = lt %t2, 5", "%cc = lt %t2, 1000")
    )
    result = MahlkePipeline().run(module)
    assert result.output_matches
    # Call now on every iteration: on-trace, so no migration.
    assert result.dynamic_after.total == result.dynamic_before.total


def test_paper_algorithm_dominates_lucooper_on_cold_calls():
    ours = PromotionPipeline().run(parse_module(COLD_CALL_LOOP))
    theirs = LuCooperPipeline().run(parse_module(COLD_CALL_LOOP))
    assert ours.output_matches and theirs.output_matches
    assert ours.dynamic_after.total < theirs.dynamic_after.total


def test_paper_algorithm_matches_lucooper_on_clean_loops():
    ours = PromotionPipeline().run(parse_module(CLEAN_LOOP))
    theirs = LuCooperPipeline().run(parse_module(CLEAN_LOOP))
    assert ours.dynamic_after.total <= theirs.dynamic_after.total


def test_mahlke_misses_outer_loop_opportunity():
    # Mahlke works on innermost loops only; the paper's interval
    # recursion hoists the inner loop's boundary ops out of the outer
    # loop as well.
    ours = PromotionPipeline().run(parse_module(NESTED_AMBIGUOUS_OUTER))
    theirs = MahlkePipeline().run(parse_module(NESTED_AMBIGUOUS_OUTER))
    assert ours.output_matches and theirs.output_matches
    assert ours.dynamic_after.total <= theirs.dynamic_after.total
