from repro.bench.metrics import (
    PROMOTERS,
    BenchmarkRow,
    measure_workload,
    pressure_rows,
)
from repro.bench.tables import (
    format_comparison,
    format_table1,
    format_table2,
    format_table3,
)
from repro.bench.workloads import WORKLOADS


def test_measure_workload_row_fields():
    row = measure_workload(WORKLOADS["compress"])
    assert row.name == "compress"
    assert row.promoter == "sastry-ju"
    assert row.output_matches
    assert row.static_total_before == row.static_loads_before + row.static_stores_before
    assert row.dynamic_total_after <= row.dynamic_total_before


def test_pct_sign_convention():
    row = BenchmarkRow(
        name="x",
        promoter="p",
        static_loads_before=100,
        static_loads_after=114,
        static_stores_before=100,
        static_stores_after=90,
        dynamic_loads_before=1000,
        dynamic_loads_after=750,
        dynamic_stores_before=0,
        dynamic_stores_after=0,
        output_matches=True,
    )
    assert row.pct("static_loads") == -14.0  # count increased
    assert row.pct("static_stores") == 10.0
    assert row.pct("dynamic_loads") == 25.0
    assert row.pct("dynamic_stores") == 0.0  # zero-before guard


def test_all_promoters_registered():
    assert set(PROMOTERS) == {"sastry-ju", "lucooper", "mahlke"}
    row = measure_workload(WORKLOADS["compress"], "lucooper")
    assert row.promoter == "lucooper"
    assert row.output_matches


def test_pressure_rows_structure():
    rows = pressure_rows(WORKLOADS["gcc"])
    assert [r.routine for r in rows] == list(WORKLOADS["gcc"].pressure_routines)
    for row in rows:
        assert row.colors_before >= 1
        assert row.colors_after >= 1


def test_table_formatters_smoke():
    row = measure_workload(WORKLOADS["compress"])
    assert "compress" in format_table1([row])
    assert "compress" in format_table2([row])
    pressure = pressure_rows(WORKLOADS["compress"])
    assert "compress" in format_table3(pressure)
    assert "compress" in format_comparison(
        [row],
        [measure_workload(WORKLOADS["compress"], "lucooper")],
        [measure_workload(WORKLOADS["compress"], "mahlke")],
    )


def test_report_cli_runs(capsys):
    from repro.bench.report import main

    assert main(["--table", "3"]) == 0
    out = capsys.readouterr().out
    assert "Table 3" in out


def test_paper_reference_tables_cover_all_workloads():
    from repro.bench.tables import PAPER_TABLE1, PAPER_TABLE2_LOADS
    from repro.bench.workloads import ORDER

    assert set(PAPER_TABLE1) == set(ORDER)
    assert set(PAPER_TABLE2_LOADS) == set(ORDER)
    for loads, stores, total in PAPER_TABLE1.values():
        assert -20.0 <= loads <= 20.0
        assert -20.0 <= stores <= 20.0
        assert -20.0 <= total <= 20.0


def test_report_json_output(capsys):
    import json

    from repro.bench.report import main
    from repro.bench.workloads import ORDER

    assert main(["--json"]) == 0
    doc = json.loads(capsys.readouterr().out)
    assert set(doc["workloads"]) == set(ORDER)
    go = doc["workloads"]["go"]
    assert go["behaviour_preserved"] is True
    assert go["dynamic"]["loads_after"] < go["dynamic"]["loads_before"]
    assert any(p["workload"] == "ijpeg" for p in doc["pressure"])
